"""Repo-level pytest configuration.

Lives at the repository root so its ``pytest_addoption`` hook is loaded as an
*initial* conftest regardless of which test directory is selected.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "Rewrite the golden files under tests/golden/ with the current "
            "detector outputs instead of asserting against them.  Use after "
            "an intentional behaviour change, and commit the diff."
        ),
    )
