"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``python setup.py develop`` / legacy editable installs work in offline
environments where PEP 660 editable builds (which require ``wheel``) are not
available.
"""

from setuptools import setup

setup()
