"""Throughput benchmark: instance-mode vs batch-mode prequential execution.

Measures instances/second of the full prequential path (stream generation ->
classifier test -> detector step -> classifier train -> windowed metrics) in
the three execution modes of :class:`PrequentialRunner`:

* ``instance`` — the classic one-``Instance``-at-a-time loop (baseline);
* ``chunk-exact`` — bit-identical results at chunk speed: vectorized stream
  fetch, the classifier's ``predict_fit_interleaved`` kernel, the detector's
  chunk-exact ``step_batch``, and batched metric folds;
* ``batch`` — chunk-granular test-then-train over the batch APIs, driving
  every detector's NumPy-native ``step_batch`` kernel.

Five workload families are measured: the RBM-IM reference path of the
earlier baselines, the full *detector zoo* — every detector in the registry
on the same stream/classifier, instance vs batch mode, with the aggregate
speedup across the zoo as the headline number — raw generation
throughput of a *schedule-composed scenario stream* (the
:mod:`repro.streams.schedule` engine driving concept transitions, local
drift, imbalance, label noise, and feature drift at once), batch fetch vs
per-instance iteration — the *fleet engine* (:mod:`repro.fleet`):
detector-steps/sec of each native struct-of-arrays kernel driving 1k+
concurrent independent streams, gated against an absolute floor — and the
*snapshot contract* overhead: a chunk-exact run writing a full
``RunnerCheckpoint`` at every chunk vs without, plus snapshot()/restore()
rates against the rollback deepcopy they replaced.

Run as a pytest harness (``PYTHONPATH=src python -m pytest
benchmarks/test_bench_throughput.py``) for a scaled-down regression check, as
a script (``PYTHONPATH=src python benchmarks/test_bench_throughput.py``) to
record the full measurement into ``BENCH_throughput.json`` at the repository
root — the perf trajectory future changes are compared against — or with
``--smoke`` (used by CI) for a seconds-long run that exercises the whole
harness, gates the RBM-IM batch (>= 15x) and chunk-exact (>= 3x) speedups,
and prints a regression diff against the recorded trajectory without
touching it.  ``--profile`` reruns the slowest measured workload under
cProfile and dumps the pstats breakdown (CI uploads it as an artifact).
"""

from __future__ import annotations

import cProfile
import copy
import io
import json
import math
import pstats
import tempfile
import time
from pathlib import Path

import numpy as np
from bench_common import stream_length

from repro.classifiers import GaussianNaiveBayes
from repro.core.detector import RBMIM, RBMIMConfig
from repro.evaluation.prequential import PrequentialRunner
from repro.fleet import FLEET_NATIVE, ScalarDetectorFleet, make_fleet
from repro.protocol.registry import DETECTOR_NAMES, build_detector
from repro.streams.generators import RandomRBFGenerator, SEAGenerator
from repro.streams.imbalance import DynamicImbalance
from repro.streams.schedule import Schedule, ScheduledStream, Segment

#: Conservative pytest floor: the recorded baseline shows >= 15x on an idle
#: machine; shared runners are noisy, so the regression gate is looser.
MIN_SPEEDUP = 6.0

#: Pytest floor for the chunk-exact (bit-identical) mode: the recorded
#: baseline shows >= 5x, and anything under 2x means the optimistic chunked
#: runner has regressed towards the scalar loop.
MIN_EXACT_SPEEDUP = 2.0

#: Floor for the aggregate batch-vs-instance speedup across the detector zoo
#: (recorded baseline >= 3x; same noise allowance as above).
MIN_ZOO_AGGREGATE_SPEEDUP = 2.0

#: Hard bench-smoke gates on the RBM-IM reference workloads (best-of-repeats
#: partially compensates for runner noise; the recorded idle-machine numbers
#: sit comfortably above both).
SMOKE_MIN_RBMIM_BATCH_SPEEDUP = 15.0
SMOKE_MIN_EXACT_SPEEDUP = 3.0

#: Floor for batch-vs-instance generation throughput of a schedule-composed
#: scenario stream.  The recorded baseline shows >= 10x, so even on noisy CI
#: runners the batch path must stay at least 5x ahead — below that, the
#: scenario engine's vectorized path has regressed.
MIN_SCHEDULE_STREAM_SPEEDUP = 5.0

#: Floor on what per-chunk crash-resume checkpointing may cost: a chunk-exact
#: RBM-IM run writing a full :class:`RunnerCheckpoint` (stream + classifier +
#: detector + metrics, strict JSON, atomic rename) at *every* 1024-instance
#: chunk — far more often than the default cadence — must keep at least this
#: fraction of the uncheckpointed run's throughput.  The recorded baseline
#: keeps ~0.6x; below 0.3x the snapshot codec or the durability path has
#: regressed into the hot loop.
MIN_CHECKPOINT_RELATIVE_THROUGHPUT = 0.3

#: Floor on the chunk-rollback capture path: ``detector.snapshot()`` on a
#: trained RBM-IM must not fall behind the ``deepcopy(detector.__dict__)``
#: it replaced inside ``_advance_exact_segment`` (recorded baseline ~1.5x —
#: the snapshot skips the excluded CD-k scratch buffers that deepcopy
#: faithfully clones; 0.9 allows for runner noise, not for a regression).
MIN_RBMIM_SNAPSHOT_VS_DEEPCOPY = 0.9

#: Absolute floor on full snapshot->restore cycles/sec of a trained RBM-IM
#: (recorded baseline >= 1000/s; below 100/s checkpointing a protocol cell
#: would dominate the cell itself).
MIN_RBMIM_SNAPSHOT_CYCLES_PER_SEC = 100.0

#: Hard floor on the fleet engine: the slowest native struct-of-arrays
#: kernel must sustain at least this many detector-steps/sec while driving
#: ``FLEET_N_STREAMS`` concurrent independent streams (the recorded baseline
#: sits well above; anything below means a kernel fell off the one-round
#: vectorized path).
MIN_FLEET_STEPS_PER_SEC = 100_000.0
FLEET_N_STREAMS = 1_000

#: The sum/bound family with native struct-of-arrays fleet kernels.
FLEET_DETECTORS = tuple(FLEET_NATIVE)

#: Every registry detector (the paper's zoo); "none" is the detector-less
#: baseline and measures only classifier/stream overhead.
ZOO_DETECTORS = tuple(name for name in DETECTOR_NAMES if name != "none")

ZOO_STREAM_SHAPE = dict(n_classes=5, n_features=10)

WORKLOADS = {
    "sea3-rbmim": dict(n_classes=3, n_features=3),
    "sea5x20-rbmim": dict(n_classes=5, n_features=20),
}

MODES = {
    "instance": {},
    "chunk-exact": dict(chunk_size=1024),
    "batch": dict(chunk_size=1024, batch_mode=True),
}


def _nb_factory(n_features: int, n_classes: int) -> GaussianNaiveBayes:
    return GaussianNaiveBayes(n_features, n_classes)


def measure_throughput(
    n_classes: int,
    n_features: int,
    n_instances: int,
    repeats: int = 3,
) -> dict[str, float]:
    """Best-of-``repeats`` instances/sec for every execution mode."""
    runner = PrequentialRunner(
        _nb_factory, pretrain_size=200, snapshot_every=2_500
    )
    # Modes are interleaved within each repeat (not run back-to-back per
    # mode) so a drift in machine load hits every mode alike instead of
    # biasing the speedup ratios; best-of-repeats then absorbs the noise.
    throughput: dict[str, float] = {mode: 0.0 for mode in MODES}
    for _ in range(repeats):
        for mode, kwargs in MODES.items():
            stream = SEAGenerator(
                n_classes=n_classes, n_features=n_features, seed=1
            )
            detector = RBMIM(
                n_features, n_classes, RBMIMConfig(batch_size=50, seed=11)
            )
            started = time.perf_counter()
            runner.run(stream, detector, n_instances=n_instances, **kwargs)
            elapsed = time.perf_counter() - started
            throughput[mode] = max(throughput[mode], n_instances / elapsed)
    return throughput


def measure_detector_zoo(
    n_instances: int,
    repeats: int = 2,
    detectors: tuple[str, ...] = ZOO_DETECTORS,
) -> dict:
    """Instance vs batch throughput of every registry detector.

    Each detector runs the full prequential path (SEA stream, Gaussian NB)
    once per mode and repeat; reported per-detector numbers are
    best-of-``repeats``, and the aggregate speedup divides total instances
    processed by total wall time per mode (so slow detectors dominate, as
    they do in the real protocol grid).
    """
    runner = PrequentialRunner(_nb_factory, pretrain_size=200, snapshot_every=10**9)
    n_classes = ZOO_STREAM_SHAPE["n_classes"]
    n_features = ZOO_STREAM_SHAPE["n_features"]
    per_detector: dict[str, dict] = {}
    total_time = {"instance": 0.0, "chunk-exact": 0.0, "batch": 0.0}
    zoo_modes = (
        ("instance", {}),
        ("chunk-exact", dict(chunk_size=1024)),
        ("batch", dict(chunk_size=1024, batch_mode=True)),
    )
    for name in detectors:
        # Interleave modes within each repeat (see measure_throughput): load
        # drifts then bias every mode alike rather than one ratio.
        best_time = {mode: math.inf for mode, _ in zoo_modes}
        for _ in range(repeats):
            for mode, kwargs in zoo_modes:
                stream = SEAGenerator(seed=1, **ZOO_STREAM_SHAPE)
                detector = build_detector(name, n_features, n_classes)
                started = time.perf_counter()
                runner.run(stream, detector, n_instances=n_instances, **kwargs)
                best_time[mode] = min(
                    best_time[mode], time.perf_counter() - started
                )
        throughput = {
            mode: n_instances / best_time[mode] for mode, _ in zoo_modes
        }
        for mode, _ in zoo_modes:
            total_time[mode] += best_time[mode]
        per_detector[name] = {
            "instances_per_sec": {
                mode: round(value, 1) for mode, value in throughput.items()
            },
            "speedup_batch_vs_instance": round(
                throughput["batch"] / throughput["instance"], 2
            ),
            "speedup_exact_vs_instance": round(
                throughput["chunk-exact"] / throughput["instance"], 2
            ),
        }
    return {
        "description": (
            "Instance-mode vs chunk-exact vs batch-mode prequential "
            "throughput of every registry detector (SEA stream, Gaussian NB "
            "classifier); best-of-N per detector, aggregate = total "
            "instances / total wall time across the zoo."
        ),
        "n_instances": n_instances,
        "stream": ZOO_STREAM_SHAPE,
        "per_detector": per_detector,
        "aggregate_speedup_batch_vs_instance": round(
            total_time["instance"] / total_time["batch"], 2
        ),
        "aggregate_speedup_exact_vs_instance": round(
            total_time["instance"] / total_time["chunk-exact"], 2
        ),
    }


def _schedule_composed_stream(seed: int = 3) -> ScheduledStream:
    """A scenario stream exercising every axis of the schedule engine."""

    def factory(concept: int) -> RandomRBFGenerator:
        return RandomRBFGenerator(
            n_classes=5, n_features=20, concept=concept, seed=seed
        )

    schedule = Schedule.of(
        Segment(length=5_000, concept=0),
        Segment(length=5_000, concept=1, transition="gradual", width=1_000),
        Segment(length=5_000, concept=2, drifted_classes=(3, 4)),
        Segment(
            length=5_000,
            concept=3,
            label_noise=0.05,
            feature_shift=0.2,
            width=500,
        ),
    )
    return ScheduledStream(
        factory,
        schedule,
        imbalance=DynamicImbalance(5, 2.0, 50.0, period=10_000),
        seed=seed + 1,
    )


def measure_schedule_stream(
    n_instances: int, repeats: int = 2, chunk_size: int = 1_024
) -> dict:
    """Generation throughput of the schedule engine: batch vs instance mode."""
    best_time = {"instance": math.inf, "batch": math.inf}
    for _ in range(repeats):
        stream = _schedule_composed_stream()
        started = time.perf_counter()
        for _ in range(n_instances):
            stream.next_instance()
        best_time["instance"] = min(
            best_time["instance"], time.perf_counter() - started
        )
        stream = _schedule_composed_stream()
        produced = 0
        started = time.perf_counter()
        while produced < n_instances:
            produced += stream.generate_batch(
                min(chunk_size, n_instances - produced)
            )[1].shape[0]
        best_time["batch"] = min(best_time["batch"], time.perf_counter() - started)
    return {
        "description": (
            "Raw generation throughput of a schedule-composed scenario "
            "stream (4 segments: sudden + gradual + local drift + label "
            "noise/feature drift, dynamic imbalance), batch fetch vs "
            "per-instance iteration; best of N repeats."
        ),
        "n_instances": n_instances,
        "chunk_size": chunk_size,
        "instances_per_sec": {
            mode: round(n_instances / elapsed, 1)
            for mode, elapsed in best_time.items()
        },
        "speedup_batch_vs_instance": round(
            best_time["instance"] / best_time["batch"], 2
        ),
    }


def measure_snapshot_overhead(
    n_instances: int,
    repeats: int = 3,
    chunk_size: int = 1_024,
    capture_seconds: float = 0.5,
) -> dict:
    """Cost of the snapshot contract on the paths that pay for it.

    Two workloads:

    * **checkpointed run** — the chunk-exact RBM-IM reference run with a
      full :class:`RunnerCheckpoint` written at every chunk boundary
      (deliberately the most aggressive cadence) vs the same run without,
      best-of-``repeats`` each, reported as relative throughput;
    * **rollback capture** — ``snapshot()`` / full snapshot->restore cycles
      per second on trained detectors, with the RBM-IM capture also compared
      against the ``deepcopy(detector.__dict__)`` it replaced in the
      chunk-exact rollback path.
    """
    runner = PrequentialRunner(_nb_factory, pretrain_size=200, snapshot_every=2_500)
    best_time = {"plain": math.inf, "checkpointed": math.inf}
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = {
            "plain": {},
            "checkpointed": dict(
                checkpoint_path=Path(scratch) / "checkpoint.json",
                checkpoint_every=chunk_size,
            ),
        }
        for _ in range(repeats):
            for mode, kwargs in checkpoint.items():
                # A stale matching checkpoint would turn later repeats into
                # near-empty resumed runs; measure cold starts only.
                Path(scratch, "checkpoint.json").unlink(missing_ok=True)
                stream = SEAGenerator(n_classes=3, n_features=3, seed=1)
                detector = RBMIM(3, 3, RBMIMConfig(batch_size=50, seed=11))
                started = time.perf_counter()
                runner.run(
                    stream,
                    detector,
                    n_instances=n_instances,
                    chunk_size=chunk_size,
                    **kwargs,
                )
                best_time[mode] = min(
                    best_time[mode], time.perf_counter() - started
                )

    def rate(action) -> float:
        count = 0
        started = time.perf_counter()
        while time.perf_counter() - started < capture_seconds:
            action()
            count += 1
        return count / (time.perf_counter() - started)

    per_detector: dict[str, dict] = {}
    rng = np.random.default_rng(7)
    features = rng.random((4_000, 10))
    labels = rng.integers(0, 5, 4_000)
    predictions = rng.integers(0, 5, 4_000)
    for name in ("DDM", "ADWIN", "RBM-IM"):
        detector = build_detector(name, 10, 5)
        detector.step_batch(features, labels, predictions)
        entry = {
            "snapshot_per_sec": round(rate(detector.snapshot), 1),
            "snapshot_restore_cycles_per_sec": round(
                rate(lambda: detector.restore(detector.snapshot())), 1
            ),
        }
        if name == "RBM-IM":
            deepcopy_rate = rate(lambda: copy.deepcopy(detector.__dict__))
            entry["deepcopy_per_sec"] = round(deepcopy_rate, 1)
            entry["snapshot_vs_deepcopy"] = round(
                entry["snapshot_per_sec"] / deepcopy_rate, 2
            )
        per_detector[name] = entry

    return {
        "description": (
            "Snapshot-contract overhead: chunk-exact RBM-IM run with a full "
            "RunnerCheckpoint written at every chunk vs without (relative "
            "throughput, best of N), plus snapshot()/restore() rates on "
            "trained detectors and the RBM-IM capture vs the deepcopy it "
            "replaced in the rollback path."
        ),
        "n_instances": n_instances,
        "chunk_size": chunk_size,
        "instances_per_sec": {
            mode: round(n_instances / elapsed, 1)
            for mode, elapsed in best_time.items()
        },
        "checkpointed_relative_throughput": round(
            best_time["plain"] / best_time["checkpointed"], 2
        ),
        "per_detector": per_detector,
    }


def measure_fleet(
    n_streams: int = FLEET_N_STREAMS,
    n_ticks: int = 200,
    repeats: int = 3,
    detectors: tuple[str, ...] = FLEET_DETECTORS,
    adapter_ticks: int | None = None,
) -> dict:
    """Detector-steps/sec of the fleet engine across N concurrent streams.

    Every native sum-family kernel steps ``n_streams`` independent detectors
    through ``n_ticks`` dense ticks (one element per lane per tick — the
    single-round fast path of ``step_fleet``) over a drift-prone error
    signal, best-of-``repeats``.  One detector (the first) is also measured
    through the loop-of-scalars :class:`ScalarDetectorFleet` on a tick
    subsample, yielding the native-vs-adapter speedup — the whole point of
    the struct-of-arrays kernels.
    """
    rng = np.random.default_rng(5)
    ids = np.arange(n_streams, dtype=np.int64)
    error_probability = 0.1 + 0.6 * (np.arange(n_ticks) % 100) / 100.0
    values = (
        rng.random((n_ticks, n_streams)) < error_probability[:, None]
    ).astype(np.float64)
    if adapter_ticks is None:
        adapter_ticks = max(1, n_ticks // 20)
    per_detector: dict[str, dict] = {}
    for position, name in enumerate(detectors):
        best = math.inf
        for _ in range(repeats):
            fleet = make_fleet(name, n_streams)
            started = time.perf_counter()
            for tick in range(n_ticks):
                fleet.step_fleet(ids, values[tick])
            best = min(best, time.perf_counter() - started)
        steps_per_sec = n_streams * n_ticks / best
        entry = {"steps_per_sec": round(steps_per_sec, 1)}
        if position == 0:
            adapter = ScalarDetectorFleet(
                [build_detector(name, 2, 2) for _ in range(n_streams)]
            )
            started = time.perf_counter()
            for tick in range(adapter_ticks):
                adapter.step_fleet(ids, values[tick])
            adapter_rate = (
                n_streams * adapter_ticks / (time.perf_counter() - started)
            )
            entry["adapter_steps_per_sec"] = round(adapter_rate, 1)
            entry["speedup_native_vs_adapter"] = round(
                steps_per_sec / adapter_rate, 2
            )
        per_detector[name] = entry
    return {
        "description": (
            "Fleet engine: detector-steps/sec of each native "
            "struct-of-arrays kernel driving N concurrent independent "
            "streams (dense ticks, one element per lane), best of N "
            "repeats; the first detector also measured through the "
            "loop-of-scalars adapter for the native-vs-adapter speedup."
        ),
        "n_streams": n_streams,
        "n_ticks": n_ticks,
        "per_detector": per_detector,
        "min_steps_per_sec": min(
            entry["steps_per_sec"] for entry in per_detector.values()
        ),
    }


def run_benchmark(n_instances: int, repeats: int = 3) -> dict:
    results: dict = {
        "description": (
            "Instances/sec of the RBM-IM prequential path (SEA stream, "
            "Gaussian NB classifier, RBM-IM detector) per execution mode; "
            "best of N repeats."
        ),
        "n_instances": n_instances,
        "workloads": {},
    }
    for name, shape in WORKLOADS.items():
        throughput = measure_throughput(
            n_instances=n_instances, repeats=repeats, **shape
        )
        results["workloads"][name] = {
            **shape,
            "instances_per_sec": {
                mode: round(value, 1) for mode, value in throughput.items()
            },
            "speedup_batch_vs_instance": round(
                throughput["batch"] / throughput["instance"], 2
            ),
            "speedup_exact_vs_instance": round(
                throughput["chunk-exact"] / throughput["instance"], 2
            ),
        }
    return results


class TestThroughput:
    def test_batch_mode_speedup(self):
        n_instances = stream_length(12_000, 30_000)
        throughput = measure_throughput(
            n_classes=3, n_features=3, n_instances=n_instances, repeats=2
        )
        speedup = throughput["batch"] / throughput["instance"]
        assert speedup >= MIN_SPEEDUP, (
            f"batch mode only {speedup:.2f}x faster than instance mode "
            f"(floor {MIN_SPEEDUP}x; recorded baseline in "
            "BENCH_throughput.json shows >= 15x)"
        )

    def test_exact_mode_speedup(self):
        n_instances = stream_length(8_000, 20_000)
        throughput = measure_throughput(
            n_classes=3, n_features=3, n_instances=n_instances, repeats=2
        )
        # Chunk-exact mode is bit-identical to the instance loop but must
        # deliver a real speedup, not just remove stream overhead.
        speedup = throughput["chunk-exact"] / throughput["instance"]
        assert speedup >= MIN_EXACT_SPEEDUP, (
            f"chunk-exact mode only {speedup:.2f}x faster than instance "
            f"mode (floor {MIN_EXACT_SPEEDUP}x; recorded baseline in "
            "BENCH_throughput.json shows >= 5x)"
        )


class TestDetectorZoo:
    def test_zoo_kernels_beat_instance_mode(self):
        # Best-of-2 per mode: a single repeat is too sensitive to scheduler
        # noise for a gate (one unlucky instance-mode run skews the aggregate).
        n_instances = stream_length(4_000, 20_000)
        results = measure_detector_zoo(n_instances=n_instances, repeats=2)
        assert set(results["per_detector"]) == set(ZOO_DETECTORS)
        aggregate = results["aggregate_speedup_batch_vs_instance"]
        assert aggregate >= MIN_ZOO_AGGREGATE_SPEEDUP, (
            f"detector-zoo batch path only {aggregate:.2f}x faster than "
            f"instance mode (floor {MIN_ZOO_AGGREGATE_SPEEDUP}x; recorded "
            "baseline in BENCH_throughput.json shows >= 3x)"
        )


class TestSnapshotOverhead:
    def test_checkpointing_keeps_most_of_the_throughput(self):
        n_instances = stream_length(8_000, 20_000)
        results = measure_snapshot_overhead(n_instances=n_instances, repeats=2)
        relative = results["checkpointed_relative_throughput"]
        assert relative >= MIN_CHECKPOINT_RELATIVE_THROUGHPUT, (
            f"per-chunk checkpointing keeps only {relative:.2f}x of the "
            f"uncheckpointed throughput (floor "
            f"{MIN_CHECKPOINT_RELATIVE_THROUGHPUT}x; recorded baseline in "
            "BENCH_throughput.json keeps ~0.6x)"
        )
        rbmim = results["per_detector"]["RBM-IM"]
        cycles = rbmim["snapshot_restore_cycles_per_sec"]
        assert cycles >= MIN_RBMIM_SNAPSHOT_CYCLES_PER_SEC, (
            f"trained RBM-IM manages only {cycles:,.0f} snapshot->restore "
            f"cycles/sec (floor {MIN_RBMIM_SNAPSHOT_CYCLES_PER_SEC:,.0f})"
        )
        ratio = rbmim["snapshot_vs_deepcopy"]
        assert ratio >= MIN_RBMIM_SNAPSHOT_VS_DEEPCOPY, (
            f"RBM-IM snapshot() capture fell to {ratio:.2f}x of the deepcopy "
            f"it replaced in the chunk-rollback path (floor "
            f"{MIN_RBMIM_SNAPSHOT_VS_DEEPCOPY}x)"
        )


class TestFleet:
    def test_fleet_holds_steps_per_sec_floor(self):
        n_ticks = stream_length(100, 500)
        results = measure_fleet(
            n_streams=FLEET_N_STREAMS, n_ticks=n_ticks, repeats=2
        )
        slowest = results["min_steps_per_sec"]
        assert slowest >= MIN_FLEET_STEPS_PER_SEC, (
            f"slowest native fleet kernel only {slowest:,.0f} "
            f"detector-steps/sec across {FLEET_N_STREAMS} streams "
            f"(floor {MIN_FLEET_STEPS_PER_SEC:,.0f}; recorded baseline in "
            "BENCH_throughput.json)"
        )

    def test_fleet_covers_the_native_family(self):
        results = measure_fleet(n_streams=64, n_ticks=10, repeats=1)
        assert set(results["per_detector"]) == set(FLEET_DETECTORS)


class TestScheduleStream:
    def test_schedule_stream_batch_generation_speedup(self):
        n_instances = stream_length(6_000, 20_000)
        results = measure_schedule_stream(n_instances=n_instances, repeats=2)
        speedup = results["speedup_batch_vs_instance"]
        assert speedup >= MIN_SCHEDULE_STREAM_SPEEDUP, (
            f"schedule-composed stream batch generation only {speedup:.2f}x "
            f"faster than instance mode (floor "
            f"{MIN_SCHEDULE_STREAM_SPEEDUP}x; recorded baseline shows >= 10x)"
        )


_RECORDED_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def print_regression_diff(current: dict) -> None:
    """Print current headline speedups next to the recorded trajectory.

    Informational only (smoke streams are far shorter than the recorded
    measurement, so absolute throughput is not comparable — the *ratios*
    are): a quick way to spot a mode regressing relative to the committed
    BENCH_throughput.json without rerunning the full benchmark.
    """
    if not _RECORDED_PATH.exists():
        print("\nno recorded BENCH_throughput.json; skipping regression diff")
        return
    recorded = json.loads(_RECORDED_PATH.read_text(encoding="utf-8"))

    def row(label: str, old: float | None, new: float | None) -> None:
        if old is None or new is None:
            return
        delta = (new - old) / old * 100.0
        print(f"  {label:<45s} recorded {old:7.2f}x  current {new:7.2f}x  ({delta:+.0f}%)")

    print("\nregression diff vs recorded BENCH_throughput.json (speedups):")
    for name, workload in current.get("workloads", {}).items():
        old = recorded.get("workloads", {}).get(name, {})
        for key in ("speedup_batch_vs_instance", "speedup_exact_vs_instance"):
            row(f"{name}.{key}", old.get(key), workload.get(key))
    for key in (
        "aggregate_speedup_batch_vs_instance",
        "aggregate_speedup_exact_vs_instance",
    ):
        row(
            f"detector_zoo.{key}",
            recorded.get("detector_zoo", {}).get(key),
            current.get("detector_zoo", {}).get(key),
        )
    row(
        "schedule_stream.speedup_batch_vs_instance",
        recorded.get("schedule_stream", {}).get("speedup_batch_vs_instance"),
        current.get("schedule_stream", {}).get("speedup_batch_vs_instance"),
    )
    row(
        "snapshot_overhead.checkpointed_relative_throughput",
        recorded.get("snapshot_overhead", {}).get(
            "checkpointed_relative_throughput"
        ),
        current.get("snapshot_overhead", {}).get(
            "checkpointed_relative_throughput"
        ),
    )
    # Fleet throughput is absolute (steps/sec), not a ratio; compare the
    # slowest-kernel floor in millions of steps/sec.
    old_fleet = recorded.get("fleet", {}).get("min_steps_per_sec")
    new_fleet = current.get("fleet", {}).get("min_steps_per_sec")
    if old_fleet and new_fleet:
        row(
            "fleet.min_steps_per_sec (M/s)",
            old_fleet / 1e6,
            new_fleet / 1e6,
        )


def profile_slowest_workload(n_instances: int = 10_000) -> Path:
    """Profile the slowest (workload, mode) pair and dump the pstats report.

    A quick unprofiled sweep over every RBM-IM workload/mode pair finds the
    lowest-throughput combination; that run is repeated under cProfile and
    the cumulative-time breakdown is written to ``bench_profile.txt`` next to
    ``BENCH_throughput.json`` (CI uploads it as an artifact).
    """
    slowest: tuple[float, str, str] | None = None
    for name, shape in WORKLOADS.items():
        throughput = measure_throughput(
            n_instances=n_instances, repeats=1, **shape
        )
        for mode, value in throughput.items():
            if slowest is None or value < slowest[0]:
                slowest = (value, name, mode)
    assert slowest is not None
    _, name, mode = slowest
    shape = WORKLOADS[name]
    runner = PrequentialRunner(_nb_factory, pretrain_size=200, snapshot_every=2_500)
    stream = SEAGenerator(seed=1, **shape)
    detector = RBMIM(
        shape["n_features"], shape["n_classes"], RBMIMConfig(batch_size=50, seed=11)
    )
    profiler = cProfile.Profile()
    profiler.enable()
    runner.run(stream, detector, n_instances=n_instances, **MODES[mode])
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(40)
    stats.sort_stats("tottime").print_stats(25)
    report = (
        f"slowest workload: {name} in {mode} mode "
        f"({slowest[0]:.1f} instances/sec over {n_instances} instances)\n\n"
        + buffer.getvalue()
    )
    out_path = _RECORDED_PATH.parent / "bench_profile.txt"
    out_path.write_text(report, encoding="utf-8")
    print(report)
    print(f"profile -> {out_path}")
    return out_path


def main(smoke: bool = False, profile: bool = False) -> None:
    if profile:
        profile_slowest_workload()
        return
    if smoke:
        # CI harness check: tiny streams, full detector zoo, no recording.
        results = measure_detector_zoo(n_instances=1_500, repeats=1)
        print(json.dumps(results, indent=2))
        missing = set(ZOO_DETECTORS) - set(results["per_detector"])
        if missing:
            raise SystemExit(f"zoo benchmark skipped detectors: {sorted(missing)}")
        # Schedule-composed scenario stream: the batch path must hold the 5x
        # floor over instance mode or the scenario engine has regressed.
        schedule_results = measure_schedule_stream(n_instances=6_000, repeats=2)
        print(json.dumps(schedule_results, indent=2))
        speedup = schedule_results["speedup_batch_vs_instance"]
        if speedup < MIN_SCHEDULE_STREAM_SPEEDUP:
            raise SystemExit(
                f"schedule-composed stream batch generation only "
                f"{speedup:.2f}x faster than instance mode "
                f"(floor {MIN_SCHEDULE_STREAM_SPEEDUP}x)"
            )
        # Fleet engine: the slowest native struct-of-arrays kernel must hold
        # the absolute detector-steps/sec floor across >= 1k streams.
        fleet_results = measure_fleet(
            n_streams=FLEET_N_STREAMS, n_ticks=100, repeats=2
        )
        print(json.dumps(fleet_results, indent=2))
        fleet_floor = fleet_results["min_steps_per_sec"]
        if fleet_floor < MIN_FLEET_STEPS_PER_SEC:
            raise SystemExit(
                f"slowest native fleet kernel only {fleet_floor:,.0f} "
                f"detector-steps/sec across {FLEET_N_STREAMS} streams "
                f"(floor {MIN_FLEET_STEPS_PER_SEC:,.0f})"
            )
        # Snapshot contract: per-chunk checkpointing must not eat the chunked
        # runner's speedup, and the rollback capture must stay at least as
        # cheap as the deepcopy it replaced.
        snapshot_results = measure_snapshot_overhead(n_instances=10_000, repeats=2)
        print(json.dumps(snapshot_results, indent=2))
        relative = snapshot_results["checkpointed_relative_throughput"]
        if relative < MIN_CHECKPOINT_RELATIVE_THROUGHPUT:
            raise SystemExit(
                f"per-chunk checkpointing keeps only {relative:.2f}x of the "
                f"uncheckpointed throughput "
                f"(floor {MIN_CHECKPOINT_RELATIVE_THROUGHPUT}x)"
            )
        snapshot_rbmim = snapshot_results["per_detector"]["RBM-IM"]
        if (
            snapshot_rbmim["snapshot_restore_cycles_per_sec"]
            < MIN_RBMIM_SNAPSHOT_CYCLES_PER_SEC
        ):
            raise SystemExit(
                f"trained RBM-IM manages only "
                f"{snapshot_rbmim['snapshot_restore_cycles_per_sec']:,.0f} "
                f"snapshot->restore cycles/sec "
                f"(floor {MIN_RBMIM_SNAPSHOT_CYCLES_PER_SEC:,.0f})"
            )
        if snapshot_rbmim["snapshot_vs_deepcopy"] < MIN_RBMIM_SNAPSHOT_VS_DEEPCOPY:
            raise SystemExit(
                f"RBM-IM snapshot() capture fell to "
                f"{snapshot_rbmim['snapshot_vs_deepcopy']:.2f}x of the "
                f"deepcopy it replaced "
                f"(floor {MIN_RBMIM_SNAPSHOT_VS_DEEPCOPY}x)"
            )
        # RBM-IM reference workloads: hard floors on the batched CD-k path
        # and the dispatch-free chunk-exact runner.
        rbmim_results = run_benchmark(n_instances=15_000, repeats=3)
        print(json.dumps(rbmim_results, indent=2))
        for name, workload in rbmim_results["workloads"].items():
            batch_speedup = workload["speedup_batch_vs_instance"]
            exact_speedup = workload["speedup_exact_vs_instance"]
            if batch_speedup < SMOKE_MIN_RBMIM_BATCH_SPEEDUP:
                raise SystemExit(
                    f"{name}: batch mode only {batch_speedup:.2f}x faster "
                    f"than instance mode "
                    f"(floor {SMOKE_MIN_RBMIM_BATCH_SPEEDUP}x)"
                )
            if exact_speedup < SMOKE_MIN_EXACT_SPEEDUP:
                raise SystemExit(
                    f"{name}: chunk-exact mode only {exact_speedup:.2f}x "
                    f"faster than instance mode "
                    f"(floor {SMOKE_MIN_EXACT_SPEEDUP}x)"
                )
        print_regression_diff(
            {
                **rbmim_results,
                "detector_zoo": results,
                "schedule_stream": schedule_results,
                "fleet": fleet_results,
                "snapshot_overhead": snapshot_results,
            }
        )
        print(
            "\nsmoke OK: all detectors measured in all modes; "
            f"schedule stream batch {speedup:.1f}x instance mode; "
            f"fleet floor {fleet_floor / 1e6:.1f}M steps/sec across "
            f"{FLEET_N_STREAMS} streams; "
            f"per-chunk checkpointing keeps {relative:.2f}x throughput; "
            "RBM-IM workloads hold the batch/chunk-exact floors"
        )
        return
    # best-of-5: single-core VMs see ±30% host-steal noise per draw, and the
    # recorded ratios gate CI — more repeats, not longer streams, is what
    # tightens them.
    results = run_benchmark(n_instances=30_000, repeats=5)
    results["detector_zoo"] = measure_detector_zoo(n_instances=20_000, repeats=2)
    results["schedule_stream"] = measure_schedule_stream(
        n_instances=20_000, repeats=2
    )
    results["fleet"] = measure_fleet(
        n_streams=FLEET_N_STREAMS, n_ticks=500, repeats=3
    )
    results["snapshot_overhead"] = measure_snapshot_overhead(
        n_instances=20_000, repeats=3
    )
    print_regression_diff(results)
    _RECORDED_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))
    print(f"\nrecorded -> {_RECORDED_PATH}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long zoo run for CI; does not write BENCH_throughput.json",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the slowest workload/mode pair into bench_profile.txt",
    )
    arguments = parser.parse_args()
    main(smoke=arguments.smoke, profile=arguments.profile)
