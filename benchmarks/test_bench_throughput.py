"""Throughput benchmark: instance-mode vs batch-mode prequential execution.

Measures instances/second of the full prequential path (stream generation ->
classifier test -> detector step -> classifier train -> windowed metrics) in
the three execution modes of :class:`PrequentialRunner`:

* ``instance`` — the classic one-``Instance``-at-a-time loop (baseline);
* ``chunk-exact`` — vectorized stream fetch, per-instance models
  (bit-identical results);
* ``batch`` — chunk-granular test-then-train over the batch APIs, driving
  every detector's NumPy-native ``step_batch`` kernel.

Three workload families are measured: the RBM-IM reference path of the
earlier baselines, the full *detector zoo* — every detector in the registry
on the same stream/classifier, instance vs batch mode, with the aggregate
speedup across the zoo as the headline number — and raw generation
throughput of a *schedule-composed scenario stream* (the
:mod:`repro.streams.schedule` engine driving concept transitions, local
drift, imbalance, label noise, and feature drift at once), batch fetch vs
per-instance iteration.

Run as a pytest harness (``PYTHONPATH=src python -m pytest
benchmarks/test_bench_throughput.py``) for a scaled-down regression check, as
a script (``PYTHONPATH=src python benchmarks/test_bench_throughput.py``) to
record the full measurement into ``BENCH_throughput.json`` at the repository
root — the perf trajectory future changes are compared against — or with
``--smoke`` (used by CI) for a seconds-long run that exercises the whole
harness without touching the recorded trajectory.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from bench_common import stream_length

from repro.classifiers import GaussianNaiveBayes
from repro.core.detector import RBMIM, RBMIMConfig
from repro.evaluation.prequential import PrequentialRunner
from repro.protocol.registry import DETECTOR_NAMES, build_detector
from repro.streams.generators import RandomRBFGenerator, SEAGenerator
from repro.streams.imbalance import DynamicImbalance
from repro.streams.schedule import Schedule, ScheduledStream, Segment

#: Conservative CI floor: the recorded baseline shows >= 5x on an idle
#: machine; shared runners are noisy, so the regression gate is looser.
MIN_SPEEDUP = 2.5

#: Floor for the aggregate batch-vs-instance speedup across the detector zoo
#: (recorded baseline >= 3x; same noise allowance as above).
MIN_ZOO_AGGREGATE_SPEEDUP = 2.0

#: Floor for batch-vs-instance generation throughput of a schedule-composed
#: scenario stream.  The recorded baseline shows >= 10x, so even on noisy CI
#: runners the batch path must stay at least 5x ahead — below that, the
#: scenario engine's vectorized path has regressed.
MIN_SCHEDULE_STREAM_SPEEDUP = 5.0

#: Every registry detector (the paper's zoo); "none" is the detector-less
#: baseline and measures only classifier/stream overhead.
ZOO_DETECTORS = tuple(name for name in DETECTOR_NAMES if name != "none")

ZOO_STREAM_SHAPE = dict(n_classes=5, n_features=10)

WORKLOADS = {
    "sea3-rbmim": dict(n_classes=3, n_features=3),
    "sea5x20-rbmim": dict(n_classes=5, n_features=20),
}

MODES = {
    "instance": {},
    "chunk-exact": dict(chunk_size=1024),
    "batch": dict(chunk_size=1024, batch_mode=True),
}


def _nb_factory(n_features: int, n_classes: int) -> GaussianNaiveBayes:
    return GaussianNaiveBayes(n_features, n_classes)


def measure_throughput(
    n_classes: int,
    n_features: int,
    n_instances: int,
    repeats: int = 3,
) -> dict[str, float]:
    """Best-of-``repeats`` instances/sec for every execution mode."""
    runner = PrequentialRunner(
        _nb_factory, pretrain_size=200, snapshot_every=2_500
    )
    throughput: dict[str, float] = {}
    for mode, kwargs in MODES.items():
        best = 0.0
        for _ in range(repeats):
            stream = SEAGenerator(
                n_classes=n_classes, n_features=n_features, seed=1
            )
            detector = RBMIM(
                n_features, n_classes, RBMIMConfig(batch_size=50, seed=11)
            )
            started = time.perf_counter()
            runner.run(stream, detector, n_instances=n_instances, **kwargs)
            elapsed = time.perf_counter() - started
            best = max(best, n_instances / elapsed)
        throughput[mode] = best
    return throughput


def measure_detector_zoo(
    n_instances: int,
    repeats: int = 2,
    detectors: tuple[str, ...] = ZOO_DETECTORS,
) -> dict:
    """Instance vs batch throughput of every registry detector.

    Each detector runs the full prequential path (SEA stream, Gaussian NB)
    once per mode and repeat; reported per-detector numbers are
    best-of-``repeats``, and the aggregate speedup divides total instances
    processed by total wall time per mode (so slow detectors dominate, as
    they do in the real protocol grid).
    """
    runner = PrequentialRunner(_nb_factory, pretrain_size=200, snapshot_every=10**9)
    n_classes = ZOO_STREAM_SHAPE["n_classes"]
    n_features = ZOO_STREAM_SHAPE["n_features"]
    per_detector: dict[str, dict] = {}
    total_time = {"instance": 0.0, "batch": 0.0}
    for name in detectors:
        throughput: dict[str, float] = {}
        for mode, kwargs in (
            ("instance", {}),
            ("batch", dict(chunk_size=1024, batch_mode=True)),
        ):
            mode_best_time = math.inf
            for _ in range(repeats):
                stream = SEAGenerator(seed=1, **ZOO_STREAM_SHAPE)
                detector = build_detector(name, n_features, n_classes)
                started = time.perf_counter()
                runner.run(stream, detector, n_instances=n_instances, **kwargs)
                mode_best_time = min(
                    mode_best_time, time.perf_counter() - started
                )
            throughput[mode] = n_instances / mode_best_time
            total_time[mode] += mode_best_time
        per_detector[name] = {
            "instances_per_sec": {
                mode: round(value, 1) for mode, value in throughput.items()
            },
            "speedup_batch_vs_instance": round(
                throughput["batch"] / throughput["instance"], 2
            ),
        }
    return {
        "description": (
            "Instance-mode vs batch-mode prequential throughput of every "
            "registry detector (SEA stream, Gaussian NB classifier); "
            "best-of-N per detector, aggregate = total instances / total "
            "wall time across the zoo."
        ),
        "n_instances": n_instances,
        "stream": ZOO_STREAM_SHAPE,
        "per_detector": per_detector,
        "aggregate_speedup_batch_vs_instance": round(
            total_time["instance"] / total_time["batch"], 2
        ),
    }


def _schedule_composed_stream(seed: int = 3) -> ScheduledStream:
    """A scenario stream exercising every axis of the schedule engine."""

    def factory(concept: int) -> RandomRBFGenerator:
        return RandomRBFGenerator(
            n_classes=5, n_features=20, concept=concept, seed=seed
        )

    schedule = Schedule.of(
        Segment(length=5_000, concept=0),
        Segment(length=5_000, concept=1, transition="gradual", width=1_000),
        Segment(length=5_000, concept=2, drifted_classes=(3, 4)),
        Segment(
            length=5_000,
            concept=3,
            label_noise=0.05,
            feature_shift=0.2,
            width=500,
        ),
    )
    return ScheduledStream(
        factory,
        schedule,
        imbalance=DynamicImbalance(5, 2.0, 50.0, period=10_000),
        seed=seed + 1,
    )


def measure_schedule_stream(
    n_instances: int, repeats: int = 2, chunk_size: int = 1_024
) -> dict:
    """Generation throughput of the schedule engine: batch vs instance mode."""
    best_time = {"instance": math.inf, "batch": math.inf}
    for _ in range(repeats):
        stream = _schedule_composed_stream()
        started = time.perf_counter()
        for _ in range(n_instances):
            stream.next_instance()
        best_time["instance"] = min(
            best_time["instance"], time.perf_counter() - started
        )
        stream = _schedule_composed_stream()
        produced = 0
        started = time.perf_counter()
        while produced < n_instances:
            produced += stream.generate_batch(
                min(chunk_size, n_instances - produced)
            )[1].shape[0]
        best_time["batch"] = min(best_time["batch"], time.perf_counter() - started)
    return {
        "description": (
            "Raw generation throughput of a schedule-composed scenario "
            "stream (4 segments: sudden + gradual + local drift + label "
            "noise/feature drift, dynamic imbalance), batch fetch vs "
            "per-instance iteration; best of N repeats."
        ),
        "n_instances": n_instances,
        "chunk_size": chunk_size,
        "instances_per_sec": {
            mode: round(n_instances / elapsed, 1)
            for mode, elapsed in best_time.items()
        },
        "speedup_batch_vs_instance": round(
            best_time["instance"] / best_time["batch"], 2
        ),
    }


def run_benchmark(n_instances: int, repeats: int = 3) -> dict:
    results: dict = {
        "description": (
            "Instances/sec of the RBM-IM prequential path (SEA stream, "
            "Gaussian NB classifier, RBM-IM detector) per execution mode; "
            "best of N repeats."
        ),
        "n_instances": n_instances,
        "workloads": {},
    }
    for name, shape in WORKLOADS.items():
        throughput = measure_throughput(
            n_instances=n_instances, repeats=repeats, **shape
        )
        results["workloads"][name] = {
            **shape,
            "instances_per_sec": {
                mode: round(value, 1) for mode, value in throughput.items()
            },
            "speedup_batch_vs_instance": round(
                throughput["batch"] / throughput["instance"], 2
            ),
            "speedup_exact_vs_instance": round(
                throughput["chunk-exact"] / throughput["instance"], 2
            ),
        }
    return results


class TestThroughput:
    def test_batch_mode_speedup(self):
        n_instances = stream_length(12_000, 30_000)
        throughput = measure_throughput(
            n_classes=3, n_features=3, n_instances=n_instances, repeats=2
        )
        speedup = throughput["batch"] / throughput["instance"]
        assert speedup >= MIN_SPEEDUP, (
            f"batch mode only {speedup:.2f}x faster than instance mode "
            f"(floor {MIN_SPEEDUP}x; recorded baseline in "
            "BENCH_throughput.json shows >= 5x)"
        )

    def test_exact_mode_not_slower(self):
        n_instances = stream_length(8_000, 20_000)
        throughput = measure_throughput(
            n_classes=3, n_features=3, n_instances=n_instances, repeats=2
        )
        # The exact chunked mode removes stream overhead only; it must never
        # regress below the plain instance loop by more than noise.
        assert throughput["chunk-exact"] >= 0.9 * throughput["instance"]


class TestDetectorZoo:
    def test_zoo_kernels_beat_instance_mode(self):
        n_instances = stream_length(4_000, 20_000)
        results = measure_detector_zoo(n_instances=n_instances, repeats=1)
        assert set(results["per_detector"]) == set(ZOO_DETECTORS)
        aggregate = results["aggregate_speedup_batch_vs_instance"]
        assert aggregate >= MIN_ZOO_AGGREGATE_SPEEDUP, (
            f"detector-zoo batch path only {aggregate:.2f}x faster than "
            f"instance mode (floor {MIN_ZOO_AGGREGATE_SPEEDUP}x; recorded "
            "baseline in BENCH_throughput.json shows >= 3x)"
        )


class TestScheduleStream:
    def test_schedule_stream_batch_generation_speedup(self):
        n_instances = stream_length(6_000, 20_000)
        results = measure_schedule_stream(n_instances=n_instances, repeats=2)
        speedup = results["speedup_batch_vs_instance"]
        assert speedup >= MIN_SCHEDULE_STREAM_SPEEDUP, (
            f"schedule-composed stream batch generation only {speedup:.2f}x "
            f"faster than instance mode (floor "
            f"{MIN_SCHEDULE_STREAM_SPEEDUP}x; recorded baseline shows >= 10x)"
        )


def main(smoke: bool = False) -> None:
    if smoke:
        # CI harness check: tiny streams, full detector zoo, no recording.
        results = measure_detector_zoo(n_instances=1_500, repeats=1)
        print(json.dumps(results, indent=2))
        missing = set(ZOO_DETECTORS) - set(results["per_detector"])
        if missing:
            raise SystemExit(f"zoo benchmark skipped detectors: {sorted(missing)}")
        # Schedule-composed scenario stream: the batch path must hold the 5x
        # floor over instance mode or the scenario engine has regressed.
        schedule_results = measure_schedule_stream(n_instances=6_000, repeats=2)
        print(json.dumps(schedule_results, indent=2))
        speedup = schedule_results["speedup_batch_vs_instance"]
        if speedup < MIN_SCHEDULE_STREAM_SPEEDUP:
            raise SystemExit(
                f"schedule-composed stream batch generation only "
                f"{speedup:.2f}x faster than instance mode "
                f"(floor {MIN_SCHEDULE_STREAM_SPEEDUP}x)"
            )
        print(
            "\nsmoke OK: all detectors measured in both modes; "
            f"schedule stream batch {speedup:.1f}x instance mode"
        )
        return
    results = run_benchmark(n_instances=30_000, repeats=3)
    results["detector_zoo"] = measure_detector_zoo(n_instances=20_000, repeats=2)
    results["schedule_stream"] = measure_schedule_stream(
        n_instances=20_000, repeats=2
    )
    path = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
    path.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))
    print(f"\nrecorded -> {path}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long zoo run for CI; does not write BENCH_throughput.json",
    )
    main(smoke=parser.parse_args().smoke)
