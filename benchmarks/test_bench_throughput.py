"""Throughput benchmark: instance-mode vs batch-mode prequential execution.

Measures instances/second of the full RBM-IM prequential path (stream
generation -> classifier test -> detector step -> classifier train -> windowed
metrics) in the three execution modes of :class:`PrequentialRunner`:

* ``instance`` — the classic one-``Instance``-at-a-time loop (baseline);
* ``chunk-exact`` — vectorized stream fetch, per-instance models
  (bit-identical results);
* ``batch`` — chunk-granular test-then-train over the batch APIs.

Run as a pytest harness (``PYTHONPATH=src python -m pytest
benchmarks/test_bench_throughput.py``) for a scaled-down regression check, or
as a script (``PYTHONPATH=src python benchmarks/test_bench_throughput.py``) to
record the full measurement into ``BENCH_throughput.json`` at the repository
root — the perf trajectory future changes are compared against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from bench_common import stream_length

from repro.classifiers import GaussianNaiveBayes
from repro.core.detector import RBMIM, RBMIMConfig
from repro.evaluation.prequential import PrequentialRunner
from repro.streams.generators import SEAGenerator

#: Conservative CI floor: the recorded baseline shows >= 5x on an idle
#: machine; shared runners are noisy, so the regression gate is looser.
MIN_SPEEDUP = 2.5

WORKLOADS = {
    "sea3-rbmim": dict(n_classes=3, n_features=3),
    "sea5x20-rbmim": dict(n_classes=5, n_features=20),
}

MODES = {
    "instance": {},
    "chunk-exact": dict(chunk_size=1024),
    "batch": dict(chunk_size=1024, batch_mode=True),
}


def _nb_factory(n_features: int, n_classes: int) -> GaussianNaiveBayes:
    return GaussianNaiveBayes(n_features, n_classes)


def measure_throughput(
    n_classes: int,
    n_features: int,
    n_instances: int,
    repeats: int = 3,
) -> dict[str, float]:
    """Best-of-``repeats`` instances/sec for every execution mode."""
    runner = PrequentialRunner(
        _nb_factory, pretrain_size=200, snapshot_every=2_500
    )
    throughput: dict[str, float] = {}
    for mode, kwargs in MODES.items():
        best = 0.0
        for _ in range(repeats):
            stream = SEAGenerator(
                n_classes=n_classes, n_features=n_features, seed=1
            )
            detector = RBMIM(
                n_features, n_classes, RBMIMConfig(batch_size=50, seed=11)
            )
            started = time.perf_counter()
            runner.run(stream, detector, n_instances=n_instances, **kwargs)
            elapsed = time.perf_counter() - started
            best = max(best, n_instances / elapsed)
        throughput[mode] = best
    return throughput


def run_benchmark(n_instances: int, repeats: int = 3) -> dict:
    results: dict = {
        "description": (
            "Instances/sec of the RBM-IM prequential path (SEA stream, "
            "Gaussian NB classifier, RBM-IM detector) per execution mode; "
            "best of N repeats."
        ),
        "n_instances": n_instances,
        "workloads": {},
    }
    for name, shape in WORKLOADS.items():
        throughput = measure_throughput(
            n_instances=n_instances, repeats=repeats, **shape
        )
        results["workloads"][name] = {
            **shape,
            "instances_per_sec": {
                mode: round(value, 1) for mode, value in throughput.items()
            },
            "speedup_batch_vs_instance": round(
                throughput["batch"] / throughput["instance"], 2
            ),
            "speedup_exact_vs_instance": round(
                throughput["chunk-exact"] / throughput["instance"], 2
            ),
        }
    return results


class TestThroughput:
    def test_batch_mode_speedup(self):
        n_instances = stream_length(12_000, 30_000)
        throughput = measure_throughput(
            n_classes=3, n_features=3, n_instances=n_instances, repeats=2
        )
        speedup = throughput["batch"] / throughput["instance"]
        assert speedup >= MIN_SPEEDUP, (
            f"batch mode only {speedup:.2f}x faster than instance mode "
            f"(floor {MIN_SPEEDUP}x; recorded baseline in "
            "BENCH_throughput.json shows >= 5x)"
        )

    def test_exact_mode_not_slower(self):
        n_instances = stream_length(8_000, 20_000)
        throughput = measure_throughput(
            n_classes=3, n_features=3, n_instances=n_instances, repeats=2
        )
        # The exact chunked mode removes stream overhead only; it must never
        # regress below the plain instance loop by more than noise.
        assert throughput["chunk-exact"] >= 0.9 * throughput["instance"]


def main() -> None:
    results = run_benchmark(n_instances=30_000, repeats=3)
    path = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
    path.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))
    print(f"\nrecorded -> {path}")


if __name__ == "__main__":
    main()
