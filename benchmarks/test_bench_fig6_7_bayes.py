"""Figures 6-7: Bayesian signed test, RBM-IM vs PerfSim and vs DDM-OCI.

The paper visualises the posterior of the Bayesian signed test comparing
RBM-IM against the two skew-insensitive baselines, for both pmAUC and pmGM.
This harness reproduces the posterior probabilities p(RBM-IM better),
p(practically equivalent), p(baseline better) on the reproduced Table III
results.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_common import results_to_tables, run_table3_experiment
from repro.evaluation.stats import bayesian_signed_test

_BASELINES = ["PerfSim", "DDM-OCI"]


def _bayes_analysis():
    pmauc, pmgm = results_to_tables(run_table3_experiment())
    analysis = {}
    for metric_name, table in (("pmAUC", pmauc), ("pmGM", pmgm)):
        matrix = table.to_matrix()
        methods = table.methods
        rbm = matrix[:, methods.index("RBM-IM")]
        for baseline in _BASELINES:
            base = matrix[:, methods.index(baseline)]
            # Scores are percentages; a 1-point difference is the ROPE.
            analysis[(metric_name, baseline)] = bayesian_signed_test(
                rbm, base, rope=1.0, seed=0
            )
    return analysis


@pytest.mark.benchmark(group="fig6-7")
def test_bench_fig6_7_bayesian_signed_test(benchmark):
    """Reproduce Fig. 6 (vs PerfSim) and Fig. 7 (vs DDM-OCI)."""
    analysis = benchmark.pedantic(_bayes_analysis, rounds=1, iterations=1)

    for (metric_name, baseline), result in analysis.items():
        figure = "6" if baseline == "PerfSim" else "7"
        print(
            f"\n=== Fig. {figure} ({metric_name}): RBM-IM vs {baseline} ===\n"
            f"  p(RBM-IM better) = {result.p_left:.3f}\n"
            f"  p(rope)          = {result.p_rope:.3f}\n"
            f"  p({baseline} better) = {result.p_right:.3f}"
        )
        total = result.p_left + result.p_rope + result.p_right
        assert np.isclose(total, 1.0)
        # Shape check: the posterior should not decisively favour the baseline.
        assert result.p_right < 0.95
