"""Per-detector update-throughput micro-benchmarks (Table III, bottom rows).

The paper reports the average test/update times of every detector.  These
micro-benchmarks measure the per-instance ``step`` cost of each detector on a
pre-generated imbalanced multi-class stream, using pytest-benchmark's timing
machinery directly (so the numbers in the benchmark table are directly
comparable across detectors).
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_common import bench_detector_factories
from repro.streams.scenarios import make_artificial_stream

_N_WARMUP = 200
_N_TIMED = 1_000


@pytest.fixture(scope="module")
def timing_stream():
    scenario = make_artificial_stream(
        "rbf", 5, n_instances=_N_WARMUP + _N_TIMED + 10, max_imbalance_ratio=50, seed=9
    )
    instances = scenario.stream.take(_N_WARMUP + _N_TIMED)
    X = np.vstack([inst.x for inst in instances])
    y = np.asarray([inst.y for inst in instances])
    return scenario, X, y


@pytest.mark.benchmark(group="timing")
@pytest.mark.parametrize("detector_name", sorted(bench_detector_factories()))
def test_bench_detector_update_throughput(benchmark, timing_stream, detector_name):
    """Time the per-instance update cost of one detector."""
    scenario, X, y = timing_stream
    factory = bench_detector_factories(batch_size=50)[detector_name]

    def run_updates():
        detector = factory(scenario.n_features, scenario.n_classes)
        detector.warm_start(X[:_N_WARMUP], y[:_N_WARMUP])
        # Feed the classifier's own label back as the prediction: timing is
        # independent of prediction quality.
        for i in range(_N_WARMUP, _N_WARMUP + _N_TIMED):
            detector.step(X[i], int(y[i]), int(y[(i + 1) % len(y)]))
        return detector.n_observations

    observations = benchmark.pedantic(run_updates, rounds=1, iterations=1)
    assert observations == _N_TIMED
