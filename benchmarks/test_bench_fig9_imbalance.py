"""Figure 9: pmAUC as a function of the multi-class imbalance ratio.

Experiment 3 of the paper sweeps the maximum imbalance ratio from 50 to 500
and measures how each detector's pmAUC degrades — standard detectors collapse,
skew-insensitive baselines hold up to moderate ratios, and RBM-IM is reported
to stay robust throughout.  This harness regenerates the series on the
artificial benchmark families.
"""

from __future__ import annotations

import pytest

from bench_common import DETECTOR_ORDER, bench_scale, run_imbalance_curve
from repro.evaluation.results import format_series_table

_SMALL_GRID = [
    ("rbf", 5, [50.0, 200.0, 500.0]),
    ("hyperplane", 5, [50.0, 200.0, 500.0]),
]
_FULL_GRID = [
    (family, n_classes, [50.0, 100.0, 200.0, 300.0, 400.0, 500.0])
    for family in ("agrawal", "hyperplane", "rbf", "randomtree")
    for n_classes in (5, 10, 20)
]


def _grid():
    return _FULL_GRID if bench_scale() == "full" else _SMALL_GRID


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("family,n_classes,ratios", _grid())
def test_bench_fig9_imbalance_robustness(benchmark, family, n_classes, ratios):
    """Reproduce one panel of Fig. 9 (pmAUC vs imbalance ratio)."""
    series = benchmark.pedantic(
        run_imbalance_curve,
        args=(family, n_classes, ratios),
        rounds=1,
        iterations=1,
    )

    print(f"\n=== Fig. 9 panel: {family.capitalize()}{n_classes} ===")
    print(format_series_table("imbalance_ratio", [int(r) for r in ratios], series))

    for name in DETECTOR_ORDER:
        assert len(series[name]) == len(ratios)
        assert all(0.0 <= value <= 100.0 for value in series[name])

    # Report the paper's headline comparison at the most extreme imbalance
    # ratio; asserted only loosely because the scaled-down streams favour
    # frequently-resetting detectors (see EXPERIMENTS.md).
    extreme = {name: series[name][-1] for name in DETECTOR_ORDER}
    best_standard = max(extreme["WSTD"], extreme["RDDM"], extreme["FHDDM"])
    print(
        f"\nExtreme imbalance (IR={int(ratios[-1])}): RBM-IM = {extreme['RBM-IM']:.1f}, "
        f"best standard detector = {best_standard:.1f}"
    )
    assert extreme["RBM-IM"] >= best_standard - 30.0, extreme
