"""Table III: pmAUC / pmGM of the six detectors over the benchmark streams.

Regenerates the paper's main comparison table (Experiment 1).  For every
benchmark stream the six detectors (WSTD, RDDM, FHDDM, PerfSim, DDM-OCI,
RBM-IM) are paired with the same base classifier in a prequential run; the
harness prints both metric tables together with the average ranks — the same
rows the paper reports.  Run with ``-s`` to see the tables.
"""

from __future__ import annotations

import pytest

from bench_common import DETECTOR_ORDER, results_to_tables, run_table3_experiment


def _build_tables():
    results = run_table3_experiment()
    return results_to_tables(results)


@pytest.mark.benchmark(group="table3")
def test_bench_table3_pmauc_pmgm(benchmark):
    """Reproduce Table III (pmAUC and pmGM per stream, plus average ranks)."""
    pmauc, pmgm = benchmark.pedantic(_build_tables, rounds=1, iterations=1)

    print("\n=== Table III (reproduced, scaled-down): pmAUC [%] ===")
    print(pmauc.to_text())
    print("\n=== Table III (reproduced, scaled-down): pmGM [%] ===")
    print(pmgm.to_text())

    # Structural checks: every stream has a value for every detector and the
    # values are valid percentages.
    matrix = pmauc.to_matrix()
    assert matrix.shape[1] == len(DETECTOR_ORDER)
    assert ((matrix >= 0.0) & (matrix <= 100.0)).all()

    # Report the rank comparison the paper highlights (imbalance-aware vs
    # standard detectors).  At the scaled-down benchmark size the ordering can
    # deviate from the paper (see EXPERIMENTS.md), so this is reported rather
    # than asserted; the assertion only checks the ranks are well-formed.
    ranks = pmauc.ranks()
    skew_aware = (ranks["PerfSim"] + ranks["DDM-OCI"] + ranks["RBM-IM"]) / 3.0
    standard = (ranks["WSTD"] + ranks["RDDM"] + ranks["FHDDM"]) / 3.0
    print(
        f"\nMean rank, imbalance-aware detectors = {skew_aware:.2f}; "
        f"standard detectors = {standard:.2f} (paper: imbalance-aware ahead)"
    )
    assert all(1.0 <= rank <= len(DETECTOR_ORDER) for rank in ranks.values())


@pytest.mark.benchmark(group="table3")
def test_bench_table3_update_times(benchmark):
    """Reproduce the timing rows of Table III (avg detector update time)."""

    def collect_times():
        results = run_table3_experiment()
        totals = {name: 0.0 for name in DETECTOR_ORDER}
        counts = {name: 0 for name in DETECTOR_ORDER}
        for per_detector in results.values():
            for name in DETECTOR_ORDER:
                totals[name] += per_detector[name].detector_time
                counts[name] += 1
        return {name: totals[name] / max(counts[name], 1) for name in DETECTOR_ORDER}

    times = benchmark.pedantic(collect_times, rounds=1, iterations=1)
    print("\n=== Table III (reproduced): mean detector time per stream [s] ===")
    for name in DETECTOR_ORDER:
        print(f"  {name:10s} {times[name]:8.3f}")
    assert all(value >= 0.0 for value in times.values())
