"""Shared infrastructure for the benchmark harnesses.

Every table and figure of the paper's evaluation has a dedicated
``test_bench_*.py`` harness in this directory; they all build on the helpers
here.  Stream lengths and the number of benchmark streams are scaled down by
default so the full suite runs in a few minutes on a laptop; set the
environment variable ``REPRO_BENCH_SCALE=full`` for longer streams (closer to
the paper's setup, at a correspondingly higher runtime).

The paper's absolute numbers were obtained on 1-2M instance streams with MOA
and tuned hyper-parameters; the scaled-down harness reproduces the *shape* of
the comparisons (which detector family wins where, and how performance reacts
to local drifts and rising imbalance), not the absolute values.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.classifiers import GaussianNaiveBayes
from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors import DDM_OCI, FHDDM, PerfSim, RDDM, WSTD
from repro.evaluation.experiment import compare_detectors
from repro.evaluation.prequential import RunResult
from repro.evaluation.results import ResultTable
from repro.streams.real_world import real_world_stream
from repro.streams.scenarios import (
    ScenarioStream,
    make_artificial_stream,
    scenario_local_drift,
)

#: Detector names in the order used throughout the paper's tables/figures.
DETECTOR_ORDER = ["WSTD", "RDDM", "FHDDM", "PerfSim", "DDM-OCI", "RBM-IM"]


def bench_scale() -> str:
    """Benchmark scale: ``"small"`` (default) or ``"full"``."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def stream_length(small: int, full: int) -> int:
    """Pick a stream length according to the configured scale."""
    return full if bench_scale() == "full" else small


def bench_detector_factories(batch_size: int = 50, seed: int = 11):
    """The paper's six detectors with benchmark-friendly settings."""

    return {
        "WSTD": lambda f, c: WSTD(window_size=75, drift_significance=0.003),
        "RDDM": lambda f, c: RDDM(),
        "FHDDM": lambda f, c: FHDDM(window_size=100, delta=1e-6),
        "PerfSim": lambda f, c: PerfSim(n_classes=c, batch_size=10 * batch_size),
        "DDM-OCI": lambda f, c: DDM_OCI(n_classes=c),
        "RBM-IM": lambda f, c: RBMIM(
            f, c, RBMIMConfig(batch_size=batch_size, seed=seed)
        ),
    }


def bench_classifier_factory(n_features: int, n_classes: int):
    """Fast skew-aware classifier used by the benchmark harnesses.

    The paper pairs every detector with a cost-sensitive perceptron tree; the
    benchmark default uses online Gaussian naive Bayes because it is an order
    of magnitude faster while preserving the detector ranking (the classifier
    is identical across detectors, so only relative differences matter).
    """
    return GaussianNaiveBayes(n_features, n_classes)


def table_i_benchmark_streams(seed: int = 0) -> list[ScenarioStream]:
    """The 24-stream benchmark of Table I (subset at small scale).

    At ``small`` scale a representative subset is used: six real-world
    surrogates spanning few/many classes and low/high imbalance, plus six
    artificial streams (one per family and class count mix).  At ``full``
    scale all 24 streams are built.
    """
    if bench_scale() == "full":
        real_names = [
            "Activity-Raw", "Connect4", "Covertype", "Crimes", "DJ30", "EEG",
            "Electricity", "Gas", "Olympic", "Poker", "IntelSensors", "Tags",
        ]
        artificial = [
            ("agrawal", 5), ("agrawal", 10), ("agrawal", 20),
            ("hyperplane", 5), ("hyperplane", 10), ("hyperplane", 20),
            ("rbf", 5), ("rbf", 10), ("rbf", 20),
            ("randomtree", 5), ("randomtree", 10), ("randomtree", 20),
        ]
        n_instances = 50_000
        max_real = 50_000
    else:
        real_names = ["EEG", "Electricity", "Connect4", "Gas", "Olympic", "Tags"]
        artificial = [
            ("agrawal", 5), ("hyperplane", 5), ("rbf", 5),
            ("rbf", 10), ("randomtree", 5), ("randomtree", 10),
        ]
        n_instances = 3_000
        max_real = 3_000

    streams: list[ScenarioStream] = []
    for name in real_names:
        streams.append(real_world_stream(name, max_instances=max_real, seed=seed))
    for family, n_classes in artificial:
        streams.append(
            make_artificial_stream(
                family,
                n_classes,
                n_instances=n_instances,
                max_imbalance_ratio=50.0,
                seed=seed,
            )
        )
    return streams


@lru_cache(maxsize=1)
def run_table3_experiment(seed: int = 0) -> dict[str, dict[str, RunResult]]:
    """Run the Experiment-1 grid once per session and cache the results.

    Returns ``{stream_name: {detector_name: RunResult}}``.  Both the Table III
    harness and the Fig. 4-7 statistical harnesses consume this cache so the
    expensive prequential runs happen only once per pytest session.
    """
    results: dict[str, dict[str, RunResult]] = {}
    for scenario in table_i_benchmark_streams(seed=seed):
        results[scenario.name] = compare_detectors(
            scenario,
            detector_factories=bench_detector_factories(),
            classifier_factory=bench_classifier_factory,
            n_instances=scenario.n_instances,
            pretrain_size=200,
        )
    return results


def results_to_tables(
    results: dict[str, dict[str, RunResult]]
) -> tuple[ResultTable, ResultTable]:
    """Convert cached Experiment-1 results into pmAUC and pmGM tables."""
    pmauc = ResultTable(metric_name="pmAUC")
    pmgm = ResultTable(metric_name="pmGM")
    for stream_name, per_detector in results.items():
        for detector in DETECTOR_ORDER:
            run = per_detector[detector]
            pmauc.add(stream_name, detector, 100.0 * run.pmauc)
            pmgm.add(stream_name, detector, 100.0 * run.pmgm)
    return pmauc, pmgm


def run_local_drift_curve(
    family: str,
    n_classes: int,
    drifted_class_counts: list[int],
    seed: int = 1,
) -> dict[str, list[float]]:
    """pmAUC of every detector as the number of drifted classes varies (Fig. 8)."""
    n_instances = stream_length(2_500, 20_000)
    series: dict[str, list[float]] = {name: [] for name in DETECTOR_ORDER}
    for k in drifted_class_counts:
        scenario = scenario_local_drift(
            family,
            n_classes=n_classes,
            n_drifted_classes=k,
            n_instances=n_instances,
            max_imbalance_ratio=25.0,
            role_switching=True,
            seed=seed,
        )
        results = compare_detectors(
            scenario,
            detector_factories=bench_detector_factories(batch_size=25),
            classifier_factory=bench_classifier_factory,
            n_instances=n_instances,
            pretrain_size=200,
        )
        for name in DETECTOR_ORDER:
            series[name].append(100.0 * results[name].pmauc)
    return series


def run_imbalance_curve(
    family: str,
    n_classes: int,
    imbalance_ratios: list[float],
    seed: int = 2,
) -> dict[str, list[float]]:
    """pmAUC of every detector as the maximum imbalance ratio rises (Fig. 9)."""
    n_instances = stream_length(2_500, 20_000)
    series: dict[str, list[float]] = {name: [] for name in DETECTOR_ORDER}
    for ratio in imbalance_ratios:
        scenario = make_artificial_stream(
            family,
            n_classes,
            n_instances=n_instances,
            max_imbalance_ratio=ratio,
            seed=seed,
        )
        results = compare_detectors(
            scenario,
            detector_factories=bench_detector_factories(batch_size=25),
            classifier_factory=bench_classifier_factory,
            n_instances=n_instances,
            pretrain_size=200,
        )
        for name in DETECTOR_ORDER:
            series[name].append(100.0 * results[name].pmauc)
    return series
