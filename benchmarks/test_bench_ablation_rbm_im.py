"""Ablation study of RBM-IM's design choices (extension beyond the paper).

DESIGN.md calls out the components whose contribution is worth isolating:
the class-balanced (skew-insensitive) loss, the Granger-causality decision
rule, and the mini-batch size.  This harness measures pmAUC and detection
counts on a Scenario-3 style stream for each ablated variant, so the cost of
removing each ingredient is visible.
"""

from __future__ import annotations

import pytest

from bench_common import bench_classifier_factory, stream_length
from repro.core.detector import RBMIM, RBMIMConfig
from repro.evaluation.experiment import compare_detectors
from repro.streams.scenarios import scenario_local_drift

_VARIANTS = {
    "RBM-IM (full)": dict(),
    "no class-balanced loss": dict(balance_beta=0.0),
    "no Granger test": dict(use_granger=False),
    "no confirmation": dict(confirmation_batches=1),
    "large batches": dict(batch_size=100),
}


def _run_ablation():
    n_instances = stream_length(2_500, 20_000)
    scenario = scenario_local_drift(
        "rbf",
        n_classes=5,
        n_drifted_classes=2,
        n_instances=n_instances,
        max_imbalance_ratio=25.0,
        seed=4,
    )

    def make_factory(overrides):
        def factory(n_features, n_classes):
            kwargs = {"batch_size": 25, "seed": 4, **overrides}
            return RBMIM(n_features, n_classes, RBMIMConfig(**kwargs))

        return factory

    factories = {name: make_factory(overrides) for name, overrides in _VARIANTS.items()}
    results = compare_detectors(
        scenario,
        detector_factories=factories,
        classifier_factory=bench_classifier_factory,
        n_instances=n_instances,
        pretrain_size=200,
    )
    return results


@pytest.mark.benchmark(group="ablation")
def test_bench_rbm_im_ablation(benchmark):
    """Measure the impact of removing each RBM-IM ingredient."""
    results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    print("\n=== RBM-IM ablation (Scenario 3, local drift on 2 minority classes) ===")
    print(f"{'variant':28s} {'pmAUC':>8s} {'pmGM':>8s} {'#alarms':>8s}")
    for name, result in results.items():
        print(
            f"{name:28s} {100 * result.pmauc:8.2f} {100 * result.pmgm:8.2f} "
            f"{len(result.detections):8d}"
        )

    for result in results.values():
        assert 0.0 <= result.pmauc <= 1.0
    # Removing the confirmation step may only increase the number of alarms.
    assert len(results["no confirmation"].detections) >= len(
        results["RBM-IM (full)"].detections
    )
