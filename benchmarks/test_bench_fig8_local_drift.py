"""Figure 8: pmAUC as a function of the number of classes affected by a local drift.

Experiment 2 of the paper injects a real concept drift into 1..M classes
(starting from the smallest minority class) and measures how each detector's
pmAUC degrades as fewer classes are affected — the fewer classes drift, the
harder the detection.  This harness regenerates the series for the artificial
benchmark families; at the default (small) scale one representative family per
class count is swept.
"""

from __future__ import annotations

import pytest

from bench_common import DETECTOR_ORDER, bench_scale, run_local_drift_curve
from repro.evaluation.results import format_series_table

# (family, n_classes, drifted-class counts swept)
_SMALL_GRID = [
    ("rbf", 5, [1, 3, 5]),
    ("randomtree", 5, [1, 3, 5]),
]
_FULL_GRID = [
    (family, n_classes, list(range(1, n_classes + 1, max(1, n_classes // 5))))
    for family in ("agrawal", "hyperplane", "rbf", "randomtree")
    for n_classes in (5, 10, 20)
]


def _grid():
    return _FULL_GRID if bench_scale() == "full" else _SMALL_GRID


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("family,n_classes,counts", _grid())
def test_bench_fig8_local_drift(benchmark, family, n_classes, counts):
    """Reproduce one panel of Fig. 8 (pmAUC vs #classes with drift)."""
    series = benchmark.pedantic(
        run_local_drift_curve,
        args=(family, n_classes, counts),
        rounds=1,
        iterations=1,
    )

    print(f"\n=== Fig. 8 panel: {family.capitalize()}{n_classes} ===")
    print(format_series_table("classes_with_drift", counts, series))

    for name in DETECTOR_ORDER:
        assert len(series[name]) == len(counts)
        assert all(0.0 <= value <= 100.0 for value in series[name])

    # Report the paper's headline comparison for the hardest case (one drifted
    # class); asserted only loosely because the scaled-down streams favour
    # frequently-resetting detectors (see EXPERIMENTS.md).
    hardest = {name: series[name][0] for name in DETECTOR_ORDER}
    best_baseline = max(value for name, value in hardest.items() if name != "RBM-IM")
    print(
        f"\nHardest case (1 drifted class): RBM-IM = {hardest['RBM-IM']:.1f}, "
        f"best baseline = {best_baseline:.1f}"
    )
    assert hardest["RBM-IM"] >= best_baseline - 30.0, hardest
