"""Figures 4-5: Friedman ranking with the Bonferroni-Dunn post-hoc test.

The paper visualises the detectors' average ranks (for pmAUC and pmGM) on a
critical-distance diagram.  This harness reproduces the underlying numbers:
the Friedman test statistic, the per-detector average ranks, the
Bonferroni-Dunn critical distance, and which baselines fall outside RBM-IM's
critical-distance band.
"""

from __future__ import annotations

import pytest

from bench_common import DETECTOR_ORDER, results_to_tables, run_table3_experiment
from repro.evaluation.stats import bonferroni_dunn_test, friedman_test


def _rank_analysis():
    pmauc, pmgm = results_to_tables(run_table3_experiment())
    analysis = {}
    for metric_name, table in (("pmAUC", pmauc), ("pmGM", pmgm)):
        matrix = table.to_matrix()
        friedman = friedman_test(matrix)
        post_hoc = bonferroni_dunn_test(
            matrix, table.methods, control="RBM-IM", alpha=0.05
        )
        analysis[metric_name] = (friedman, post_hoc)
    return analysis


@pytest.mark.benchmark(group="fig4-5")
def test_bench_fig4_5_bonferroni_dunn(benchmark):
    """Reproduce the Fig. 4 (pmAUC) and Fig. 5 (pmGM) rank diagrams."""
    analysis = benchmark.pedantic(_rank_analysis, rounds=1, iterations=1)

    for metric_name, (friedman, post_hoc) in analysis.items():
        print(f"\n=== Fig. {'4' if metric_name == 'pmAUC' else '5'} ({metric_name}) ===")
        print(f"Friedman chi-square = {friedman.statistic:.3f}, p = {friedman.p_value:.4f}")
        print(f"Bonferroni-Dunn critical distance = {post_hoc.critical_distance:.3f}")
        for name in DETECTOR_ORDER:
            marker = " *worse than control*" if name in post_hoc.significantly_worse else ""
            print(f"  {name:10s} rank = {post_hoc.average_ranks[name]:.2f}{marker}")

        ranks = post_hoc.average_ranks
        assert set(ranks) == set(DETECTOR_ORDER)
        assert post_hoc.critical_distance > 0.0
        assert all(1.0 <= rank <= len(DETECTOR_ORDER) for rank in ranks.values())
        # NOTE: at the scaled-down benchmark size the rank ordering does not
        # necessarily match the paper (RBM-IM underfits short streams — see
        # EXPERIMENTS.md); the harness asserts the analysis is well-formed and
        # reports the reproduced ordering for inspection.
