"""Unit and integration tests for the prequential runner and experiments."""

import numpy as np
import pytest

from repro.classifiers import GaussianNaiveBayes, OnlinePerceptron
from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors import DDM
from repro.detectors.base import ErrorRateDetector
from repro.evaluation.experiment import (
    compare_detectors,
    default_classifier_factory,
    paper_detector_factories,
)
from repro.evaluation.prequential import PrequentialRunner
from repro.streams.generators import RandomRBFGenerator
from repro.streams.scenarios import make_artificial_stream, scenario_local_drift


def perceptron_factory(n_features, n_classes):
    return OnlinePerceptron(n_features, n_classes, seed=0)


def nb_factory(n_features, n_classes):
    return GaussianNaiveBayes(n_features, n_classes)


class _NeverDrift(ErrorRateDetector):
    def add_element(self, value: float) -> None:  # never signals
        return


class TestPrequentialRunner:
    def test_run_on_plain_stream(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=6, seed=0)
        runner = PrequentialRunner(perceptron_factory, pretrain_size=100)
        result = runner.run(stream, DDM(), n_instances=1500)
        assert result.n_instances == 1500
        assert 0.0 <= result.pmauc <= 1.0
        assert 0.0 <= result.pmgm <= 1.0
        assert result.drift_report is None
        assert result.detector_name == "DDM"

    def test_run_on_scenario_produces_drift_report(self):
        scenario = make_artificial_stream(
            "rbf", 5, n_instances=2000, max_imbalance_ratio=10, seed=1
        )
        runner = PrequentialRunner(nb_factory, pretrain_size=100)
        result = runner.run(scenario, DDM(), n_instances=2000)
        assert result.drift_report is not None
        assert result.drift_report.n_true_drifts == 3
        assert result.stream_name == "Rbf5"

    def test_detector_none_baseline(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=6, seed=2)
        runner = PrequentialRunner(perceptron_factory, pretrain_size=50)
        result = runner.run(stream, None, n_instances=800)
        assert result.detections == []
        assert result.detector_name == "none"
        assert result.detector_time == 0.0

    def test_learned_classifier_beats_chance(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=6, seed=3)
        runner = PrequentialRunner(nb_factory, pretrain_size=100)
        result = runner.run(stream, None, n_instances=2000)
        assert result.pmauc > 0.7

    def test_detections_trigger_classifier_rebuild(self):
        scenario = make_artificial_stream(
            "rbf", 5, n_instances=2000, max_imbalance_ratio=10, seed=4
        )
        runner = PrequentialRunner(nb_factory, pretrain_size=100, rebuild_buffer=50)
        drifting_result = runner.run(scenario, DDM(), n_instances=2000)
        # The run completed and recorded classifier work after resets.
        assert drifting_result.classifier_time > 0.0

    def test_never_drift_detector_records_no_detections(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=6, seed=5)
        runner = PrequentialRunner(perceptron_factory, pretrain_size=50)
        result = runner.run(stream, _NeverDrift(), n_instances=600)
        assert result.detections == []
        assert result.detected_classes == []

    def test_rbmim_receives_warm_start(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=6, seed=6)
        detector = RBMIM(6, 3, RBMIMConfig(batch_size=25, seed=0))
        runner = PrequentialRunner(perceptron_factory, pretrain_size=100)
        runner.run(stream, detector, n_instances=800)
        assert detector.rbm.n_batches_trained > 0

    def test_snapshots_collected(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=6, seed=7)
        runner = PrequentialRunner(
            perceptron_factory, pretrain_size=100, snapshot_every=200
        )
        result = runner.run(stream, None, n_instances=1200)
        assert len(result.snapshots) >= 4

    def test_finite_stream_ends_early(self, tiny_list_stream):
        runner = PrequentialRunner(perceptron_factory, pretrain_size=10)
        result = runner.run(tiny_list_stream, DDM(), n_instances=10_000)
        assert result.n_instances == 10_000  # requested, but stream ends sooner
        assert result.snapshots == [] or result.snapshots[-1].position <= 60

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PrequentialRunner(perceptron_factory, pretrain_size=-1)


class TestExperimentOrchestration:
    def test_paper_detector_factories_names(self):
        factories = paper_detector_factories()
        assert set(factories) == {
            "WSTD",
            "RDDM",
            "FHDDM",
            "PerfSim",
            "DDM-OCI",
            "RBM-IM",
        }
        for factory in factories.values():
            detector = factory(10, 4)
            assert hasattr(detector, "step")

    def test_default_classifier_factory(self):
        classifier = default_classifier_factory(8, 5)
        assert classifier.n_features == 8
        assert classifier.n_classes == 5

    def test_compare_detectors_runs_all(self):
        scenario = scenario_local_drift(
            "rbf",
            n_classes=4,
            n_drifted_classes=1,
            n_instances=1200,
            max_imbalance_ratio=10,
            seed=2,
        )
        factories = {
            "DDM": lambda f, c: DDM(),
            "RBM-IM": lambda f, c: RBMIM(f, c, RBMIMConfig(batch_size=25, seed=1)),
        }
        results = compare_detectors(
            scenario,
            detector_factories=factories,
            classifier_factory=nb_factory,
            n_instances=1200,
            pretrain_size=100,
        )
        assert set(results) == {"DDM", "RBM-IM"}
        for result in results.values():
            assert 0.0 <= result.pmauc <= 1.0
            assert result.n_instances == 1200
