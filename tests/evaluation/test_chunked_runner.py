"""Chunked prequential runner: parity with instance mode, and batch mode.

The chunked exact mode must reproduce instance-mode results *exactly*
(detections, drift-reset positions, pmAUC/pmGM/accuracy/kappa and every
snapshot) because the batched stream fetch is bit-identical and all model
operations happen in the same order.  Batch mode trades within-chunk test
ordering for throughput; for detectors that ignore the prediction stream
(RBM-IM consumes raw instances) the detections are still identical.
"""

import numpy as np
import pytest

from repro.classifiers import GaussianNaiveBayes
from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors import DDM_OCI, FHDDM
from repro.evaluation.grid import ExperimentGrid
from repro.evaluation.prequential import PrequentialRunner
from repro.streams.drift import LocalDriftStream
from repro.streams.generators import RandomRBFGenerator
from repro.streams.imbalance import ImbalancedStream, StaticImbalance
from repro.streams.scenarios import ScenarioStream, make_artificial_stream

N_INSTANCES = 4_000


def nb_factory(n_features, n_classes):
    return GaussianNaiveBayes(n_features, n_classes)


def _drifting_scenario() -> ScenarioStream:
    """Small Scenario-3 stream on which RBM-IM actually fires."""

    def factory(concept: int):
        return RandomRBFGenerator(
            n_classes=4, n_features=8, n_centroids=12, concept=concept, seed=3
        )

    local = LocalDriftStream(
        generator_factory=factory,
        old_concept=0,
        new_concept=6,
        drifted_classes=[3],
        position=2_000,
        seed=9,
    )
    stream = ImbalancedStream(local, StaticImbalance(4, 10.0), seed=2)
    return ScenarioStream(
        stream=stream,
        drift_points=[2_000],
        drifted_classes=[[3]],
        name="chunked-parity-scenario",
        n_instances=N_INSTANCES,
    )


def _rbmim(scenario: ScenarioStream) -> RBMIM:
    return RBMIM(
        scenario.n_features,
        scenario.n_classes,
        RBMIMConfig(batch_size=25, seed=7),
    )


@pytest.fixture(scope="module")
def instance_mode_result():
    scenario = _drifting_scenario()
    runner = PrequentialRunner(nb_factory, pretrain_size=200)
    return runner.run(scenario, _rbmim(scenario), n_instances=N_INSTANCES)


class TestChunkedExactMode:
    @pytest.mark.parametrize("chunk_size", [1, 64, 500, 10_000])
    def test_identical_to_instance_mode(self, instance_mode_result, chunk_size):
        scenario = _drifting_scenario()
        runner = PrequentialRunner(
            nb_factory, pretrain_size=200, chunk_size=chunk_size
        )
        result = runner.run(scenario, _rbmim(scenario), n_instances=N_INSTANCES)
        reference = instance_mode_result
        assert result.detections == reference.detections
        assert result.detected_classes == reference.detected_classes
        assert result.pmauc == reference.pmauc
        assert result.pmgm == reference.pmgm
        assert result.accuracy == reference.accuracy
        assert result.kappa == reference.kappa
        assert [
            (snap.position, snap.pmauc, snap.pmgm) for snap in result.snapshots
        ] == [
            (snap.position, snap.pmauc, snap.pmgm)
            for snap in reference.snapshots
        ]

    def test_detections_fired(self, instance_mode_result):
        # The parity assertions above are only meaningful if drifts and
        # drift-triggered classifier resets actually happened.
        assert instance_mode_result.detections

    def test_error_rate_detector_parity(self):
        scenario_a = make_artificial_stream(
            "randomtree", 4, n_instances=3_000, max_imbalance_ratio=10.0, seed=5
        )
        scenario_b = make_artificial_stream(
            "randomtree", 4, n_instances=3_000, max_imbalance_ratio=10.0, seed=5
        )
        runner = PrequentialRunner(nb_factory, pretrain_size=150)
        reference = runner.run(scenario_a, DDM_OCI(n_classes=4), n_instances=3_000)
        chunked = runner.run(
            scenario_b, DDM_OCI(n_classes=4), n_instances=3_000, chunk_size=256
        )
        assert chunked.detections == reference.detections
        assert chunked.pmauc == reference.pmauc
        assert chunked.pmgm == reference.pmgm


class TestChunkedBatchMode:
    def test_rbmim_detections_identical(self, instance_mode_result):
        # RBM-IM consumes raw (x, y) only, so chunk-granular testing does not
        # change what the detector sees: detections must match exactly.
        scenario = _drifting_scenario()
        runner = PrequentialRunner(
            nb_factory, pretrain_size=200, chunk_size=500, batch_mode=True
        )
        result = runner.run(scenario, _rbmim(scenario), n_instances=N_INSTANCES)
        assert result.detections == instance_mode_result.detections
        assert result.detected_classes == instance_mode_result.detected_classes

    def test_metrics_close_to_instance_mode(self, instance_mode_result):
        scenario = _drifting_scenario()
        runner = PrequentialRunner(
            nb_factory, pretrain_size=200, chunk_size=250, batch_mode=True
        )
        result = runner.run(scenario, _rbmim(scenario), n_instances=N_INSTANCES)
        assert result.n_instances == N_INSTANCES
        assert abs(result.pmauc - instance_mode_result.pmauc) < 0.1
        assert 0.0 <= result.pmgm <= 1.0
        assert result.snapshots[-1].position == instance_mode_result.snapshots[-1].position

    def test_detectorless_baseline_runs(self):
        scenario = make_artificial_stream(
            "rbf", 4, n_instances=2_000, max_imbalance_ratio=10.0, seed=1
        )
        runner = PrequentialRunner(
            nb_factory, pretrain_size=100, chunk_size=300, batch_mode=True
        )
        result = runner.run(scenario, None, n_instances=2_000)
        assert result.detections == []
        assert 0.0 <= result.pmauc <= 1.0


# ------------------------------------------------------------------ grid ----
def _grid_stream(seed: int) -> ScenarioStream:
    return make_artificial_stream(
        "rbf", 4, n_instances=1_200, max_imbalance_ratio=10.0, seed=seed
    )


def _grid_fhddm(n_features, n_classes):
    return FHDDM()


def _grid_ddm_oci(n_features, n_classes):
    return DDM_OCI(n_classes=n_classes)


class TestExperimentGrid:
    def _grid(self, **kwargs):
        return ExperimentGrid(
            streams={"rbf4": _grid_stream},
            detectors={"FHDDM": _grid_fhddm, "DDM-OCI": _grid_ddm_oci},
            seeds=[0, 1],
            classifier_factory=nb_factory,
            pretrain_size=150,
            chunk_size=256,
            **kwargs,
        )

    def test_cells_cross_product(self):
        grid = self._grid()
        assert len(grid) == 4
        cells = grid.cells()
        assert len({(c.stream, c.detector, c.seed) for c in cells}) == 4

    def test_serial_backend(self):
        result = self._grid().run(backend="serial")
        assert len(result.successes) == 4
        assert not result.failures
        table = result.table("pmauc", scale=100.0)
        assert table.datasets == ["rbf4"]
        assert set(table.methods) == {"FHDDM", "DDM-OCI"}
        assert 0.0 <= table.value("rbf4", "FHDDM") <= 100.0

    def test_process_backend_matches_serial(self):
        serial = self._grid().run(backend="serial")
        parallel = self._grid().run(backend="process", max_workers=2)
        key = lambda c: (c.cell.stream, c.cell.detector, c.cell.seed)  # noqa: E731
        serial_values = [
            (key(c), c.result.pmauc, tuple(c.result.detections))
            for c in sorted(serial.successes, key=key)
        ]
        parallel_values = [
            (key(c), c.result.pmauc, tuple(c.result.detections))
            for c in sorted(parallel.successes, key=key)
        ]
        assert serial_values == parallel_values

    def test_unpicklable_factories_fall_back(self):
        grid = ExperimentGrid(
            streams={"rbf4": lambda seed: _grid_stream(seed)},
            detectors={"FHDDM": lambda f, c: FHDDM()},
            seeds=[0],
            classifier_factory=nb_factory,
            pretrain_size=150,
            chunk_size=256,
        )
        result = grid.run(backend="process")
        assert len(result.successes) == 1

    def test_failures_are_captured(self):
        def broken_stream(seed):
            raise RuntimeError("boom")

        grid = ExperimentGrid(
            streams={"ok": _grid_stream, "broken": broken_stream},
            detectors={"FHDDM": _grid_fhddm},
            seeds=[0],
            classifier_factory=nb_factory,
            pretrain_size=150,
        )
        result = grid.run(backend="serial")
        assert len(result.successes) == 1
        assert len(result.failures) == 1
        assert "boom" in result.failures[0].error

    def test_records_roundtrip(self, tmp_path):
        result = self._grid().run(backend="thread", max_workers=2)
        path = tmp_path / "grid.json"
        result.save_json(str(path))
        import json

        records = json.loads(path.read_text())
        assert len(records) == 4
        assert {record["detector"] for record in records} == {"FHDDM", "DDM-OCI"}
