"""Edge-case coverage for evaluation/stats.py.

The main stats tests cover the well-conditioned paths; these pin the
boundary behaviour the protocol analysis stage relies on: rank ties
(midranks), two-method matrices, single-dataset matrices, and degenerate
inputs to the Bayesian signed test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.stats import (
    average_ranks,
    bayesian_signed_test,
    bonferroni_dunn_critical_distance,
    bonferroni_dunn_test,
    friedman_test,
    nemenyi_critical_distance,
)


class TestRankTies:
    def test_all_methods_tied_share_the_middle_rank(self):
        scores = np.array([[0.5, 0.5, 0.5], [0.7, 0.7, 0.7]])
        ranks = average_ranks(scores)
        np.testing.assert_allclose(ranks, [2.0, 2.0, 2.0])

    def test_pairwise_tie_gets_midrank(self):
        scores = np.array([[0.9, 0.9, 0.1]])
        ranks = average_ranks(scores)
        # The two winners share ranks 1 and 2 -> 1.5 each; the loser is 3rd.
        np.testing.assert_allclose(ranks, [1.5, 1.5, 3.0])

    def test_ties_in_lower_is_better_mode(self):
        scores = np.array([[1.0, 1.0, 2.0]])
        ranks = average_ranks(scores, higher_is_better=False)
        np.testing.assert_allclose(ranks, [1.5, 1.5, 3.0])

    def test_tied_matrix_is_never_significant_under_friedman(self):
        scores = np.tile([0.5, 0.5, 0.5], (5, 1))
        # All-equal columns make the statistic 0/0; scipy raises (all ranks
        # identical is a degenerate input) — partial ties go through fine.
        scores = scores + np.array([[0.0, 0.0, 0.1]] * 5)
        result = friedman_test(scores)
        assert result.average_ranks[2] == 1.0
        assert result.average_ranks[0] == result.average_ranks[1] == 2.5


class TestTwoMethods:
    def test_friedman_requires_three_methods(self):
        scores = np.random.default_rng(0).random((6, 2))
        with pytest.raises(ValueError, match="at least 3 methods"):
            friedman_test(scores)

    def test_bonferroni_dunn_handles_k2(self):
        # With k=2 the Bonferroni correction degenerates to a plain z-test:
        # alpha / (2 (k-1)) = alpha / 2.
        critical = bonferroni_dunn_critical_distance(2, 10)
        assert critical == pytest.approx(1.96 * np.sqrt(2 * 3 / 60.0), abs=1e-3)

    def test_nemenyi_equals_bonferroni_dunn_at_k2(self):
        assert nemenyi_critical_distance(2, 10) == pytest.approx(
            bonferroni_dunn_critical_distance(2, 10), abs=2e-3
        )

    def test_bonferroni_dunn_test_with_two_methods(self):
        rng = np.random.default_rng(1)
        scores = np.column_stack(
            [0.9 + 0.01 * rng.random(12), 0.1 + 0.01 * rng.random(12)]
        )
        result = bonferroni_dunn_test(scores, ["good", "bad"], control="good")
        assert result.significantly_worse == ["bad"]
        assert result.average_ranks["good"] == 1.0
        assert result.average_ranks["bad"] == 2.0


class TestSingleDataset:
    def test_average_ranks_single_row(self):
        ranks = average_ranks(np.array([[0.3, 0.2, 0.1]]))
        np.testing.assert_allclose(ranks, [1.0, 2.0, 3.0])

    def test_friedman_requires_two_datasets(self):
        with pytest.raises(ValueError, match="at least 2 datasets"):
            friedman_test(np.array([[0.3, 0.2, 0.1]]))

    def test_critical_distances_require_two_datasets(self):
        with pytest.raises(ValueError):
            bonferroni_dunn_critical_distance(3, 1)

    def test_bayesian_signed_test_single_pair(self):
        result = bayesian_signed_test(
            np.array([0.9]), np.array([0.1]), rope=0.01, seed=0
        )
        assert result.p_left > result.p_rope
        assert result.p_left > result.p_right


class TestBayesianDegenerate:
    def test_all_differences_inside_rope(self):
        a = np.full(20, 0.500)
        b = np.full(20, 0.505)
        result = bayesian_signed_test(a, b, rope=0.01, seed=0)
        assert result.winner == "rope"
        assert result.p_rope > 0.99

    def test_zero_rope_splits_left_right(self):
        rng = np.random.default_rng(3)
        a = rng.random(30)
        result = bayesian_signed_test(a + 0.2, a, rope=0.0, seed=0)
        assert result.winner == "left"

    def test_negative_rope_rejected(self):
        with pytest.raises(ValueError, match="rope"):
            bayesian_signed_test(np.zeros(3), np.zeros(3), rope=-0.1)

    def test_empty_vectors_fall_back_to_prior(self):
        result = bayesian_signed_test(np.array([]), np.array([]), seed=0)
        # With no evidence the rope prior pseudo-count dominates.
        assert result.winner == "rope"

    def test_probabilities_always_sum_to_one(self):
        result = bayesian_signed_test(
            np.array([0.1, 0.9, 0.5]), np.array([0.9, 0.1, 0.5]), seed=1
        )
        assert result.p_left + result.p_rope + result.p_right == pytest.approx(1.0)
