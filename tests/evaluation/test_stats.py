"""Unit tests for the statistical analysis module."""

import numpy as np
import pytest

from repro.evaluation.stats import (
    average_ranks,
    bayesian_signed_test,
    bonferroni_dunn_critical_distance,
    bonferroni_dunn_test,
    friedman_test,
    nemenyi_critical_distance,
)


class TestAverageRanks:
    def test_best_method_gets_rank_one(self):
        scores = np.array([[0.9, 0.5, 0.1], [0.8, 0.6, 0.2]])
        ranks = average_ranks(scores)
        np.testing.assert_allclose(ranks, [1.0, 2.0, 3.0])

    def test_lower_is_better_mode(self):
        scores = np.array([[1.0, 2.0, 3.0], [1.5, 2.5, 3.5]])
        ranks = average_ranks(scores, higher_is_better=False)
        np.testing.assert_allclose(ranks, [1.0, 2.0, 3.0])

    def test_ties_get_midranks(self):
        scores = np.array([[0.5, 0.5, 0.1]])
        ranks = average_ranks(scores)
        np.testing.assert_allclose(ranks, [1.5, 1.5, 3.0])

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            average_ranks(np.array([1.0, 2.0]))


class TestFriedman:
    def test_detects_consistent_differences(self):
        rng = np.random.default_rng(0)
        base = rng.random((20, 1))
        scores = np.hstack([base + 0.3, base + 0.15, base])
        result = friedman_test(scores)
        assert result.significant
        assert result.average_ranks[0] < result.average_ranks[2]

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(1)
        scores = rng.random((15, 4))
        result = friedman_test(scores)
        assert result.p_value > 0.01

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            friedman_test(np.random.random((5, 2)))
        with pytest.raises(ValueError):
            friedman_test(np.random.random((1, 4)))

    def test_result_metadata(self):
        scores = np.random.default_rng(2).random((10, 3))
        result = friedman_test(scores)
        assert result.n_datasets == 10
        assert result.n_methods == 3
        assert result.average_ranks.shape == (3,)


class TestCriticalDistances:
    def test_bonferroni_dunn_matches_demsar_table(self):
        # Demsar (2006): q_0.05 for k=6 methods is 2.576 (z at alpha/(2*5)).
        cd = bonferroni_dunn_critical_distance(6, 24, alpha=0.05)
        expected = 2.576 * np.sqrt(6 * 7 / (6.0 * 24))
        assert cd == pytest.approx(expected, rel=1e-3)

    def test_cd_shrinks_with_more_datasets(self):
        assert bonferroni_dunn_critical_distance(5, 50) < bonferroni_dunn_critical_distance(5, 10)

    def test_nemenyi_larger_than_bonferroni_dunn(self):
        assert nemenyi_critical_distance(6, 24) > bonferroni_dunn_critical_distance(6, 24)

    def test_nemenyi_table_bounds(self):
        with pytest.raises(ValueError):
            nemenyi_critical_distance(11, 20)

    def test_validation(self):
        with pytest.raises(ValueError):
            bonferroni_dunn_critical_distance(1, 10)


class TestBonferroniDunnTest:
    def test_identifies_significantly_worse_methods(self):
        rng = np.random.default_rng(3)
        base = rng.random((30, 1))
        scores = np.hstack([base + 0.5, base + 0.02, base])
        result = bonferroni_dunn_test(scores, ["A", "B", "C"], control="A")
        assert "C" in result.significantly_worse
        assert result.average_ranks["A"] < result.average_ranks["C"]
        assert result.is_significantly_worse("C")

    def test_control_never_worse_than_itself(self):
        scores = np.random.default_rng(4).random((10, 3))
        result = bonferroni_dunn_test(scores, ["A", "B", "C"], control="B")
        assert "B" not in result.significantly_worse

    def test_unknown_control_rejected(self):
        with pytest.raises(ValueError):
            bonferroni_dunn_test(np.random.random((5, 3)), ["A", "B", "C"], control="X")


class TestBayesianSignedTest:
    def test_clear_winner(self):
        rng = np.random.default_rng(5)
        b = rng.random(24)
        a = b + 0.2
        result = bayesian_signed_test(a, b, rope=0.01, seed=0)
        assert result.p_left > 0.95
        assert result.winner == "left"

    def test_practical_equivalence_inside_rope(self):
        rng = np.random.default_rng(6)
        b = rng.random(24)
        a = b + rng.normal(0.0, 0.001, size=24)
        result = bayesian_signed_test(a, b, rope=0.05, seed=0)
        assert result.p_rope > 0.9
        assert result.winner == "rope"

    def test_symmetry(self):
        rng = np.random.default_rng(7)
        b = rng.random(24)
        a = b - 0.3
        result = bayesian_signed_test(a, b, rope=0.01, seed=0)
        assert result.p_right > 0.95

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(8)
        a, b = rng.random(20), rng.random(20)
        result = bayesian_signed_test(a, b, seed=1)
        assert result.p_left + result.p_rope + result.p_right == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bayesian_signed_test(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            bayesian_signed_test(np.zeros(3), np.zeros(3), rope=-0.1)
