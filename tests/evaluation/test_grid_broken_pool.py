"""Broken-process-pool recovery in :func:`repro.evaluation.grid.run_cell_tasks`.

A worker that dies abruptly (OOM kill, native segfault — simulated here with
``os._exit``) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`:
every pending future, including cells that never started, fails with
``BrokenProcessPool``.  The sweep must not write those survivors off — they
are retried on a fresh executor, and only a cell that keeps getting caught in
broken pools (i.e. the crasher itself) is recorded as a per-cell failure.
"""

from __future__ import annotations

import os
from functools import partial

from repro.classifiers import GaussianNaiveBayes
from repro.detectors import FHDDM
from repro.evaluation.grid import CellTask, GridCell, run_cell_tasks
from repro.streams.scenarios import make_artificial_stream

N_INSTANCES = 400


def nb_factory(n_features, n_classes):
    return GaussianNaiveBayes(n_features, n_classes)


def fhddm_factory(n_features, n_classes):
    return FHDDM()


def _tiny_stream(seed: int):
    return make_artificial_stream(
        "rbf", 4, n_instances=N_INSTANCES, max_imbalance_ratio=10.0, seed=seed
    )


def _kill_once_stream(marker_path: str, seed: int):
    """Die abruptly on the first call (across processes), then behave."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("killed")
        os._exit(1)
    return _tiny_stream(seed)


def _kill_always_stream(seed: int):
    os._exit(1)


def _task(stream_name: str, stream_factory, seed: int = 0) -> CellTask:
    return CellTask(
        cell=GridCell(stream=stream_name, detector="FHDDM", seed=seed),
        stream_factory=stream_factory,
        detector_factory=fhddm_factory,
        classifier_factory=nb_factory,
        run_kwargs={"n_instances": N_INSTANCES},
    )


class TestBrokenPoolRecovery:
    def test_one_worker_death_loses_no_cells(self, tmp_path):
        """One abrupt worker death: queued survivors retry and all cells finish.

        The killer is submitted first so the surviving cells are queued (or
        in flight) behind it when the pool breaks; after the one death the
        killer itself also completes on a fresh pool.
        """
        marker = str(tmp_path / "killed.marker")
        tasks = [_task("killer", partial(_kill_once_stream, marker))]
        tasks += [_task(f"ok{i}", _tiny_stream, seed=i) for i in range(4)]
        results = run_cell_tasks(tasks, backend="process", max_workers=2)
        assert os.path.exists(marker), "the killer cell never ran"
        assert len(results) == len(tasks)
        # Input order is preserved and nothing was written off.
        assert [r.cell.stream for r in results] == [t.cell.stream for t in tasks]
        assert all(r.ok for r in results), [r.error for r in results]

    def test_persistent_crasher_fails_alone(self):
        """A cell that always kills its worker fails; every other cell runs.

        With one worker and the crasher submitted last, the innocent cells
        complete before the first pool break, pinning that the crasher alone
        burns its retry budget and is recorded as a per-cell failure.
        """
        tasks = [_task(f"ok{i}", _tiny_stream, seed=i) for i in range(3)]
        tasks += [_task("killer", _kill_always_stream)]
        results = run_cell_tasks(tasks, backend="process", max_workers=1)
        assert [r.ok for r in results] == [True, True, True, False]
        assert "Broken" in results[-1].error
