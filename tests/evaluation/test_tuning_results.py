"""Unit tests for the Nelder-Mead tuner and result tables."""

import numpy as np
import pytest

from repro.evaluation.results import ResultTable, format_series_table
from repro.evaluation.tuning import NelderMeadTuner, ParameterSpace, tune_on_stream


class TestParameterSpace:
    def test_decode_clips_and_rounds(self):
        space = ParameterSpace(
            bounds={"lr": (0.01, 0.1), "window": (25, 100)}, integer=frozenset({"window"})
        )
        decoded = space.decode(np.array([0.5, 62.7]))
        assert decoded["lr"] == pytest.approx(0.1)
        assert decoded["window"] == 63
        assert isinstance(decoded["window"], int)

    def test_random_vector_within_bounds(self):
        space = ParameterSpace(bounds={"a": (-1.0, 1.0), "b": (10.0, 20.0)})
        vector = space.random_vector(np.random.default_rng(0))
        assert -1.0 <= vector[0] <= 1.0
        assert 10.0 <= vector[1] <= 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSpace(bounds={})
        with pytest.raises(ValueError):
            ParameterSpace(bounds={"a": (1.0, 0.0)})
        with pytest.raises(ValueError):
            ParameterSpace(bounds={"a": (0.0, 1.0)}, integer=frozenset({"b"}))


class TestNelderMeadTuner:
    def _quadratic(self, optimum):
        def evaluate(params):
            return -sum((params[k] - optimum[k]) ** 2 for k in optimum)

        return evaluate

    def test_improves_over_random_initialisation(self):
        space = ParameterSpace(bounds={"x": (-5.0, 5.0), "y": (-5.0, 5.0)})
        evaluate = self._quadratic({"x": 1.0, "y": -2.0})
        tuner = NelderMeadTuner(space, seed=0)
        scores = []
        for _ in range(40):
            params = tuner.ask()
            score = evaluate(params)
            tuner.tell(score)
            scores.append(score)
        assert max(scores[-10:]) > max(scores[:3])

    def test_best_parameters_close_to_optimum(self):
        space = ParameterSpace(bounds={"x": (-5.0, 5.0)})
        evaluate = self._quadratic({"x": 2.0})
        best, best_score = tune_on_stream(space, evaluate, n_iterations=60, seed=1)
        assert abs(best["x"] - 2.0) < 1.5
        assert best_score > -2.5

    def test_ask_tell_bookkeeping(self):
        space = ParameterSpace(bounds={"x": (0.0, 1.0)})
        tuner = NelderMeadTuner(space, seed=2)
        for _ in range(5):
            tuner.tell(-abs(tuner.ask()["x"]))
        assert tuner.n_evaluations == 5
        assert np.isfinite(tuner.best_score)

    def test_tune_on_stream_budget_validation(self):
        space = ParameterSpace(bounds={"x": (0.0, 1.0), "y": (0.0, 1.0)})
        with pytest.raises(ValueError):
            tune_on_stream(space, lambda p: 0.0, n_iterations=2)

    def test_integer_parameters_returned_as_int(self):
        space = ParameterSpace(
            bounds={"window": (25.0, 100.0)}, integer=frozenset({"window"})
        )
        tuner = NelderMeadTuner(space, seed=3)
        for _ in range(6):
            params = tuner.ask()
            assert isinstance(params["window"], int)
            tuner.tell(float(-params["window"]))


class TestResultTable:
    def _table(self):
        table = ResultTable(metric_name="pmAUC")
        table.add("stream1", "A", 0.9)
        table.add("stream1", "B", 0.7)
        table.add("stream2", "A", 0.8)
        table.add("stream2", "B", 0.6)
        return table

    def test_matrix_layout(self):
        table = self._table()
        matrix = table.to_matrix()
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == pytest.approx(0.9)
        assert table.datasets == ["stream1", "stream2"]
        assert table.methods == ["A", "B"]

    def test_ranks(self):
        ranks = self._table().ranks()
        assert ranks["A"] == pytest.approx(1.0)
        assert ranks["B"] == pytest.approx(2.0)

    def test_missing_cells_become_nan(self):
        table = self._table()
        table.add("stream3", "A", 0.5)
        matrix = table.to_matrix()
        assert np.isnan(matrix[2, 1])

    def test_text_rendering_contains_all_cells(self):
        text = self._table().to_text()
        assert "pmAUC" in text
        assert "stream1" in text and "stream2" in text
        assert "0.90" in text and "0.60" in text
        assert "ranks" in text

    def test_value_lookup(self):
        assert self._table().value("stream2", "B") == pytest.approx(0.6)

    def test_duplicate_cell_raises(self):
        table = self._table()
        with pytest.raises(ValueError, match=r"duplicate cell \('stream1', 'A'\)"):
            table.add("stream1", "A", 0.95)
        # The original value is untouched by the rejected write.
        assert table.value("stream1", "A") == pytest.approx(0.9)

    def test_duplicate_cell_overwrite_escape_hatch(self):
        table = self._table()
        table.add("stream1", "A", 0.95, overwrite=True)
        assert table.value("stream1", "A") == pytest.approx(0.95)


class TestFormatSeriesTable:
    def test_renders_rows_per_x_value(self):
        text = format_series_table(
            "classes", [1, 2, 3], {"RBM-IM": [0.9, 0.8, 0.7], "DDM": [0.5, 0.5, 0.5]}
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "RBM-IM" in lines[0]
        assert "0.70" in lines[3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series_table("x", [1, 2], {"A": [0.1]})
