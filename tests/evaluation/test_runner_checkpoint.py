"""Mid-run checkpoint/resume of :class:`PrequentialRunner`.

The crash model: the process dies the instant after a checkpoint write — the
worst-case point for resume correctness, since everything after the write is
lost.  We simulate it by making :meth:`RunnerCheckpoint.save` raise *after*
persisting its Nth cut, then rerun the identical configuration against the
surviving file.  The resumed run must be bit-identical — detections, blamed
classes, every windowed metric, every snapshot — to an uninterrupted run, in
all three execution modes, with and without a detector.

Also pinned: a checkpoint recorded under a different run configuration, or a
torn/corrupt file, is *ignored* (fresh start, same results) rather than
half-applied.
"""

from __future__ import annotations

import pytest

from repro.evaluation.checkpoint import RunnerCheckpoint
from repro.evaluation.experiment import default_classifier_factory
from repro.evaluation.prequential import PrequentialRunner
from repro.protocol.registry import build_detector
from repro.streams.scenarios import make_artificial_stream

N_INSTANCES = 1_500
CHUNK = 128


class _Killed(RuntimeError):
    """Stands in for SIGKILL right after a checkpoint write."""


def _make_stream():
    return make_artificial_stream("rbf", n_classes=3, n_instances=N_INSTANCES, seed=9)


def _make_runner(mode: str) -> PrequentialRunner:
    chunked = {
        "instance": dict(chunk_size=None),
        "chunked": dict(chunk_size=CHUNK),
        "batch": dict(chunk_size=CHUNK, batch_mode=True),
    }[mode]
    return PrequentialRunner(
        classifier_factory=default_classifier_factory,
        window_size=500,
        pretrain_size=100,
        rebuild_buffer=100,
        snapshot_every=250,
        **chunked,
    )


def _run(mode: str, detector_name: "str | None", **kwargs):
    runner = _make_runner(mode)
    stream = _make_stream()
    detector = (
        None
        if detector_name is None
        else build_detector(detector_name, stream.stream.n_features, 3)
    )
    return runner.run(
        stream, detector, n_instances=N_INSTANCES, detector_name="d", **kwargs
    )


def _assert_identical(resumed, reference) -> None:
    assert resumed.detections == reference.detections
    assert resumed.detected_classes == reference.detected_classes
    assert resumed.pmauc == reference.pmauc
    assert resumed.pmgm == reference.pmgm
    assert resumed.accuracy == reference.accuracy
    assert resumed.kappa == reference.kappa
    assert resumed.n_instances == reference.n_instances
    assert [
        (s.position, s.pmauc, s.pmgm, s.accuracy, s.kappa)
        for s in resumed.snapshots
    ] == [
        (s.position, s.pmauc, s.pmgm, s.accuracy, s.kappa)
        for s in reference.snapshots
    ]


@pytest.mark.parametrize("mode", ["instance", "chunked", "batch"])
@pytest.mark.parametrize("detector_name", ["RBM-IM", "ADWIN", None])
def test_killed_run_resumes_bit_identical(tmp_path, monkeypatch, mode, detector_name):
    reference = _run(mode, detector_name)

    path = tmp_path / "checkpoint.json"
    real_save = RunnerCheckpoint.save
    saves = {"count": 0}

    def dying_save(self, target):
        real_save(self, target)
        saves["count"] += 1
        if saves["count"] == 3:
            raise _Killed()

    monkeypatch.setattr(RunnerCheckpoint, "save", dying_save)
    with pytest.raises(_Killed):
        _run(mode, detector_name, checkpoint_path=path, checkpoint_every=CHUNK)
    monkeypatch.undo()
    assert path.is_file()  # the cut written just before the "kill" survived

    killed_at = RunnerCheckpoint.load(path)
    assert killed_at is not None
    assert 0 < killed_at.produced < N_INSTANCES  # genuinely mid-run

    resumed = _run(mode, detector_name, checkpoint_path=path, checkpoint_every=CHUNK)
    _assert_identical(resumed, reference)


def test_checkpointing_itself_changes_nothing(tmp_path):
    """A run that merely *writes* checkpoints equals one that never does."""
    reference = _run("chunked", "RBM-IM")
    observed = _run(
        "chunked",
        "RBM-IM",
        checkpoint_path=tmp_path / "checkpoint.json",
        checkpoint_every=CHUNK,
    )
    _assert_identical(observed, reference)


def test_mismatched_checkpoint_is_ignored(tmp_path, monkeypatch):
    """A checkpoint from a different run configuration must not be applied."""
    path = tmp_path / "checkpoint.json"
    real_save = RunnerCheckpoint.save

    def dying_save(self, target):
        real_save(self, target)
        raise _Killed()

    monkeypatch.setattr(RunnerCheckpoint, "save", dying_save)
    with pytest.raises(_Killed):
        _run("chunked", "DDM", checkpoint_path=path, checkpoint_every=CHUNK)
    monkeypatch.undo()
    assert path.is_file()

    # Same path, different detector: the checkpoint's meta does not match,
    # so the run starts fresh and equals the uncheckpointed reference.
    reference = _run("chunked", "ADWIN")
    observed = _run("chunked", "ADWIN", checkpoint_path=path, checkpoint_every=CHUNK)
    _assert_identical(observed, reference)


def test_corrupt_checkpoint_is_ignored(tmp_path):
    path = tmp_path / "checkpoint.json"
    path.write_text('{"kind": "RunnerCheckpoint", "version":', encoding="utf-8")
    reference = _run("chunked", "DDM")
    observed = _run("chunked", "DDM", checkpoint_path=path, checkpoint_every=CHUNK)
    _assert_identical(observed, reference)


def test_checkpoints_land_on_chunk_boundaries(tmp_path, monkeypatch):
    produced_at_save = []
    real_save = RunnerCheckpoint.save

    def recording_save(self, target):
        produced_at_save.append(self.produced)
        real_save(self, target)

    monkeypatch.setattr(RunnerCheckpoint, "save", recording_save)
    _run(
        "batch",
        "DDM",
        checkpoint_path=tmp_path / "checkpoint.json",
        checkpoint_every=CHUNK,
    )
    assert produced_at_save, "no checkpoint was ever written"
    assert all(produced % CHUNK == 0 for produced in produced_at_save)
    assert produced_at_save == sorted(set(produced_at_save))
