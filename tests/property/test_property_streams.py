"""Hypothesis property tests for stream generators and imbalance control."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.generators import (
    HyperplaneGenerator,
    RandomRBFGenerator,
    RandomTreeGenerator,
)
from repro.streams.imbalance import (
    DynamicImbalance,
    RoleSwitchingImbalance,
    StaticImbalance,
    geometric_priors,
)


@settings(max_examples=50, deadline=None)
@given(n_classes=st.integers(2, 30), ratio=st.floats(1.0, 500.0))
def test_geometric_priors_properties(n_classes, ratio):
    priors = geometric_priors(n_classes, ratio)
    assert priors.shape == (n_classes,)
    assert abs(priors.sum() - 1.0) < 1e-9
    assert np.all(priors > 0.0)
    np.testing.assert_allclose(priors.max() / priors.min(), ratio, rtol=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    n_classes=st.integers(2, 10),
    min_ratio=st.floats(1.0, 50.0),
    spread=st.floats(0.0, 200.0),
    period=st.integers(10, 5000),
    position=st.integers(0, 100_000),
)
def test_dynamic_imbalance_ratio_within_bounds(
    n_classes, min_ratio, spread, period, position
):
    profile = DynamicImbalance(n_classes, min_ratio, min_ratio + spread, period)
    ratio = profile.imbalance_ratio(position)
    assert min_ratio - 1e-6 <= ratio <= min_ratio + spread + 1e-6
    assert abs(profile.priors(position).sum() - 1.0) < 1e-9


@settings(max_examples=30, deadline=None)
@given(
    n_classes=st.integers(2, 8),
    position=st.integers(0, 50_000),
    switch_period=st.integers(1, 5000),
)
def test_role_switching_priors_are_permutations(n_classes, position, switch_period):
    static = StaticImbalance(n_classes, 40.0)
    switching = RoleSwitchingImbalance(
        n_classes, 40.0, 40.0, period=1000, switch_period=switch_period
    )
    np.testing.assert_allclose(
        np.sort(switching.priors(position)), np.sort(static.priors(0)), rtol=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(
    n_classes=st.integers(2, 8),
    n_features=st.integers(2, 30),
    seed=st.integers(0, 10_000),
)
def test_rbf_generator_always_valid(n_classes, n_features, seed):
    stream = RandomRBFGenerator(
        n_classes=n_classes,
        n_features=n_features,
        n_centroids=max(n_classes, 10),
        seed=seed,
    )
    for instance in stream.take(50):
        assert instance.x.shape == (n_features,)
        assert 0 <= instance.y < n_classes
        assert np.all((instance.x >= 0.0) & (instance.x <= 1.0))


@settings(max_examples=15, deadline=None)
@given(
    n_classes=st.integers(2, 8),
    concept_a=st.integers(0, 20),
    concept_b=st.integers(0, 20),
    seed=st.integers(0, 1000),
)
def test_random_tree_same_concept_same_labels(n_classes, concept_a, concept_b, seed):
    """Two generators on the same concept agree on labels for identical points;
    different concepts are allowed to (and usually do) disagree."""
    gen_a = RandomTreeGenerator(n_classes=n_classes, n_features=5, concept=concept_a, seed=seed)
    gen_b = RandomTreeGenerator(n_classes=n_classes, n_features=5, concept=concept_b, seed=seed)
    points = np.random.default_rng(seed).random((30, 5))
    labels_a = [gen_a._classify(p) for p in points]
    labels_b = [gen_b._classify(p) for p in points]
    if concept_a == concept_b:
        assert labels_a == labels_b


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), mag=st.floats(0.0, 0.05))
def test_hyperplane_restart_is_idempotent(seed, mag):
    stream = HyperplaneGenerator(n_classes=4, n_features=6, mag_change=mag, seed=seed)
    first = [(inst.x.copy(), inst.y) for inst in stream.take(40)]
    stream.restart()
    # Restart resets the RNG but not concept state mutated by mag_change; for a
    # stationary stream the replay must be identical.
    if mag == 0.0:
        second = [(inst.x.copy(), inst.y) for inst in stream.take(40)]
        for (xa, ya), (xb, yb) in zip(first, second):
            np.testing.assert_array_equal(xa, xb)
            assert ya == yb
