"""Property test: ``step_batch`` is chunk-exact for every registry detector.

For random error/probability sequences and *any* split of the stream into
chunks (including size-1 and size-``n`` chunks), the positions flagged by
``step_batch`` — and the recorded detections, blamed classes, observation
count, and final drift/warning state — must be identical to stepping the
same stream one instance at a time.  This is the contract the batch
prequential mode and the golden harness rely on; Hypothesis hunts for
chunkings and error patterns that break a kernel's segment bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.registry import DETECTOR_NAMES, build_detector

N_CLASSES = 4
N_FEATURES = 5
DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]
#: RBM-IM trains an RBM per mini-batch, so its property run uses fewer and
#: shorter examples than the cheap error-stream kernels.
MAX_EXAMPLES = {"RBM-IM": 10}


@st.composite
def error_streams(draw):
    """A piecewise-Bernoulli error stream plus a chunking of its length."""
    n = draw(st.integers(min_value=1, max_value=500))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    # Piecewise-constant error probabilities create drift-like jumps.
    n_pieces = draw(st.integers(min_value=1, max_value=4))
    probabilities = [
        draw(st.floats(min_value=0.0, max_value=0.9)) for _ in range(n_pieces)
    ]
    chunking = draw(
        st.one_of(
            st.just([1] * n),  # size-1 chunks
            st.just([n]),  # one size-n chunk
            st.lists(st.integers(min_value=1, max_value=n), min_size=1),
        )
    )
    return n, seed, probabilities, chunking


def _materialise(n, seed, probabilities, chunking):
    rng = np.random.default_rng(seed)
    piece = (n + len(probabilities) - 1) // len(probabilities)
    error_probability = np.repeat(probabilities, piece)[:n]
    features = rng.random((n, N_FEATURES))
    labels = rng.integers(0, N_CLASSES, n)
    is_error = rng.random(n) < error_probability
    offsets = rng.integers(1, N_CLASSES, n)
    predictions = np.where(is_error, (labels + offsets) % N_CLASSES, labels)

    sizes = []
    remaining = n
    for size in chunking:
        take = min(size, remaining)
        if take <= 0:
            break
        sizes.append(take)
        remaining -= take
    if remaining:
        sizes.append(remaining)
    return features, labels.astype(np.int64), predictions.astype(np.int64), sizes


def _assert_chunk_exact(name, features, labels, predictions, sizes):
    n = labels.shape[0]
    loop_detector = build_detector(name, N_FEATURES, N_CLASSES)
    batch_detector = build_detector(name, N_FEATURES, N_CLASSES)

    loop_flags = np.array(
        [
            loop_detector.step(features[i], int(labels[i]), int(predictions[i]))
            for i in range(n)
        ],
        dtype=bool,
    )
    batch_flags = []
    start = 0
    for size in sizes:
        batch_flags.append(
            batch_detector.step_batch(
                features[start : start + size],
                labels[start : start + size],
                predictions[start : start + size],
            )
        )
        start += size

    np.testing.assert_array_equal(loop_flags, np.concatenate(batch_flags))
    assert loop_detector.detections == batch_detector.detections
    assert loop_detector.detection_classes == batch_detector.detection_classes
    assert loop_detector.n_observations == batch_detector.n_observations
    assert loop_detector.in_drift == batch_detector.in_drift
    assert loop_detector.in_warning == batch_detector.in_warning
    assert loop_detector.drifted_classes == batch_detector.drifted_classes


@pytest.mark.parametrize("name", DETECTORS)
def test_step_batch_matches_step_loop(name: str):
    @settings(max_examples=MAX_EXAMPLES.get(name, 25), deadline=None)
    @given(stream=error_streams())
    def run(stream):
        _assert_chunk_exact(name, *_materialise(*stream))

    run()


@settings(max_examples=10, deadline=None)
@given(stream=error_streams())
def test_rbm_im_batched_path_bit_identical(stream):
    """The vectorized RBM-IM hot path is bit-exact, not just flag-exact.

    Beyond the flag/detection parity of the generic property above, the
    learned RBM parameters and the per-class reconstruction-error scores
    after any chunking must equal the per-instance run bit for bit — the
    minibatch CD-k matrix ops, packed reconstruction scoring, and block
    buffer fills must not reorder a single float operation.
    """
    features, labels, predictions, sizes = _materialise(*stream)
    n = labels.shape[0]
    loop_detector = build_detector("RBM-IM", N_FEATURES, N_CLASSES)
    batch_detector = build_detector("RBM-IM", N_FEATURES, N_CLASSES)

    for i in range(n):
        loop_detector.step(features[i], int(labels[i]), int(predictions[i]))
    start = 0
    for size in sizes:
        batch_detector.step_batch(
            features[start : start + size],
            labels[start : start + size],
            predictions[start : start + size],
        )
        start += size

    loop_weights = loop_detector.rbm.weights
    batch_weights = batch_detector.rbm.weights
    assert loop_weights.keys() == batch_weights.keys()
    for key in loop_weights:
        np.testing.assert_array_equal(loop_weights[key], batch_weights[key])
    np.testing.assert_array_equal(
        loop_detector.last_per_class_errors, batch_detector.last_per_class_errors
    )
    assert loop_detector.batches_processed == batch_detector.batches_processed
    assert loop_detector.detections == batch_detector.detections
    assert loop_detector.detection_classes == batch_detector.detection_classes
