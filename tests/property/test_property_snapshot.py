"""Property suite: snapshot → restore → replay is bit-identical to no pause.

Hypothesis hunts, across the full detector zoo × random streams × random
checkpoint positions, for any state the snapshot contract fails to carry:

* detector flags, detection positions, blamed classes, and drift/warning
  state after a mid-stream snapshot/JSON/restore must equal the
  uninterrupted run;
* RBM-IM's learned parameters (weights, biases, momenta, scaler bounds)
  must survive the round-trip bit for bit — its whole value is trained
  state;
* classifier predictions and probability scores after a mid-training
  snapshot must equal uninterrupted training;
* a restored stream must emit the bit-identical tail for random scenario
  configurations and checkpoint positions.

Every snapshot goes through ``dumps_strict``/``loads_strict`` — the exact
bytes a persisted :class:`~repro.evaluation.checkpoint.RunnerCheckpoint`
reads back from disk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jsonio import dumps_strict, loads_strict
from repro.detectors.base import DriftDetector
from repro.protocol.registry import DETECTOR_NAMES, build_detector
from repro.streams.scenarios import SCENARIO_BUILDERS, build_scenario_stream

N_CLASSES = 4
N_FEATURES = 5
DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]
#: RBM-IM trains an RBM per mini-batch, so its property run uses fewer
#: examples than the cheap error-stream kernels.
MAX_EXAMPLES = {"RBM-IM": 8}


def _json_roundtrip(snapshot: dict) -> dict:
    return loads_strict(dumps_strict(snapshot))


@st.composite
def checkpointed_streams(draw):
    """A drifting error/feature stream plus a random checkpoint position."""
    n = draw(st.integers(min_value=2, max_value=400))
    cut = draw(st.integers(min_value=1, max_value=n - 1))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n_pieces = draw(st.integers(min_value=1, max_value=4))
    probabilities = [
        draw(st.floats(min_value=0.0, max_value=0.9)) for _ in range(n_pieces)
    ]
    return n, cut, seed, tuple(probabilities)


def _materialise(n, seed, probabilities):
    rng = np.random.default_rng(seed)
    piece = (n + len(probabilities) - 1) // len(probabilities)
    error_probability = np.repeat(probabilities, piece)[:n]
    features = rng.random((n, N_FEATURES))
    # Shift the feature distribution piecewise too, so instance-based
    # detectors (RBM-IM) accumulate non-trivial state before the cut.
    features[n // 2 :] = 0.8 + 0.2 * features[n // 2 :]
    labels = rng.integers(0, N_CLASSES, n)
    is_error = rng.random(n) < error_probability
    offsets = rng.integers(1, N_CLASSES, n)
    predictions = np.where(is_error, (labels + offsets) % N_CLASSES, labels)
    return features, labels.astype(np.int64), predictions.astype(np.int64)


# -------------------------------------------------------------- detector zoo
def _assert_detector_resumes(name, n, cut, seed, probabilities):
    features, labels, predictions = _materialise(n, seed, probabilities)

    uninterrupted = build_detector(name, N_FEATURES, N_CLASSES)
    full_flags = uninterrupted.step_batch(features, labels, predictions)

    live = build_detector(name, N_FEATURES, N_CLASSES)
    head_flags = live.step_batch(
        features[:cut], labels[:cut], predictions[:cut]
    )
    resumed = DriftDetector.from_snapshot(_json_roundtrip(live.snapshot()))
    tail_flags = resumed.step_batch(
        features[cut:], labels[cut:], predictions[cut:]
    )

    np.testing.assert_array_equal(
        np.concatenate([head_flags, tail_flags]), full_flags
    )
    assert resumed.detections == uninterrupted.detections
    assert resumed.detection_classes == uninterrupted.detection_classes
    assert resumed.n_observations == uninterrupted.n_observations
    assert resumed.in_drift == uninterrupted.in_drift
    assert resumed.in_warning == uninterrupted.in_warning
    assert resumed.drifted_classes == uninterrupted.drifted_classes


@pytest.mark.parametrize("name", DETECTORS)
def test_detector_snapshot_restore_replay_bit_identical(name: str):
    @settings(max_examples=MAX_EXAMPLES.get(name, 20), deadline=None)
    @given(stream=checkpointed_streams())
    def run(stream):
        n, cut, seed, probabilities = stream
        _assert_detector_resumes(name, n, cut, seed, probabilities)

    run()


@settings(max_examples=8, deadline=None)
@given(stream=checkpointed_streams())
def test_rbm_im_trained_state_survives_bit_for_bit(stream):
    """Every learned float of RBM-IM equals the uninterrupted run's."""
    n, cut, seed, probabilities = stream
    features, labels, predictions = _materialise(n, seed, probabilities)

    uninterrupted = build_detector("RBM-IM", N_FEATURES, N_CLASSES)
    uninterrupted.step_batch(features, labels, predictions)

    live = build_detector("RBM-IM", N_FEATURES, N_CLASSES)
    live.step_batch(features[:cut], labels[:cut], predictions[:cut])
    resumed = DriftDetector.from_snapshot(_json_roundtrip(live.snapshot()))
    resumed.step_batch(features[cut:], labels[cut:], predictions[cut:])

    reference_rbm = uninterrupted._rbm
    resumed_rbm = resumed._rbm
    np.testing.assert_array_equal(resumed_rbm._Wvz, reference_rbm._Wvz)
    np.testing.assert_array_equal(resumed_rbm._bias_vz, reference_rbm._bias_vz)
    np.testing.assert_array_equal(resumed_rbm._b, reference_rbm._b)
    np.testing.assert_array_equal(resumed_rbm._vel_Wvz, reference_rbm._vel_Wvz)
    np.testing.assert_array_equal(
        resumed_rbm._vel_bias_vz, reference_rbm._vel_bias_vz
    )
    np.testing.assert_array_equal(resumed_rbm._vel_b, reference_rbm._vel_b)
    np.testing.assert_array_equal(resumed._scaler._min, uninterrupted._scaler._min)
    np.testing.assert_array_equal(resumed._scaler._max, uninterrupted._scaler._max)


# --------------------------------------------------------------- classifiers
def _classifier_factories():
    from repro.classifiers.naive_bayes import GaussianNaiveBayes
    from repro.classifiers.perceptron import OnlinePerceptron
    from repro.evaluation.experiment import default_classifier_factory

    return {
        "nb": lambda: GaussianNaiveBayes(
            n_features=N_FEATURES, n_classes=N_CLASSES
        ),
        "perceptron": lambda: OnlinePerceptron(
            n_features=N_FEATURES, n_classes=N_CLASSES, seed=42
        ),
        "tree": lambda: default_classifier_factory(N_FEATURES, N_CLASSES),
    }


@pytest.mark.parametrize("kind", sorted(_classifier_factories()))
def test_classifier_predictions_survive_snapshot(kind: str):
    factory = _classifier_factories()[kind]

    @settings(max_examples=10, deadline=None)
    @given(stream=checkpointed_streams())
    def run(stream):
        n, cut, seed, probabilities = stream
        features, labels, _ = _materialise(n, seed, probabilities)

        # Classifier updates are per-batch, so the uninterrupted reference
        # must see the same chunking as the checkpointed run; the prequential
        # runner feeds identical chunk boundaries on resume for this reason.
        uninterrupted = factory()
        uninterrupted.partial_fit_batch(features[:cut], labels[:cut])
        uninterrupted.partial_fit_batch(features[cut:], labels[cut:])

        live = factory()
        live.partial_fit_batch(features[:cut], labels[:cut])
        resumed = type(live).from_snapshot(_json_roundtrip(live.snapshot()))
        resumed.partial_fit_batch(features[cut:], labels[cut:])

        probe = np.random.default_rng(seed ^ 0xABCD).random((32, N_FEATURES))
        np.testing.assert_array_equal(
            resumed.predict_proba_batch(probe),
            uninterrupted.predict_proba_batch(probe),
        )
        np.testing.assert_array_equal(
            resumed.predict_batch(probe), uninterrupted.predict_batch(probe)
        )

    run()


# -------------------------------------------------------------- stream tails
@settings(max_examples=15, deadline=None)
@given(
    scenario=st.sampled_from(sorted(SCENARIO_BUILDERS)),
    family=st.sampled_from(["agrawal", "hyperplane", "rbf", "randomtree"]),
    seed=st.integers(min_value=0, max_value=2**16),
    head=st.integers(min_value=1, max_value=700),
)
def test_stream_tail_survives_snapshot(scenario, family, seed, head):
    def make():
        return build_scenario_stream(
            scenario,
            family=family,
            n_classes=3,
            n_instances=1_000,
            n_drifts=2,
            max_imbalance_ratio=20.0,
            seed=seed,
        ).stream

    stream = make()
    stream.generate_batch(head)
    snapshot = _json_roundtrip(stream.snapshot())
    expected_x, expected_y = stream.generate_batch(200)

    fresh = make()
    fresh.restore(snapshot)
    got_x, got_y = fresh.generate_batch(200)
    np.testing.assert_array_equal(got_x, expected_x)
    np.testing.assert_array_equal(got_y, expected_y)
