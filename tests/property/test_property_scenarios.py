"""Hypothesis property tests: batch/instance parity for every scenario family.

The chunk-exactness contract of the schedule engine, stated as a property:
for every scenario family (the paper's three plus the six extended ones),
any seed, and any chunking of the stream, batch generation emits exactly the
same features, labels, drift points, and drifted-class sets as per-instance
iteration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.scenarios import SCENARIO_BUILDERS, build_scenario_stream

N_CHECK = 240
N_INSTANCES = 400  # keeps every scheduled change inside the checked window


def _build(scenario_id: int, seed: int):
    return build_scenario_stream(
        scenario_id,
        family="rbf",
        n_classes=4,
        n_instances=N_INSTANCES,
        n_drifts=1,
        max_imbalance_ratio=15.0,
        seed=seed,
    )


@st.composite
def chunkings(draw, total=N_CHECK):
    sizes = []
    remaining = total
    while remaining > 0:
        size = draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    return sizes


@pytest.mark.parametrize("scenario_id", sorted(SCENARIO_BUILDERS))
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500), chunking=chunkings())
def test_batch_equals_instances_under_any_chunking(scenario_id, seed, chunking):
    instance_scenario = _build(scenario_id, seed)
    batch_scenario = _build(scenario_id, seed)

    instances = instance_scenario.stream.take(N_CHECK)
    inst_x = np.vstack([i.x for i in instances])
    inst_y = np.asarray([i.y for i in instances], dtype=np.int64)

    parts = [batch_scenario.stream.generate_batch(size) for size in chunking]
    batch_x = np.vstack([p[0] for p in parts])
    batch_y = np.concatenate([p[1] for p in parts])

    np.testing.assert_array_equal(batch_x, inst_x)
    np.testing.assert_array_equal(batch_y, inst_y)

    # Ground truth is identical across modes and independent of chunking.
    assert instance_scenario.drift_points == batch_scenario.drift_points
    assert instance_scenario.drifted_classes == batch_scenario.drifted_classes
    assert instance_scenario.events == batch_scenario.events
    assert (
        getattr(instance_scenario.stream, "drift_points", None)
        == getattr(batch_scenario.stream, "drift_points", None)
    )


@pytest.mark.parametrize("scenario_id", sorted(SCENARIO_BUILDERS))
def test_ground_truth_positions_inside_stream(scenario_id):
    scenario = _build(scenario_id, seed=0)
    assert len(scenario.drift_points) == len(scenario.drifted_classes)
    for position in scenario.drift_points:
        assert 0 < position < N_INSTANCES
    for classes in scenario.drifted_classes:
        assert classes is None or all(0 <= c < 4 for c in classes)
