"""Hypothesis property tests for RBM-IM components and baseline detectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.granger import granger_causality
from repro.core.loss import class_balanced_weights, effective_number
from repro.core.rbm import RBMConfig, SkewInsensitiveRBM
from repro.core.scaling import OnlineMinMaxScaler
from repro.core.trend import TrendTracker
from repro.detectors import ADWIN, DDM, FHDDM


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(0, 100_000), min_size=2, max_size=20),
    beta=st.floats(0.0, 0.9999),
)
def test_effective_number_bounds(counts, beta):
    counts = np.asarray(counts, dtype=float)
    effective = effective_number(counts, beta)
    assert np.all(effective >= 0.0)
    assert np.all(effective <= counts + 1e-9)
    if beta > 0.0:
        assert np.all(effective <= 1.0 / (1.0 - beta) + 1e-9)


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(1, 100_000), min_size=2, max_size=20),
    beta=st.floats(0.0, 0.9999),
)
def test_class_balanced_weights_order_reverses_counts(counts, beta):
    counts = np.asarray(counts, dtype=float)
    weights = class_balanced_weights(counts, beta)
    assert np.all(weights > 0.0)
    # Rarer classes never get smaller weights than more frequent ones.
    order = np.argsort(counts)
    sorted_weights = weights[order]
    assert np.all(np.diff(sorted_weights) <= 1e-9)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3),
        min_size=2,
        max_size=50,
    )
)
def test_scaler_output_always_in_unit_interval(rows):
    X = np.asarray(rows)
    scaler = OnlineMinMaxScaler(3)
    scaled = scaler.fit_transform(X)
    assert np.all(scaled >= 0.0)
    assert np.all(scaled <= 1.0)
    assert np.all(np.isfinite(scaled))


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=100))
def test_trend_tracker_always_finite(values):
    tracker = TrendTracker()
    for value in values:
        slope = tracker.update(float(value))
        assert np.isfinite(slope)
    assert len(tracker.trend_history) == len(values)


@settings(max_examples=30, deadline=None)
@given(
    slope=st.floats(-5.0, 5.0),
    intercept=st.floats(-10.0, 10.0),
    n=st.integers(10, 60),
)
def test_trend_tracker_recovers_linear_slope(slope, intercept, n):
    tracker = TrendTracker(max_window=n, min_window=4)
    estimate = 0.0
    for t in range(n):
        estimate = tracker.update(slope * t + intercept)
    assert abs(estimate - slope) < 1e-6 + 0.05 * abs(slope)


@settings(max_examples=30, deadline=None)
@given(
    series_a=st.lists(st.floats(-100.0, 100.0), min_size=4, max_size=60),
    series_b=st.lists(st.floats(-100.0, 100.0), min_size=4, max_size=60),
    lags=st.integers(1, 3),
)
def test_granger_result_always_well_formed(series_a, series_b, lags):
    result = granger_causality(np.asarray(series_a), np.asarray(series_b), lags=lags)
    assert 0.0 <= result.p_value <= 1.0
    assert result.f_statistic >= 0.0
    assert result.n_observations >= 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_rbm_probabilities_valid_for_random_weights(seed):
    rng = np.random.default_rng(seed)
    rbm = SkewInsensitiveRBM(
        RBMConfig(n_visible=5, n_hidden=4, n_classes=3, seed=seed)
    )
    X = rng.random((20, 5))
    y = rng.integers(0, 3, size=20)
    rbm.partial_fit(X, y)
    proba = rbm.predict_proba(X)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
    x_recon, z_recon = rbm.reconstruct(X, y)
    assert np.all((x_recon >= 0.0) & (x_recon <= 1.0))
    assert np.all((z_recon >= 0.0) & (z_recon <= 1.0))


@settings(max_examples=25, deadline=None)
@given(errors=st.lists(st.integers(0, 1), min_size=1, max_size=500))
def test_error_rate_detectors_never_crash_and_flags_consistent(errors):
    x = np.zeros(1)
    for detector in (DDM(), FHDDM(window_size=25), ADWIN()):
        for error in errors:
            detector.step(x, error, 0)
            assert not (detector.in_drift and detector.in_warning)
        assert detector.n_observations == len(errors)
        assert all(1 <= pos <= len(errors) for pos in detector.detections)
