"""Property test: fleet stepping is bit-identical to N scalar detectors.

For random stream counts, ragged tick interleavings (arbitrary subsets of
lanes with arbitrary per-lane element counts per tick), and arbitrary splits
of the element sequence into ticks, ``step_fleet`` must reproduce what N
independent scalar detectors produce when stepped one element at a time in
the same interleaved order: the per-element drift flags, the per-lane
detection positions, observation counts, final drift/warning state, and —
for the native struct-of-arrays kernels — every internal statistic exposed
via ``lane_state``.  This is the contract the fleet engine advertises in
:mod:`repro.fleet.state`; Hypothesis hunts for interleavings and tick
boundaries that break a kernel's round decomposition or concept resets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import DDM, ECDDWT, FHDDM, HDDM_A, RDDM, PageHinkley
from repro.detectors.base import ClassConditionalDetector, ErrorRateDetector
from repro.fleet import FLEET_NATIVE, fleet_from_template, make_fleet
from repro.protocol.registry import DETECTOR_NAMES, build_detector

N_CLASSES = 3
N_FEATURES = 4
DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]
#: Per-element reference stepping is slow for the trainable/window-heavy
#: detectors; they get fewer Hypothesis examples than the cheap kernels.
MAX_EXAMPLES = {"RBM-IM": 5, "ADWIN": 12, "WSTD": 12}
#: Elements per example (capped harder for RBM-IM, which trains per batch).
MAX_ELEMENTS = {"RBM-IM": 60}

#: Aggressively tuned sum-family templates so drifts, concept resets, RDDM
#: prune-rebuilds, and FHDDM window wraps all actually fire within an example.
AGGRESSIVE_TEMPLATES = {
    "DDM": lambda: DDM(min_num_instances=5),
    "RDDM": lambda: RDDM(
        min_num_instances=5,
        max_concept_size=40,
        min_size_stable_concept=20,
        warning_limit=3,
    ),
    "ECDD": lambda: ECDDWT(lambda_=0.3, control_limit=1.5, min_instances=5),
    "PH": lambda: PageHinkley(
        min_instances=5, delta=0.001, threshold=2.0, alpha=0.95
    ),
    "FHDDM": lambda: FHDDM(window_size=8, delta=0.05),
    "HDDM-A": lambda: HDDM_A(drift_confidence=0.01, warning_confidence=0.05),
}


@st.composite
def ragged_ticks(draw):
    """Stream count, element interleaving seed, drift pattern, tick splits."""
    n_streams = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=250))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n_pieces = draw(st.integers(min_value=1, max_value=4))
    probabilities = [
        draw(st.floats(min_value=0.0, max_value=0.9)) for _ in range(n_pieces)
    ]
    tick_sizes = draw(
        st.one_of(
            st.just([1] * n),  # one element per tick
            st.just([n]),  # the whole sequence in one tick
            st.lists(st.integers(min_value=0, max_value=n), min_size=1),
        )
    )
    return n_streams, n, seed, probabilities, tick_sizes


def _materialise(n_streams, n, seed, probabilities, tick_sizes):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, n_streams, n).astype(np.int64)
    piece = (n + len(probabilities) - 1) // len(probabilities)
    error_probability = np.repeat(probabilities, piece)[:n]
    is_error = rng.random(n) < error_probability
    labels = rng.integers(0, N_CLASSES, n)
    offsets = rng.integers(1, N_CLASSES, n)
    predictions = np.where(is_error, (labels + offsets) % N_CLASSES, labels)
    features = rng.random((n, N_FEATURES))

    sizes, remaining = [], n
    for size in tick_sizes:
        take = min(size, remaining)
        if take < 0:
            break
        sizes.append(take)
        remaining -= take
        if remaining == 0:
            break
    if remaining:
        sizes.append(remaining)
    return ids, is_error.astype(np.float64), labels, predictions, features, sizes


def _values_for(detector, errors, labels, predictions, features):
    """Tick payload in the fleet's per-family ``values`` layout."""
    if isinstance(detector, ErrorRateDetector):
        return errors
    if isinstance(detector, ClassConditionalDetector):
        return np.column_stack([labels, predictions]).astype(np.float64)
    return np.column_stack([features, labels, predictions]).astype(np.float64)


def _step_scalar(detector, value):
    """One element through the scalar detector, in the fleet's layout."""
    if isinstance(detector, ErrorRateDetector):
        return bool(detector.step_values(np.array([value]))[0])
    if isinstance(detector, ClassConditionalDetector):
        return bool(
            detector.step_batch(
                None, np.array([int(value[0])]), np.array([int(value[1])])
            )[0]
        )
    return bool(
        detector.step_batch(
            value[None, :-2],
            np.array([int(value[-2])]),
            np.array([int(value[-1])]),
        )[0]
    )


def _assert_fleet_exact(fleet, scalars, ids, values, sizes):
    reference = scalars[0]
    n = ids.shape[0]
    start = 0
    for size in sizes:
        tick_ids = ids[start : start + size]
        tick_values = values[start : start + size]
        flags = fleet.step_fleet(tick_ids, tick_values)
        expected = np.array(
            [
                _step_scalar(scalars[lane], tick_values[j])
                for j, lane in enumerate(tick_ids)
            ],
            dtype=bool,
        )
        assert np.array_equal(flags, expected), (
            f"tick flags diverged at elements [{start}, {start + size})"
        )
        start += size
    assert start == n
    for lane, scalar in enumerate(scalars):
        assert fleet.detections(lane) == list(scalar.detections)
        assert fleet.n_observations[lane] == scalar.n_observations
        assert bool(fleet.in_drift[lane]) == scalar.in_drift
        assert bool(fleet.in_warning[lane]) == scalar.in_warning
        for key, value in fleet.lane_state(lane).items():
            if key.startswith("_"):
                assert value == getattr(scalar, key), (lane, key)
    del reference


@pytest.mark.parametrize("name", DETECTORS)
def test_fleet_matches_scalar_detectors(name):
    @settings(max_examples=MAX_EXAMPLES.get(name, 25), deadline=None)
    @given(data=ragged_ticks())
    def run(data):
        n_streams, n, seed, probabilities, tick_sizes = data
        n = min(n, MAX_ELEMENTS.get(name, n))
        ids, errors, labels, predictions, features, sizes = _materialise(
            n_streams, n, seed, probabilities, tick_sizes
        )
        fleet = make_fleet(
            name, n_streams, n_features=N_FEATURES, n_classes=N_CLASSES
        )
        scalars = [
            build_detector(name, N_FEATURES, N_CLASSES)
            for _ in range(n_streams)
        ]
        probe = scalars[0]
        values = _values_for(probe, errors, labels, predictions, features)
        _assert_fleet_exact(fleet, scalars, ids, values, sizes)

    run()


@pytest.mark.parametrize("name", sorted(AGGRESSIVE_TEMPLATES))
def test_native_kernels_exact_through_drifts(name):
    """Drift-heavy configurations: resets, rebuilds, and warnings all fire."""
    assert name in FLEET_NATIVE

    @settings(max_examples=25, deadline=None)
    @given(data=ragged_ticks())
    def run(data):
        n_streams, n, seed, probabilities, tick_sizes = data
        ids, errors, _labels, _predictions, _features, sizes = _materialise(
            n_streams, n, seed, probabilities, tick_sizes
        )
        template = AGGRESSIVE_TEMPLATES[name]()
        fleet = fleet_from_template(template, n_streams)
        scalars = [
            type(template)(**template.clone_params()) for _ in range(n_streams)
        ]
        _assert_fleet_exact(fleet, scalars, ids, errors, sizes)

    run()
