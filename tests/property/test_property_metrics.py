"""Hypothesis property tests for the metric implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.confusion import StreamingConfusionMatrix
from repro.metrics.drift_eval import evaluate_detections
from repro.metrics.gmean import PrequentialGMean
from repro.metrics.pmauc import PrequentialMultiClassAUC, auc_from_scores

prediction_pairs = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=300
)


@settings(max_examples=60, deadline=None)
@given(pairs=prediction_pairs)
def test_confusion_total_equals_number_of_updates(pairs):
    cm = StreamingConfusionMatrix(4)
    for y_true, y_pred in pairs:
        cm.update(y_true, y_pred)
    assert cm.total == len(pairs)
    assert cm.matrix.sum() == len(pairs)


@settings(max_examples=60, deadline=None)
@given(pairs=prediction_pairs)
def test_confusion_metrics_bounded(pairs):
    cm = StreamingConfusionMatrix(4)
    for y_true, y_pred in pairs:
        cm.update(y_true, y_pred)
    assert 0.0 <= cm.accuracy() <= 1.0
    assert 0.0 <= cm.geometric_mean() <= 1.0
    assert -1.0 <= cm.kappa() <= 1.0
    recalls = cm.recall_per_class()
    observed = ~np.isnan(recalls)
    assert np.all((recalls[observed] >= 0.0) & (recalls[observed] <= 1.0))


@settings(max_examples=60, deadline=None)
@given(pairs=prediction_pairs, window=st.integers(1, 50))
def test_windowed_confusion_never_exceeds_window(pairs, window):
    cm = StreamingConfusionMatrix(4, window_size=window)
    for y_true, y_pred in pairs:
        cm.update(y_true, y_pred)
    assert cm.total <= window


@settings(max_examples=60, deadline=None)
@given(
    scores=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=200),
    data=st.data(),
)
def test_auc_bounded_and_complement_symmetric(scores, data):
    scores = np.asarray(scores)
    flags = np.asarray(
        data.draw(
            st.lists(st.booleans(), min_size=len(scores), max_size=len(scores))
        )
    )
    auc = auc_from_scores(scores, flags)
    if np.isnan(auc):
        assert flags.all() or (~flags).all()
    else:
        assert 0.0 <= auc <= 1.0
        # Swapping the positive class inverts the AUC.
        complement = auc_from_scores(scores, ~flags)
        assert abs(auc + complement - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(
    labels=st.lists(st.integers(0, 2), min_size=5, max_size=200),
    seed=st.integers(0, 1000),
)
def test_pmauc_perfect_scorer_dominates_random(labels, seed):
    rng = np.random.default_rng(seed)
    perfect = PrequentialMultiClassAUC(3, window_size=500)
    random_scorer = PrequentialMultiClassAUC(3, window_size=500)
    for label in labels:
        ideal = np.full(3, 0.05)
        ideal[label] = 0.9
        perfect.update(ideal, label)
        noise = rng.random(3)
        random_scorer.update(noise / noise.sum(), label)
    assert perfect.value() >= random_scorer.value() - 0.35
    assert 0.0 <= perfect.value() <= 1.0


@settings(max_examples=60, deadline=None)
@given(pairs=prediction_pairs)
def test_gmean_upper_bounded_by_best_recall(pairs):
    gmean = PrequentialGMean(4, window_size=1000)
    for y_true, y_pred in pairs:
        gmean.update(y_true, y_pred)
    recalls = gmean.recall_per_class()
    observed = recalls[~np.isnan(recalls)]
    if observed.size:
        assert gmean.value() <= observed.max() + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    true_drifts=st.lists(st.integers(0, 10_000), max_size=10),
    detections=st.lists(st.integers(0, 10_000), max_size=30),
    tolerance=st.integers(0, 3000),
)
def test_drift_report_invariants(true_drifts, detections, tolerance):
    report = evaluate_detections(true_drifts, detections, tolerance=tolerance)
    assert 0 <= report.n_detected <= report.n_true_drifts
    assert report.n_false_alarms <= report.n_detections
    assert 0.0 <= report.detection_recall <= 1.0
    if report.n_detected:
        assert 0.0 <= report.mean_delay <= tolerance
