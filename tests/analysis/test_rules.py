"""Good/bad fixture pairs for every file-local rule, plus pragma semantics.

Each bad fixture asserts the exact rule id **and** line, so a rule that
drifts to a neighbouring node (decorator line, enclosing statement) fails
here before it confuses a CI reader.
"""

from __future__ import annotations

import pytest

from analysis_helpers import lint_file
from repro.analysis.engine import ERROR, WARNING, lint_paths
from repro.analysis.rules import all_rules
from repro.analysis.rules.local import (
    BroadExceptRule,
    DeterminismRule,
    DurabilityRule,
    HotPathAllocationRule,
    PickleSafetyRule,
    StrictJsonRule,
)

def lines_of(findings) -> list[int]:
    return [finding.line for finding in findings]


@pytest.fixture
def lint_source(tmp_path):
    def _lint(source, rules, name="mod.py"):
        return lint_file(tmp_path, source, rules, name)

    return _lint


# ------------------------------------------------------------- determinism
class TestDeterminism:
    def test_bad_fixture(self, lint_source):
        findings = lint_source(
            """\
            import random
            import time

            import numpy as np


            def bad():
                rng = np.random.default_rng()
                draw = np.random.standard_normal(3)
                coin = random.random()
                stamp = time.time()
                return rng, draw, coin, stamp
            """,
            [DeterminismRule()],
        )
        assert [finding.rule for finding in findings] == ["determinism"] * 4
        assert lines_of(findings) == [8, 9, 10, 11]
        assert all(finding.severity == ERROR for finding in findings)

    def test_good_fixture(self, lint_source):
        findings = lint_source(
            """\
            import random
            import time

            import numpy as np


            def good(seed):
                rng = np.random.default_rng(seed)
                child = np.random.SeedSequence(seed).spawn(1)[0]
                coin = random.Random(seed).random()
                elapsed = time.monotonic()
                return rng, child, coin, elapsed
            """,
            [DeterminismRule()],
        )
        assert findings == []

    def test_import_alias_is_resolved(self, lint_source):
        """The rule keys on the *resolved* module, not the literal ``np.``."""
        findings = lint_source(
            """\
            import numpy.random as npr

            value = npr.standard_normal(3)
            """,
            [DeterminismRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("determinism", 3)]


# -------------------------------------------------------------- strict-json
class TestStrictJson:
    def test_bad_fixture(self, lint_source):
        findings = lint_source(
            """\
            import json


            def save(obj, handle):
                json.dump(obj, handle)
                return json.dumps(obj)
            """,
            [StrictJsonRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("strict-json", 5),
            ("strict-json", 6),
        ]

    def test_good_fixture(self, lint_source):
        findings = lint_source(
            """\
            import json


            def save(obj, handle):
                json.dump(obj, handle, allow_nan=False)
                return json.dumps(obj, allow_nan=False)
            """,
            [StrictJsonRule()],
        )
        assert findings == []

    def test_jsonio_module_is_exempt(self, lint_source):
        """The strict-JSON helpers themselves may call bare ``json.dumps``."""
        findings = lint_source(
            """\
            import json


            def dumps_strict(obj):
                return json.dumps(obj)
            """,
            [StrictJsonRule()],
            name="repro/core/jsonio.py",
        )
        assert findings == []


# -------------------------------------------------------------- durability
class TestDurability:
    def test_bad_fixture(self, lint_source):
        findings = lint_source(
            """\
            import os


            def swap(tmp, dst):
                os.replace(tmp, dst)
            """,
            [DurabilityRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("durability", 5)]
        assert findings[0].severity == ERROR

    def test_good_fixture(self, lint_source):
        findings = lint_source(
            """\
            import os

            from repro.core.durability import fsync_dir


            def swap(tmp, dst, directory):
                os.replace(tmp, dst)
                fsync_dir(directory)
            """,
            [DurabilityRule()],
        )
        assert findings == []

    def test_delegating_to_atomic_write_text_is_fine(self, lint_source):
        findings = lint_source(
            """\
            from repro.core.durability import atomic_write_text


            def save(directory, path, payload):
                atomic_write_text(directory, path, payload)
            """,
            [DurabilityRule()],
        )
        assert findings == []


# ----------------------------------------------------------- hot-path-alloc
class TestHotPathAllocation:
    def test_bad_fixture(self, lint_source):
        findings = lint_source(
            """\
            import numpy as np

            from repro.core.hotpath import hot_path


            @hot_path
            def step(a, b, scratch):
                grown = np.concatenate((a, b))
                fresh = np.exp(a)
                np.exp(a, out=scratch)
                return grown, fresh
            """,
            [HotPathAllocationRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("hot-path-alloc", 8),
            ("hot-path-alloc", 9),
        ]
        assert all(finding.severity == WARNING for finding in findings)

    def test_good_fixture_unmarked_function_is_ignored(self, lint_source):
        findings = lint_source(
            """\
            import numpy as np


            def cold(a, b):
                return np.concatenate((a, b))
            """,
            [HotPathAllocationRule()],
        )
        assert findings == []

    def test_extra_functions_config(self, lint_source):
        """Config-listed qualnames are hot even without the decorator."""
        findings = lint_source(
            """\
            import numpy as np


            class Kernel:
                def advance(self, a, b):
                    return np.concatenate((a, b))
            """,
            [HotPathAllocationRule(extra_functions=["Kernel.advance"])],
        )
        assert [(f.rule, f.line) for f in findings] == [("hot-path-alloc", 6)]


# ------------------------------------------------------------- broad-except
class TestBroadExcept:
    def test_bad_fixture(self, lint_source):
        findings = lint_source(
            """\
            def swallow():
                try:
                    work()
                except Exception:
                    pass
                try:
                    work()
                except:
                    pass
            """,
            [BroadExceptRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("broad-except", 4),
            ("broad-except", 8),
        ]

    def test_good_fixture(self, lint_source):
        findings = lint_source(
            """\
            def handled():
                try:
                    work()
                except (ValueError, OSError):
                    pass
                try:
                    work()
                except Exception:
                    cleanup()
                    raise
            """,
            [BroadExceptRule()],
        )
        assert findings == []

    def test_noqa_ble001_with_reason_is_accepted(self, lint_source):
        findings = lint_source(
            """\
            def tolerant():
                try:
                    work()
                except Exception:  # noqa: BLE001 - worker result is data
                    pass
            """,
            [BroadExceptRule()],
        )
        assert findings == []


# ------------------------------------------------------------ pickle-safety
class TestPickleSafety:
    def test_bad_fixture(self, lint_source):
        findings = lint_source(
            """\
            def launch(pool, spec):
                def payload():
                    return 1

                pool.submit(payload)
                return CellTask(spec, fn=lambda: 2)
            """,
            [PickleSafetyRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("pickle-safety", 5),
            ("pickle-safety", 6),
        ]
        assert "payload" in findings[0].message
        assert "lambda" in findings[1].message

    def test_good_fixture(self, lint_source):
        findings = lint_source(
            """\
            import functools


            def payload(spec):
                return 1


            def launch(pool, spec):
                pool.submit(payload)
                return CellTask(spec, fn=functools.partial(payload, spec))
            """,
            [PickleSafetyRule()],
        )
        assert findings == []

    def test_lambda_assigned_name_is_a_local_callable(self, lint_source):
        findings = lint_source(
            """\
            def launch(pool):
                fn = lambda: 2
                pool.submit(fn)
            """,
            [PickleSafetyRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("pickle-safety", 3)]


# ----------------------------------------------------------------- pragmas
class TestPragmas:
    def test_disable_pragma_suppresses_on_its_line(self, lint_source):
        findings = lint_source(
            """\
            import time

            stamp = time.time()  # lint: disable=determinism -- wall-clock log stamp
            other = time.time()
            """,
            [DeterminismRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("determinism", 4)]

    def test_pragma_for_other_rule_does_not_suppress(self, lint_source):
        findings = lint_source(
            """\
            import time

            stamp = time.time()  # lint: disable=strict-json -- wrong rule
            """,
            [DeterminismRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("determinism", 3)]

    def test_disable_all_suppresses_every_rule(self, lint_source):
        findings = lint_source(
            """\
            import time

            stamp = time.time()  # lint: disable=all -- fixture escape hatch
            """,
            [DeterminismRule()],
        )
        assert findings == []

    def test_rationale_required_rule_rejects_bare_pragma(self, lint_source):
        """broad-except pragmas without ``-- why`` still fail, loudly."""
        findings = lint_source(
            """\
            def swallow():
                try:
                    work()
                except Exception:  # lint: disable=broad-except
                    pass
            """,
            [BroadExceptRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("broad-except", 4)]
        assert "missing" in findings[0].message and "rationale" in findings[0].message

    def test_rationale_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """\
            def swallow():
                try:
                    work()
                except Exception:  # lint: disable=broad-except -- detector state is per-cell data
                    pass
            """,
            [BroadExceptRule()],
        )
        assert findings == []

    def test_pragma_inside_string_literal_is_not_a_pragma(self, lint_source):
        """Pragmas are parsed from real comment tokens, not substrings."""
        findings = lint_source(
            '''\
            import time

            stamp = time.time(); note = "# lint: disable=determinism -- not a comment"
            ''',
            [DeterminismRule()],
        )
        assert [(f.rule, f.line) for f in findings] == [("determinism", 3)]


# --------------------------------------------------------------- machinery
class TestMachinery:
    def test_all_rules_cover_the_documented_ids(self):
        assert sorted(rule.id for rule in all_rules()) == [
            "broad-except",
            "contract-coverage",
            "determinism",
            "durability",
            "hot-path-alloc",
            "pickle-safety",
            "strict-json",
        ]

    def test_syntax_error_becomes_a_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        findings = lint_paths([path], all_rules())
        assert [finding.rule for finding in findings] == ["syntax-error"]
        assert findings[0].severity == ERROR

    def test_strict_escalates_warnings_to_errors(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def swallow():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n",
            encoding="utf-8",
        )
        relaxed = lint_paths([path], [BroadExceptRule()])
        strict = lint_paths([path], [BroadExceptRule()], strict=True)
        assert [finding.severity for finding in relaxed] == [WARNING]
        assert [finding.severity for finding in strict] == [ERROR]
