"""Fake-tree tests for the registry-vs-tests contract-coverage rule.

Each test builds a miniature repo layout under ``tmp_path`` (the real
``src/repro/...`` module paths, tiny contents), then mutates exactly one
coverage contract and asserts the rule fires on the registry/fleet line the
author of such a change would have touched.
"""

from __future__ import annotations

import pytest

from analysis_helpers import write_tree
from repro.analysis.engine import lint_paths
from repro.analysis.rules.contracts import ContractCoverageRule

REGISTRY = """\
    from repro.core.detector import DriftDetectorMixin


    class DDM(DriftDetectorMixin):
        def step(self, x, y_true, y_pred):
            return False


    def _build_ddm():
        return DDM()


    _REGISTRY: dict = {
        "ddm": _build_ddm,
        "none": None,
    }

    DETECTOR_NAMES = tuple(sorted(_REGISTRY))
"""

DETECTOR_BASE = """\
    class DriftDetectorMixin:
        def step_batch(self, X, y_true, y_pred):
            return []
"""

RESET_REPLAY = """\
    from repro.protocol.registry import DETECTOR_NAMES

    DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]
"""

SNAPSHOT_SUITE = """\
    from repro.protocol.registry import DETECTOR_NAMES

    DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]
"""

FLEET = """\
    def _ddm_kernel():
        pass


    FLEET_NATIVE: dict = {
        "DDM": _ddm_kernel,
    }
"""

FLEET_SUITE = """\
    from repro.fleet import FLEET_NATIVE

    KERNELS = sorted(FLEET_NATIVE)

    AGGRESSIVE_TEMPLATES = {
        "DDM": {"warn_scale": 1.0},
    }
"""

BASELINE = {
    "src/repro/__init__.py": "",
    "src/repro/core/__init__.py": "",
    "src/repro/core/detector.py": DETECTOR_BASE,
    "src/repro/protocol/__init__.py": "",
    "src/repro/protocol/registry.py": REGISTRY,
    "src/repro/fleet/__init__.py": FLEET,
    "tests/golden/ddm.json": "{}",
    "tests/detectors/test_reset_replay.py": RESET_REPLAY,
    "tests/detectors/test_snapshot_roundtrip.py": SNAPSHOT_SUITE,
    "tests/property/test_property_fleet.py": FLEET_SUITE,
}


@pytest.fixture
def fake_repo(tmp_path):
    def _build(overrides: dict | None = None):
        files = dict(BASELINE)
        files.update(overrides or {})
        write_tree(tmp_path, files)
        return tmp_path

    return _build


def run_rule(root):
    return lint_paths(
        [root / "src"], [ContractCoverageRule()], project_root=root
    )


class TestContractCoverage:
    def test_baseline_tree_is_clean(self, fake_repo):
        assert run_rule(fake_repo()) == []

    def test_new_detector_without_golden_pin_fires(self, fake_repo):
        """Adding a registry entry without pins fails lint — the tentpole's
        acceptance criterion."""
        root = fake_repo(
            {
                "src/repro/protocol/registry.py": REGISTRY.replace(
                    '"ddm": _build_ddm,',
                    '"ddm": _build_ddm,\n        "eddm": _build_ddm,',
                )
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "eddm" in findings[0].message
        assert "golden" in findings[0].message
        # Anchored at the registry entry the author just added.
        assert findings[0].path.endswith("registry.py")
        assert findings[0].line == 15

    def test_hardcoded_reset_replay_list_fires_for_uncovered_detector(
        self, fake_repo
    ):
        root = fake_repo(
            {
                "src/repro/protocol/registry.py": REGISTRY.replace(
                    '"ddm": _build_ddm,',
                    '"ddm": _build_ddm,\n        "eddm": _build_ddm,',
                ),
                "tests/golden/eddm.json": "{}",
                # The suite pins a literal list instead of DETECTOR_NAMES.
                "tests/detectors/test_reset_replay.py": 'DETECTORS = ["ddm"]\n',
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "eddm" in findings[0].message
        assert "reset" in findings[0].message.lower()
        assert findings[0].line == 15

    def test_dynamic_reset_replay_list_covers_additions(self, fake_repo):
        """Deriving from DETECTOR_NAMES covers new detectors automatically."""
        root = fake_repo(
            {
                "src/repro/protocol/registry.py": REGISTRY.replace(
                    '"ddm": _build_ddm,',
                    '"ddm": _build_ddm,\n        "eddm": _build_ddm,',
                ),
                "tests/golden/eddm.json": "{}",
            }
        )
        assert run_rule(root) == []

    def test_detector_without_step_batch_fires(self, fake_repo):
        root = fake_repo(
            {
                "src/repro/core/detector.py": (
                    "class DriftDetectorMixin:\n"
                    "    def step(self, x, y_true, y_pred):\n"
                    "        return False\n"
                )
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "step_batch" in findings[0].message
        assert findings[0].line == 14  # the "ddm" registry entry

    def test_step_batch_inherited_through_import_chain_counts(self, fake_repo):
        """A re-exported base class defining step_batch satisfies the rule."""
        root = fake_repo(
            {
                "src/repro/core/detector.py": (
                    "from repro.core.base import ChunkExactBase\n"
                    "\n"
                    "\n"
                    "class DriftDetectorMixin(ChunkExactBase):\n"
                    "    pass\n"
                ),
                "src/repro/core/base.py": (
                    "class ChunkExactBase:\n"
                    "    def step_batch(self, X, y_true, y_pred):\n"
                    "        return []\n"
                ),
            }
        )
        assert run_rule(root) == []

    def test_unresolvable_builder_fires(self, fake_repo):
        root = fake_repo(
            {
                "src/repro/protocol/registry.py": REGISTRY.replace(
                    '"ddm": _build_ddm,',
                    '"ddm": _build_ddm,\n        "mystery": object(),',
                ),
                "tests/golden/mystery.json": "{}",
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "mystery" in findings[0].message
        assert findings[0].line == 15

    def test_fleet_kernel_without_template_fires(self, fake_repo):
        root = fake_repo(
            {
                "src/repro/fleet/__init__.py": FLEET.replace(
                    '"DDM": _ddm_kernel,',
                    '"DDM": _ddm_kernel,\n    "PH": _ddm_kernel,',
                )
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "PH" in findings[0].message
        assert "AGGRESSIVE_TEMPLATES" in findings[0].message
        assert findings[0].path.endswith("fleet/__init__.py")

    def test_fleet_suite_not_referencing_registry_fires(self, fake_repo):
        root = fake_repo(
            {
                "tests/property/test_property_fleet.py": (
                    'AGGRESSIVE_TEMPLATES = {"DDM": {}}\n'
                )
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "FLEET_NATIVE" in findings[0].message

    def test_missing_reset_replay_suite_fires_per_detector(self, fake_repo):
        root = fake_repo()
        (root / "tests/detectors/test_reset_replay.py").unlink()
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "missing" in findings[0].message

    def test_missing_snapshot_suite_fires_per_detector(self, fake_repo):
        root = fake_repo()
        (root / "tests/detectors/test_snapshot_roundtrip.py").unlink()
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "snapshot" in findings[0].message
        assert "missing" in findings[0].message

    def test_hardcoded_snapshot_list_fires_for_uncovered_detector(
        self, fake_repo
    ):
        root = fake_repo(
            {
                "src/repro/protocol/registry.py": REGISTRY.replace(
                    '"ddm": _build_ddm,',
                    '"ddm": _build_ddm,\n        "eddm": _build_ddm,',
                ),
                "tests/golden/eddm.json": "{}",
                # The suite pins a literal list instead of DETECTOR_NAMES.
                "tests/detectors/test_snapshot_roundtrip.py": (
                    'DETECTORS = ["ddm"]\n'
                ),
            }
        )
        findings = run_rule(root)
        assert [finding.rule for finding in findings] == ["contract-coverage"]
        assert "eddm" in findings[0].message
        assert "snapshot" in findings[0].message
        assert findings[0].line == 15

    def test_live_repo_registry_resolves_end_to_end(self):
        """Against the real tree: every registry detector resolves to a class
        with an in-repo ``step_batch``, and the rule stays silent."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        findings = lint_paths(
            [root / "src" / "repro"],
            [ContractCoverageRule()],
            project_root=root,
        )
        assert findings == []
