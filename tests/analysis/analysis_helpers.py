"""Helpers for the linter's own test suite.

Deliberately *not* a ``conftest.py``: the repo's root ``tests/conftest.py``
is imported by sibling suites as the top-level module ``conftest`` (e.g.
``from conftest import feed_errors``), and a second file of that name here
would shadow it in ``sys.modules``.  Test modules import this the same way
pytest resolves those: the test file's own directory is on ``sys.path``.

Every rule test follows the same shape: write a small fixture module into
``tmp_path``, lint it with exactly one rule, and assert on ``(rule, line)``
pairs — the same contract a CI reader has with a lint failure.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.engine import lint_paths


def lint_file(tmp_path: Path, source: str, rules, name: str = "mod.py"):
    """Lint ``source`` (dedented) as a file named ``name`` under tmp_path."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path], rules)


def write_tree(root: Path, files: dict) -> None:
    """Materialise ``{relative_path: content}`` under ``root``."""
    for relative, content in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
