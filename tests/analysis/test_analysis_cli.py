"""CLI behaviour, the strict self-lint gate, and the stdlib-only guarantee."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro.analysis as analysis
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(argv, capsys) -> tuple[int, str]:
    code = main(argv)
    return code, capsys.readouterr().out


def subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


BAD_SOURCE = textwrap.dedent(
    """\
    import time

    stamp = time.time()
    """
)


class TestSelfLint:
    """The acceptance gate: the linter passes over its own repository."""

    def test_strict_self_lint_is_clean_via_api(self):
        findings = analysis.run(
            [REPO_ROOT / "src" / "repro"], strict=True, project_root=REPO_ROOT
        )
        assert findings == []

    def test_strict_self_lint_exits_zero_via_module_invocation(self):
        """Exactly what CI runs: ``python -m repro.analysis --strict src/repro``."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--strict", "src/repro"],
            cwd=REPO_ROOT,
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_no_suppression_baseline_file_exists(self):
        """Cleanliness comes from pragmas-with-rationale in the code, not
        from a checked-in baseline of grandfathered findings."""
        baselines = [
            path
            for path in REPO_ROOT.rglob("*baseline*")
            if ".git" not in path.parts and "test" not in path.name
        ]
        assert baselines == []


class TestStdlibOnly:
    def test_linter_runs_with_numpy_and_scipy_blocked(self, tmp_path):
        """The CI lint job installs nothing — prove the whole import chain
        (``import repro`` included) works with the science stack absent."""
        target = tmp_path / "mod.py"
        target.write_text(BAD_SOURCE, encoding="utf-8")
        probe = tmp_path / "probe.py"
        probe.write_text(
            textwrap.dedent(
                f"""\
                import sys


                class Blocker:
                    BLOCKED = {{"numpy", "scipy"}}

                    def find_spec(self, name, path=None, target=None):
                        if name.split(".")[0] in self.BLOCKED:
                            raise ImportError(f"{{name}} is blocked")
                        return None


                sys.meta_path.insert(0, Blocker())

                import repro  # the lazy __init__ must not touch numpy
                from repro.analysis import run

                findings = run([{str(target)!r}])
                assert [f.rule for f in findings] == ["determinism"], findings
                print("OK")
                """
            ),
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, str(probe)],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_lazy_package_exports_still_resolve(self):
        """PEP 562 laziness must not break the public API surface."""
        import repro

        assert repro.RBMIM is not None
        assert "RBMIM" in dir(repro)


class TestCli:
    def test_exit_one_on_error_finding(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(BAD_SOURCE, encoding="utf-8")
        code, out = run_cli([str(path)], capsys)
        assert code == 1
        assert "determinism" in out
        assert f"{path}:3:" in out  # path:line:col prefix

    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n", encoding="utf-8")
        code, out = run_cli([str(path)], capsys)
        assert code == 0

    def test_warnings_exit_zero_unless_strict(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(
            "def swallow():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n",
            encoding="utf-8",
        )
        relaxed, _ = run_cli([str(path)], capsys)
        strict, _ = run_cli(["--strict", str(path)], capsys)
        assert relaxed == 0
        assert strict == 1

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(BAD_SOURCE, encoding="utf-8")
        code, out = run_cli(["--format", "json", str(path)], capsys)
        payload = json.loads(out)
        assert code == 1
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        finding = payload["findings"][0]
        assert finding["rule"] == "determinism"
        assert finding["line"] == 3
        assert finding["severity"] == "error"

    def test_select_restricts_rules(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(BAD_SOURCE, encoding="utf-8")
        code, _ = run_cli(["--select", "strict-json", str(path)], capsys)
        assert code == 0  # the determinism finding is filtered out

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "no-such-rule", str(path)])
        assert excinfo.value.code == 2

    def test_missing_path_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["/no/such/path/exists"])
        assert excinfo.value.code == 2

    def test_list_rules_names_every_rule(self, capsys):
        code, out = run_cli(["--list-rules"], capsys)
        assert code == 0
        for rule_id in (
            "determinism",
            "strict-json",
            "durability",
            "contract-coverage",
            "hot-path-alloc",
            "broad-except",
            "pickle-safety",
        ):
            assert rule_id in out
