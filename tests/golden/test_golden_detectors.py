"""Golden regression tests: seeded detection positions for every detector.

Each detector in the registry is fed the *same* fixed, fully-deterministic
input derived from a seeded paper scenario stream (real concept drifts +
dynamic imbalance) and a seeded synthetic prediction error schedule whose
error rate jumps at every ground-truth drift.  The positions at which the
detector fires are pinned in one JSON file per detector under
``tests/golden/``.

Every detector is replayed in *both* execution modes — the per-instance
``step`` loop and the NumPy-native ``step_batch`` kernels (over deliberately
awkward chunk sizes) — against the same pinned positions, so a kernel that
drifts from its scalar twin fails here even if both change together relative
to the goldens.

The goldens exist to lock detector behaviour down before refactors: any
change to a detector's logic, to the stream generators, or to the
drift/imbalance wrappers that alters a seeded detection sequence fails
loudly here with a position-level diff.  After an *intentional* change,
regenerate with::

    pytest tests/golden --regen-golden

and commit the resulting diff.  Regeneration refuses to write (and fails
loudly) while the two execution modes disagree — goldens must never pin a
mode-dependent detection sequence.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.protocol.registry import DETECTOR_NAMES, build_detector
from repro.streams.scenarios import make_artificial_stream

GOLDEN_DIR = Path(__file__).parent

#: Frozen input parameters.  Changing ANY of these invalidates every golden
#: file; bump only together with --regen-golden.  Chosen so that EVERY
#: detector fires at least once on this input: the post-drift errors are
#: structurally biased (each drift collapses misclassifications onto one
#: fixed class offset) so that shape-sensitive detectors like PerfSim — which
#: compares consecutive confusion matrices and is blind to uniformly-spread
#: error-rate jumps — pin a non-trivial detection sequence too.  An all-empty
#: pin would be a vacuous regression guard.
STREAM_SEED = 99
PREDICTION_SEED = 20260729
N_INSTANCES = 4_000
N_CLASSES = 5
WARMUP = 200
BASE_ERROR = 0.15
DRIFT_ERROR = 0.85
ERROR_RAMP = 900

DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]


@pytest.fixture(scope="module")
def golden_input():
    """The fixed (X, y, y_pred, meta) every detector is replayed against."""
    scenario = make_artificial_stream(
        "rbf",
        n_classes=N_CLASSES,
        n_instances=N_INSTANCES,
        n_drifts=3,
        max_imbalance_ratio=50.0,
        seed=STREAM_SEED,
    )
    features, labels = scenario.stream.generate_batch(N_INSTANCES)

    # Synthetic classifier: base error rate, jumping to DRIFT_ERROR at every
    # ground-truth drift and decaying linearly back over ERROR_RAMP instances.
    error_probability = np.full(N_INSTANCES, BASE_ERROR)
    for drift in scenario.drift_points:
        end = min(N_INSTANCES, drift + ERROR_RAMP)
        ramp = np.linspace(DRIFT_ERROR, BASE_ERROR, end - drift)
        error_probability[drift:end] = np.maximum(error_probability[drift:end], ramp)
    rng = np.random.default_rng(PREDICTION_SEED)
    is_error = rng.random(N_INSTANCES) < error_probability
    offsets = rng.integers(1, N_CLASSES, size=N_INSTANCES)
    # Structural bias: inside each post-drift ramp every misclassification
    # lands on one drift-specific class offset, so the *shape* of the
    # confusion matrix changes at drifts, not just the error rate.
    for index, drift in enumerate(scenario.drift_points):
        end = min(N_INSTANCES, drift + ERROR_RAMP)
        offsets[drift:end] = 1 + index % (N_CLASSES - 1)
    predictions = np.where(is_error, (labels + offsets) % N_CLASSES, labels)

    meta = {
        "stream": scenario.name,
        "stream_seed": STREAM_SEED,
        "prediction_seed": PREDICTION_SEED,
        "n_instances": N_INSTANCES,
        "n_classes": N_CLASSES,
        "warmup": WARMUP,
        "error_bias": "fixed-offset-post-drift",
        "drift_points": list(scenario.drift_points),
    }
    return features, labels.astype(np.int64), predictions.astype(np.int64), meta


#: Deliberately awkward batch-mode chunk sizes: coprime with every detector's
#: internal window/batch length, and including single-instance chunks.
BATCH_CHUNK_CYCLE = (97, 1, 256, 33, 1024)

#: Replays are deterministic, so the sanity check reuses the parametrized
#: tests' results instead of stepping every detector twice per session.
_replay_cache: dict[tuple[str, str], list[int]] = {}


def replay_detector(name: str, golden_input, mode: str = "instance") -> list[int]:
    """Feed the fixed input through a freshly built detector; return alarms.

    ``mode="instance"`` steps one prediction at a time; ``mode="batch"``
    drives the same input through ``step_batch`` over the awkward chunk
    cycle.  Chunk-exactness means both must yield identical alarms.
    """
    key = (name, mode)
    if key in _replay_cache:
        return _replay_cache[key]
    features, labels, predictions, _ = golden_input
    detector = build_detector(name, features.shape[1], N_CLASSES)
    detector.warm_start(features[:WARMUP], labels[:WARMUP])
    alarms: list[int] = []
    if mode == "instance":
        for i in range(WARMUP, N_INSTANCES):
            if detector.step(features[i], int(labels[i]), int(predictions[i])):
                alarms.append(i)
    else:
        start = WARMUP
        cycle = 0
        while start < N_INSTANCES:
            size = BATCH_CHUNK_CYCLE[cycle % len(BATCH_CHUNK_CYCLE)]
            cycle += 1
            stop = min(start + size, N_INSTANCES)
            flags = detector.step_batch(
                features[start:stop], labels[start:stop], predictions[start:stop]
            )
            alarms.extend((start + np.flatnonzero(flags)).tolist())
            start = stop
    _replay_cache[key] = alarms
    return alarms


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _first_divergence(expected: list[int], actual: list[int]) -> int:
    for index, (a, b) in enumerate(zip(expected, actual)):
        if a != b:
            return index
    return min(len(expected), len(actual))


@pytest.mark.parametrize("mode", ["instance", "batch"])
@pytest.mark.parametrize("name", DETECTORS)
def test_detector_matches_golden(name: str, mode: str, golden_input, request) -> None:
    actual = replay_detector(name, golden_input, mode)
    meta = golden_input[3]
    path = golden_path(name)

    if request.config.getoption("--regen-golden"):
        other_mode = "batch" if mode == "instance" else "instance"
        other = replay_detector(name, golden_input, other_mode)
        if actual != other:
            divergence = _first_divergence(actual, other)
            pytest.fail(
                f"REFUSING to regenerate golden for {name!r}: instance and "
                f"batch mode disagree (chunk-exactness is broken).\n"
                f"  {mode} mode: {len(actual)} detections {actual}\n"
                f"  {other_mode} mode: {len(other)} detections {other}\n"
                f"  first divergence at alarm #{divergence}.\n"
                f"Fix the detector's step_batch kernel before regenerating."
            )
        path.write_text(
            json.dumps(
                {"detector": name, "input": meta, "detections": actual},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        return

    if not path.exists():
        pytest.fail(
            f"no golden file for detector {name!r} at {path}.\n"
            f"Generate it with: pytest tests/golden --regen-golden"
        )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert golden["input"] == meta, (
        f"golden input parameters for {name!r} do not match the harness "
        f"(golden {golden['input']} vs current {meta}); regenerate the "
        f"goldens with --regen-golden"
    )
    expected = list(golden["detections"])
    if actual != expected:
        divergence = _first_divergence(expected, actual)
        pytest.fail(
            f"seeded detections of {name!r} changed (in {mode} mode).\n"
            f"  expected {len(expected)} detections: {expected}\n"
            f"  actual   {len(actual)} detections: {actual}\n"
            f"  first divergence at alarm #{divergence}: "
            f"expected {expected[divergence] if divergence < len(expected) else '<none>'}, "
            f"got {actual[divergence] if divergence < len(actual) else '<none>'}\n"
            f"If this change is intentional, regenerate with "
            f"`pytest tests/golden --regen-golden` and commit the diff."
        )


def test_every_registry_detector_has_a_golden() -> None:
    """A new detector must be pinned before it ships."""
    missing = [name for name in DETECTORS if not golden_path(name).exists()]
    assert not missing, (
        f"detectors without golden files: {missing}; run "
        f"`pytest tests/golden --regen-golden`"
    )


def test_golden_inputs_trip_most_detectors(golden_input) -> None:
    """Sanity: the fixture's drift signal is strong enough to be pinnable.

    If a refactor of the harness weakened the injected error signal, every
    golden would silently pin an empty detection list; require that a clear
    majority of detectors fire at least once.
    """
    firing = sum(1 for name in DETECTORS if replay_detector(name, golden_input))
    assert firing >= len(DETECTORS) // 2 + 1
