"""Unit tests for drift composition wrappers."""

import numpy as np
import pytest

from repro.streams.drift import (
    ConceptDriftStream,
    ConceptScheduleStream,
    LocalDriftStream,
    RecurringDriftStream,
    sample_instance_of_class,
    try_sample_instance_of_class,
)
from repro.streams.generators import (
    MixedGenerator,
    RandomRBFGenerator,
    RandomTreeGenerator,
    SEAGenerator,
)


class TestSampleInstanceOfClass:
    def test_returns_requested_class(self):
        stream = RandomRBFGenerator(n_classes=4, n_features=5, seed=0)
        instance = sample_instance_of_class(stream, 2)
        assert instance.y == 2

    def test_raises_for_unreachable_class(self):
        stream = SEAGenerator(n_classes=2, concept=0, noise=0.0, seed=0)
        # Class index 1 exists, but ask for a quick failure with tiny budget on
        # a class that never appears by forcing max_tries=1 repeatedly until a
        # mismatch occurs; easier: request class 1 with max_tries=0-like small.
        with pytest.raises(RuntimeError):
            sample_instance_of_class(stream, 1, max_tries=0)

    def test_try_variant_returns_none_instead_of_raising(self):
        stream = SEAGenerator(n_classes=2, concept=0, noise=0.0, seed=0)
        assert try_sample_instance_of_class(stream, 1, max_tries=0) is None

    def test_try_variant_survives_exhausted_stream(self):
        from repro.streams.base import Instance, ListStream

        stream = ListStream([Instance(x=np.zeros(2), y=0)] * 3)
        assert try_sample_instance_of_class(stream, 1, max_tries=100) is None


class TestConceptDriftStream:
    def _streams(self):
        return (
            MixedGenerator(concept=0, seed=1),
            MixedGenerator(concept=1, seed=2),
        )

    def test_sudden_switch_at_position(self):
        base, drift = self._streams()
        stream = ConceptDriftStream(base, drift, position=100, kind="sudden", seed=0)
        stream.take(100)
        assert stream._new_concept_probability(99) == 0.0
        assert stream._new_concept_probability(100) == 1.0

    def test_gradual_probability_monotone(self):
        base, drift = self._streams()
        stream = ConceptDriftStream(
            base, drift, position=100, width=100, kind="gradual", seed=0
        )
        probabilities = [stream._new_concept_probability(t) for t in range(80, 220, 10)]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] == 0.0
        assert probabilities[-1] == 1.0

    def test_incremental_probability_sigmoidal(self):
        base, drift = self._streams()
        stream = ConceptDriftStream(
            base, drift, position=100, width=100, kind="incremental", seed=0
        )
        mid = stream._new_concept_probability(150)
        assert 0.3 < mid < 0.7
        assert stream._new_concept_probability(250) == 1.0

    def test_drift_points_recorded(self):
        base, drift = self._streams()
        stream = ConceptDriftStream(base, drift, position=500, seed=0)
        assert stream.drift_points == [500]

    def test_schema_mismatch_rejected(self):
        base = MixedGenerator(seed=0)
        other = RandomRBFGenerator(n_classes=2, n_features=7, seed=0)
        with pytest.raises(ValueError):
            ConceptDriftStream(base, other, position=10)

    def test_unknown_kind_rejected(self):
        base, drift = self._streams()
        with pytest.raises(ValueError):
            ConceptDriftStream(base, drift, position=10, kind="weird")

    def test_restart_restores_both_sources(self):
        base, drift = self._streams()
        stream = ConceptDriftStream(base, drift, position=50, seed=3)
        first = [(inst.x.copy(), inst.y) for inst in stream.take(80)]
        stream.restart()
        second = [(inst.x.copy(), inst.y) for inst in stream.take(80)]
        for (xa, ya), (xb, yb) in zip(first, second):
            np.testing.assert_array_equal(xa, xb)
            assert ya == yb


class TestConceptScheduleStream:
    def test_applies_schedule(self):
        generator = RandomTreeGenerator(n_classes=3, n_features=4, noise=0.0, seed=1)
        stream = ConceptScheduleStream(generator, [(0, 0), (200, 5)], seed=0)
        stream.take(199)
        assert generator.concept == 0
        stream.take(2)
        assert generator.concept == 5

    def test_drift_points_exclude_initial_concept(self):
        generator = RandomTreeGenerator(n_classes=3, n_features=4, seed=1)
        stream = ConceptScheduleStream(generator, [(0, 0), (300, 1), (600, 2)])
        assert stream.drift_points == [300, 600]

    def test_requires_set_concept(self):
        from repro.streams.base import Instance, ListStream

        plain = ListStream([Instance(x=np.zeros(2), y=0)] * 5)
        with pytest.raises(TypeError):
            ConceptScheduleStream(plain, [(0, 0)])

    def test_negative_positions_rejected(self):
        generator = RandomTreeGenerator(seed=1)
        with pytest.raises(ValueError):
            ConceptScheduleStream(generator, [(-5, 0)])


class TestRecurringDriftStream:
    def test_cycles_through_concepts(self):
        generator = RandomTreeGenerator(n_classes=3, n_features=4, seed=2)
        stream = RecurringDriftStream(generator, concepts=[0, 1], period=100, seed=0)
        stream.take(50)
        assert generator.concept == 0
        stream.take(100)
        assert generator.concept == 1
        stream.take(100)
        assert generator.concept == 0

    def test_drift_points_follow_period(self):
        generator = RandomTreeGenerator(n_classes=3, n_features=4, seed=2)
        stream = RecurringDriftStream(generator, concepts=[0, 1, 2], period=100)
        stream.take(350)
        assert stream.drift_points == [100, 200, 300]

    def test_drift_point_reported_only_after_drifted_instance_emitted(self):
        # Regression (ground-truth off-by-one): the boundary at `period` used
        # to be reported once `period` instances were emitted, although the
        # first new-concept instance (index == period) had not been.
        generator = RandomTreeGenerator(n_classes=3, n_features=4, seed=2)
        stream = RecurringDriftStream(generator, concepts=[0, 1], period=100)
        stream.take(100)
        assert stream.drift_points == []
        stream.take(1)  # index 100: first instance of the new cycle
        assert stream.drift_points == [100]

    @pytest.mark.parametrize("chunking", [[37, 80, 1, 113, 119], [350], [1] * 350])
    def test_ground_truth_parity_across_chunkings(self, chunking):
        # Chunks crossing a cycle boundary mid-batch must record exactly the
        # drift points per-instance iteration records at the same position.
        def make():
            generator = RandomTreeGenerator(n_classes=3, n_features=4, seed=2)
            return RecurringDriftStream(generator, concepts=[0, 1, 2], period=110)

        instance_stream, batch_stream = make(), make()
        consumed = 0
        for size in chunking:
            batch_x, batch_y = batch_stream.generate_batch(size)
            for _ in range(size):
                instance_stream.next_instance()
            consumed += size
            assert batch_stream.position == instance_stream.position == consumed
            assert batch_stream.drift_points == instance_stream.drift_points

    def test_invalid_period(self):
        generator = RandomTreeGenerator(seed=2)
        with pytest.raises(ValueError):
            RecurringDriftStream(generator, concepts=[0, 1], period=0)

    def test_empty_concepts_rejected(self):
        generator = RandomTreeGenerator(seed=2)
        with pytest.raises(ValueError):
            RecurringDriftStream(generator, concepts=[], period=10)


class TestLocalDriftStream:
    def _factory(self, concept: int):
        return RandomRBFGenerator(
            n_classes=4, n_features=6, n_centroids=8, concept=concept, seed=11
        )

    def test_non_drifted_classes_keep_distribution(self):
        stream = LocalDriftStream(
            generator_factory=self._factory,
            old_concept=0,
            new_concept=1,
            drifted_classes=[3],
            position=200,
            seed=5,
        )
        reference = self._factory(0)
        reference_means = {}
        for label in range(4):
            rows = []
            while len(rows) < 60:
                inst = reference.next_instance()
                if inst.y == label:
                    rows.append(inst.x)
            reference_means[label] = np.vstack(rows).mean(axis=0)

        stream.take(400)  # move well past the drift point
        post = {label: [] for label in range(4)}
        while any(len(v) < 40 for v in post.values()):
            inst = stream.next_instance()
            if len(post[inst.y]) < 60:
                post[inst.y].append(inst.x)
        # Class 0 (not drifted) should stay close to the old concept mean;
        # class 3 (drifted) should move away noticeably more.
        stable_shift = np.linalg.norm(
            np.vstack(post[0]).mean(axis=0) - reference_means[0]
        )
        drifted_shift = np.linalg.norm(
            np.vstack(post[3]).mean(axis=0) - reference_means[3]
        )
        assert drifted_shift > stable_shift

    def test_drifted_classes_property(self):
        stream = LocalDriftStream(
            self._factory, 0, 1, drifted_classes=[1, 3], position=10
        )
        assert stream.drifted_classes == [1, 3]
        assert stream.drift_points == [10]

    def test_rejects_empty_drifted_classes(self):
        with pytest.raises(ValueError):
            LocalDriftStream(self._factory, 0, 1, drifted_classes=[], position=10)

    def test_rejects_out_of_range_classes(self):
        with pytest.raises(ValueError):
            LocalDriftStream(self._factory, 0, 1, drifted_classes=[9], position=10)

    def test_no_drift_before_position(self):
        stream = LocalDriftStream(
            self._factory, 0, 1, drifted_classes=[2], position=10_000, seed=1
        )
        reference = self._factory(0)
        for inst, ref in zip(stream.take(50), reference.take(50)):
            np.testing.assert_array_equal(inst.x, ref.x)
            assert inst.y == ref.y

    def test_unreachable_class_falls_back_without_aborting(self):
        # Regression: when the new concept cannot produce the drifted class
        # the rejection sampler used to dead-end in a RuntimeError path; both
        # paths must now deterministically keep the old-concept instance and
        # stay bit-identical.
        from repro.streams.base import Instance, ListStream, StreamSchema

        def factory(concept: int):
            if concept == 0:
                return RandomRBFGenerator(
                    n_classes=4, n_features=6, n_centroids=8, concept=0, seed=11
                )
            # "New concept" that only ever emits class 0, then runs dry: the
            # drifted classes can never be re-sampled from it.
            return ListStream(
                [Instance(x=np.zeros(6), y=0)] * 30,
                schema=StreamSchema(n_features=6, n_classes=4),
            )

        def make():
            return LocalDriftStream(
                generator_factory=factory,
                old_concept=0,
                new_concept=1,
                drifted_classes=[2, 3],
                position=5,
                seed=3,
            )

        instance_stream, batch_stream = make(), make()
        instances = instance_stream.take(120)
        inst_x = np.vstack([i.x for i in instances])
        inst_y = np.asarray([i.y for i in instances])
        batch_x, batch_y = batch_stream.generate_batch(120)
        assert batch_y.shape[0] == 120  # the stream never aborts mid-run
        np.testing.assert_array_equal(batch_x, inst_x)
        np.testing.assert_array_equal(batch_y, inst_y)
        # Drifted-class rows kept their old-concept features (non-zero).
        assert np.all(np.abs(batch_x[np.isin(batch_y, [2, 3])]).sum(axis=1) > 0)
