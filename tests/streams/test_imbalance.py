"""Unit tests for imbalance profiles and the re-sampling wrapper."""

import numpy as np
import pytest

from repro.streams.generators import RandomRBFGenerator
from repro.streams.imbalance import (
    DynamicImbalance,
    ImbalancedStream,
    RoleSwitchingImbalance,
    StaticImbalance,
    geometric_priors,
    geometric_priors_batch,
)


class TestGeometricPriors:
    def test_sum_to_one(self):
        priors = geometric_priors(5, 100.0)
        assert priors.sum() == pytest.approx(1.0)

    def test_max_min_ratio_matches_request(self):
        priors = geometric_priors(7, 50.0)
        assert priors.max() / priors.min() == pytest.approx(50.0)

    def test_balanced_when_ratio_one(self):
        priors = geometric_priors(4, 1.0)
        np.testing.assert_allclose(priors, 0.25)

    def test_monotonically_decreasing(self):
        priors = geometric_priors(6, 80.0)
        assert np.all(np.diff(priors) < 0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            geometric_priors(1, 10.0)
        with pytest.raises(ValueError):
            geometric_priors(3, 0.5)


class TestStaticImbalance:
    def test_priors_constant_over_time(self):
        profile = StaticImbalance(4, 30.0)
        np.testing.assert_allclose(profile.priors(0), profile.priors(100_000))

    def test_imbalance_ratio_report(self):
        profile = StaticImbalance(4, 30.0)
        assert profile.imbalance_ratio(10) == pytest.approx(30.0)


class TestDynamicImbalance:
    def test_ratio_oscillates_between_bounds(self):
        profile = DynamicImbalance(5, min_ratio=10.0, max_ratio=100.0, period=1000)
        ratios = [profile.current_ratio(t) for t in range(0, 2000, 50)]
        assert min(ratios) == pytest.approx(10.0, abs=1e-6)
        assert max(ratios) == pytest.approx(100.0, abs=1e-6)

    def test_ratio_changes_over_time(self):
        profile = DynamicImbalance(5, min_ratio=10.0, max_ratio=100.0, period=1000)
        assert profile.imbalance_ratio(0) != pytest.approx(profile.imbalance_ratio(500))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DynamicImbalance(3, min_ratio=0.5, max_ratio=10.0, period=100)
        with pytest.raises(ValueError):
            DynamicImbalance(3, min_ratio=10.0, max_ratio=5.0, period=100)
        with pytest.raises(ValueError):
            DynamicImbalance(3, min_ratio=1.0, max_ratio=5.0, period=0)


class TestRoleSwitchingImbalance:
    def test_rotation_advances_with_switch_period(self):
        profile = RoleSwitchingImbalance(
            4, min_ratio=5.0, max_ratio=20.0, period=1000, switch_period=500
        )
        assert profile.role_rotation(0) == 0
        assert profile.role_rotation(500) == 1
        assert profile.role_rotation(2000) == 0  # wraps around 4 classes

    def test_majority_class_changes_roles(self):
        profile = RoleSwitchingImbalance(
            4, min_ratio=5.0, max_ratio=20.0, period=10_000, switch_period=100
        )
        majority_before = int(np.argmax(profile.priors(0)))
        majority_after = int(np.argmax(profile.priors(100)))
        assert majority_before != majority_after

    def test_priors_still_sum_to_one(self):
        profile = RoleSwitchingImbalance(
            5, min_ratio=2.0, max_ratio=50.0, period=500, switch_period=200
        )
        for t in (0, 123, 999, 5000):
            assert profile.priors(t).sum() == pytest.approx(1.0)

    def test_invalid_switch_period(self):
        with pytest.raises(ValueError):
            RoleSwitchingImbalance(3, 1.0, 5.0, period=10, switch_period=0)


class TestBatchPriorEvaluation:
    """The vectorized profile path must be bit-identical to the scalar one.

    The schedule engine and the imbalance wrapper both evaluate profiles in
    batch; a single ULP of divergence from the scalar path could flip an
    inverse-CDF class choice and silently break batch/instance parity.
    """

    PROFILES = {
        "static": StaticImbalance(5, 40.0),
        "dynamic": DynamicImbalance(5, 2.0, 100.0, period=777, phase=0.3),
        "dynamic-flat": DynamicImbalance(3, 1.0, 500.0, period=10),
        "roles": RoleSwitchingImbalance(6, 3.0, 60.0, period=500, switch_period=123),
    }

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_priors_batch_bitwise_matches_scalar(self, name):
        profile = self.PROFILES[name]
        positions = np.arange(0, 10_000, 7)
        batch = profile.priors_batch(positions)
        scalar = np.stack([profile.priors(int(t)) for t in positions])
        np.testing.assert_array_equal(batch, scalar)

    def test_priors_batch_empty_positions(self):
        batch = StaticImbalance(4, 10.0).priors_batch(np.empty(0, dtype=np.int64))
        assert batch.shape == (0, 4)

    def test_geometric_priors_batch_matches_scalar(self):
        ratios = np.linspace(1.0, 300.0, 101)
        batch = geometric_priors_batch(6, ratios)
        scalar = np.stack([geometric_priors(6, float(r)) for r in ratios])
        np.testing.assert_array_equal(batch, scalar)

    def test_geometric_priors_batch_validation(self):
        with pytest.raises(ValueError):
            geometric_priors_batch(1, np.array([2.0]))
        with pytest.raises(ValueError):
            geometric_priors_batch(3, np.array([0.5]))


class TestImbalancedStream:
    def _base(self, seed=0):
        return RandomRBFGenerator(n_classes=4, n_features=5, n_centroids=8, seed=seed)

    def test_empirical_skew_tracks_profile(self):
        profile = StaticImbalance(4, 20.0)
        stream = ImbalancedStream(self._base(), profile, seed=1)
        labels = np.asarray([inst.y for inst in stream.take(4000)])
        counts = np.bincount(labels, minlength=4).astype(float)
        # Majority (class 0) should dominate the smallest class by roughly the
        # requested factor (allow generous tolerance for sampling noise).
        assert counts[0] / max(counts[3], 1.0) > 5.0

    def test_schema_preserved(self):
        stream = ImbalancedStream(self._base(), StaticImbalance(4, 10.0), seed=0)
        assert stream.n_classes == 4
        assert stream.n_features == 5

    def test_profile_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ImbalancedStream(self._base(), StaticImbalance(3, 10.0))

    def test_restart_reproduces_sequence(self):
        stream = ImbalancedStream(self._base(), StaticImbalance(4, 10.0), seed=4)
        first = [(inst.x.copy(), inst.y) for inst in stream.take(100)]
        stream.restart()
        second = [(inst.x.copy(), inst.y) for inst in stream.take(100)]
        for (xa, ya), (xb, yb) in zip(first, second):
            np.testing.assert_array_equal(xa, xb)
            assert ya == yb

    def test_propagates_drift_points(self):
        from repro.streams.drift import ConceptScheduleStream

        generator = self._base()
        drifting = ConceptScheduleStream(generator, [(0, 0), (500, 1)])
        stream = ImbalancedStream(drifting, StaticImbalance(4, 10.0), seed=0)
        assert stream.drift_points == [500]

    def test_finite_base_exhaustion_is_chunk_exact_and_terminal(self):
        # Regression: a finite base exhausting mid-batch used to let
        # StopIteration escape generate_batch, and fresh uniforms were drawn
        # for positions whose class choice had already been decided — so the
        # batch path diverged from per-instance iteration at the truncation.
        from repro.streams.base import Instance, ListStream

        def make():
            rng = np.random.default_rng(7)
            base = ListStream(
                [
                    Instance(x=rng.random(3), y=int(rng.integers(3)))
                    for _ in range(60)
                ]
            )
            return ImbalancedStream(base, StaticImbalance(3, 8.0), seed=5)

        instance_stream = make()
        instances = instance_stream.take(1_000)
        inst_x = np.vstack([i.x for i in instances])
        inst_y = np.asarray([i.y for i in instances])

        batch_stream = make()
        chunks = []
        while True:
            features, labels = batch_stream.generate_batch(7)
            if labels.shape[0] == 0:
                break
            chunks.append((features, labels))
        batch_x = np.vstack([f for f, _ in chunks])
        batch_y = np.concatenate([y for _, y in chunks])

        assert batch_x.shape == inst_x.shape
        np.testing.assert_array_equal(batch_x, inst_x)
        np.testing.assert_array_equal(batch_y, inst_y)
        # Terminal afterwards for both reading paths.
        assert batch_stream.generate_batch(4)[1].shape[0] == 0
        assert batch_stream.take(4) == []

    def test_profile_position_identical_for_empty_and_tiny_chunks(self):
        # The profile must be evaluated at the same emitted position whatever
        # mix of empty, size-1, and larger chunks got the stream there.
        def make():
            return ImbalancedStream(
                self._base(),
                DynamicImbalance(4, 2.0, 40.0, period=50),
                seed=9,
            )

        reference = make()
        ref_x, ref_y = reference.generate_batch(60)
        chunked = make()
        parts = []
        for size in (0, 1, 0, 13, 1, 0, 45):
            parts.append(chunked.generate_batch(size))
        chunk_x = np.vstack([p[0] for p in parts])
        chunk_y = np.concatenate([p[1] for p in parts])
        np.testing.assert_array_equal(ref_x, chunk_x)
        np.testing.assert_array_equal(ref_y, chunk_y)

    def test_role_switching_profile_changes_majority(self):
        profile = RoleSwitchingImbalance(
            4, min_ratio=5.0, max_ratio=20.0, period=4000, switch_period=1000
        )
        stream = ImbalancedStream(self._base(), profile, seed=2)
        first_block = np.bincount(
            [inst.y for inst in stream.take(900)], minlength=4
        )
        stream.take(200)  # cross the switch point
        second_block = np.bincount(
            [inst.y for inst in stream.take(900)], minlength=4
        )
        assert int(np.argmax(first_block)) != int(np.argmax(second_block))
