"""Seeded batch/instance equivalence for every generator and wrapper.

The batch-first contract: for a fixed seed, ``generate_batch(n)`` must be
bit-identical to ``n`` calls of ``next_instance()``, and to any split of the
same ``n`` instances across several smaller batches.  These tests pin that
contract for all ten generators (in noisy and noiseless configurations, and
with the sequential-state variants like the drifting hyperplane and moving
RBF centroids) and for the drift/imbalance/scenario wrappers.
"""

import numpy as np
import pytest

from repro.streams.base import DataStream
from repro.streams.drift import (
    ConceptDriftStream,
    ConceptScheduleStream,
    LocalDriftStream,
    RecurringDriftStream,
)
from repro.streams.generators import (
    AgrawalGenerator,
    HyperplaneGenerator,
    LEDGenerator,
    MixedGenerator,
    RandomRBFGenerator,
    RandomTreeGenerator,
    SEAGenerator,
    SineGenerator,
    StaggerGenerator,
    WaveformGenerator,
)
from repro.streams.imbalance import (
    DynamicImbalance,
    ImbalancedStream,
    RoleSwitchingImbalance,
)
from repro.streams.real_world import real_world_stream
from repro.streams.scenarios import (
    make_artificial_stream,
    scenario_blip,
    scenario_class_arrival,
    scenario_feature_drift,
    scenario_gradual_mixture,
    scenario_label_noise,
    scenario_local_drift,
    scenario_recurring_drift,
    scenario_role_switching,
)
from repro.streams.schedule import Schedule, ScheduledStream, Segment

N_CHECK = 400
SPLITS = (1, 5, 94, 300)  # sums to N_CHECK


GENERATOR_FACTORIES = {
    "sea": lambda seed: SEAGenerator(n_classes=3, noise=0.1, seed=seed),
    "sea-noiseless": lambda seed: SEAGenerator(n_classes=2, noise=0.0, seed=seed),
    "sine": lambda seed: SineGenerator(n_classes=3, noise=0.05, seed=seed),
    "stagger": lambda seed: StaggerGenerator(multi_class=True, noise=0.05, seed=seed),
    "hyperplane": lambda seed: HyperplaneGenerator(
        n_classes=5, n_features=10, seed=seed
    ),
    "hyperplane-drift": lambda seed: HyperplaneGenerator(
        n_classes=5, n_features=10, mag_change=0.01, seed=seed
    ),
    "rbf": lambda seed: RandomRBFGenerator(n_classes=4, n_features=8, seed=seed),
    "rbf-moving": lambda seed: RandomRBFGenerator(
        n_classes=4, n_features=8, centroid_speed=0.01, seed=seed
    ),
    "agrawal": lambda seed: AgrawalGenerator(n_classes=5, n_features=20, seed=seed),
    "led": lambda seed: LEDGenerator(seed=seed),
    "waveform": lambda seed: WaveformGenerator(add_noise_features=True, seed=seed),
    "mixed": lambda seed: MixedGenerator(noise=0.1, seed=seed),
    "randomtree": lambda seed: RandomTreeGenerator(
        n_classes=4, n_features=6, noise=0.1, seed=seed
    ),
}


def _rbf(seed, concept=0):
    return RandomRBFGenerator(
        n_classes=4, n_features=8, concept=concept, seed=seed
    )


WRAPPER_FACTORIES = {
    "concept-drift-sudden": lambda seed: ConceptDriftStream(
        SEAGenerator(n_classes=3, seed=seed),
        SEAGenerator(n_classes=3, concept=2, seed=seed + 1),
        position=100,
        kind="sudden",
        seed=seed + 2,
    ),
    "concept-drift-gradual": lambda seed: ConceptDriftStream(
        SEAGenerator(n_classes=3, seed=seed),
        SEAGenerator(n_classes=3, concept=2, seed=seed + 1),
        position=100,
        width=200,
        kind="gradual",
        seed=seed + 2,
    ),
    "concept-drift-incremental": lambda seed: ConceptDriftStream(
        SEAGenerator(n_classes=3, seed=seed),
        SEAGenerator(n_classes=3, concept=2, seed=seed + 1),
        position=100,
        width=200,
        kind="incremental",
        seed=seed + 2,
    ),
    "schedule": lambda seed: ConceptScheduleStream(
        _rbf(seed), [(0, 0), (150, 1), (290, 2)], seed=seed + 1
    ),
    "recurring": lambda seed: RecurringDriftStream(
        _rbf(seed), [0, 1, 2], period=110, seed=seed + 1
    ),
    "local-drift": lambda seed: LocalDriftStream(
        lambda concept: _rbf(seed, concept),
        old_concept=0,
        new_concept=1,
        drifted_classes=[2, 3],
        position=80,
        width=150,
        seed=seed + 1,
    ),
    "imbalanced-dynamic": lambda seed: ImbalancedStream(
        _rbf(seed), DynamicImbalance(4, 2.0, 25.0, period=300), seed=seed + 1
    ),
    "imbalanced-roles": lambda seed: ImbalancedStream(
        _rbf(seed),
        RoleSwitchingImbalance(4, 2.0, 25.0, period=300, switch_period=130),
        seed=seed + 1,
    ),
    "scenario1": lambda seed: make_artificial_stream(
        "rbf", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario2": lambda seed: scenario_role_switching(
        "randomtree", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario3": lambda seed: scenario_local_drift(
        "rbf", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario4": lambda seed: scenario_recurring_drift(
        "rbf", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario5": lambda seed: scenario_gradual_mixture(
        "randomtree", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario6": lambda seed: scenario_class_arrival(
        "rbf", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario7": lambda seed: scenario_feature_drift(
        "rbf", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario8": lambda seed: scenario_label_noise(
        "randomtree", 5, n_instances=2_000, seed=seed
    ).stream,
    "scenario9": lambda seed: scenario_blip(
        "rbf", 5, n_instances=2_000, seed=seed
    ).stream,
    "schedule-dsl": lambda seed: ScheduledStream(
        lambda concept: _rbf(seed, concept),
        Schedule.of(
            Segment(length=90, concept=0, imbalance_ratio=10.0),
            Segment(length=90, concept=1, transition="incremental", width=40),
            Segment(length=90, concept=2, drifted_classes=(2, 3), label_noise=0.1),
            Segment(length=90, feature_shift=0.3, width=30, rotation=2),
            Segment(length=90, concept=0, active_classes=(0, 1, 3)),
        ),
        seed=seed + 1,
    ),
    "real-world": lambda seed: real_world_stream(
        "Electricity", n_instances=2_000, seed=seed
    ).stream,
}

ALL_FACTORIES = {**GENERATOR_FACTORIES, **WRAPPER_FACTORIES}


def _materialise_instances(stream: DataStream, n: int):
    instances = stream.take(n)
    features = np.vstack([inst.x for inst in instances])
    labels = np.asarray([inst.y for inst in instances], dtype=np.int64)
    return features, labels


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
class TestBatchInstanceParity:
    def test_batch_matches_instances_bitwise(self, name):
        factory = ALL_FACTORIES[name]
        batch_stream = factory(42)
        instance_stream = factory(42)
        batch_x, batch_y = batch_stream.generate_batch(N_CHECK)
        inst_x, inst_y = _materialise_instances(instance_stream, N_CHECK)
        assert batch_y.shape[0] == N_CHECK
        np.testing.assert_array_equal(batch_x, inst_x)
        np.testing.assert_array_equal(batch_y, inst_y)

    def test_batch_split_invariant(self, name):
        factory = ALL_FACTORIES[name]
        whole = factory(7)
        split = factory(7)
        whole_x, whole_y = whole.generate_batch(N_CHECK)
        parts = [split.generate_batch(k) for k in SPLITS]
        split_x = np.vstack([part[0] for part in parts])
        split_y = np.concatenate([part[1] for part in parts])
        np.testing.assert_array_equal(whole_x, split_x)
        np.testing.assert_array_equal(whole_y, split_y)

    def test_position_advances_with_batches(self, name):
        stream = ALL_FACTORIES[name](3)
        stream.generate_batch(17)
        stream.next_instance()
        assert stream.position == 18

    def test_restart_replays_batches(self, name):
        if name in ("hyperplane-drift", "rbf-moving"):
            pytest.skip(
                "restart resets the RNG but not concept state mutated by "
                "incremental drift (see property tests)"
            )
        stream = ALL_FACTORIES[name](11)
        first_x, first_y = stream.generate_batch(60)
        stream.restart()
        second_x, second_y = stream.generate_batch(60)
        np.testing.assert_array_equal(first_x, second_x)
        np.testing.assert_array_equal(first_y, second_y)


class TestFiniteSourceExhaustion:
    """A finite source exhausting mid-batch must never lose drawn data."""

    @staticmethod
    def _make(n_base, n_drift):
        from repro.streams.base import Instance, ListStream

        base = ListStream(
            [Instance(x=np.full(2, float(i)), y=0) for i in range(n_base)]
        )
        drift = ListStream(
            [Instance(x=np.full(2, 1000.0 + i), y=1) for i in range(n_drift)]
        )
        return ConceptDriftStream(
            base, drift, position=0, width=12, kind="gradual", seed=0
        )

    @pytest.mark.parametrize("n_base,n_drift", [(8, 30), (3, 200), (30, 4)])
    def test_batch_matches_instances_even_when_finite(self, n_base, n_drift):
        # Regression: a truncated batch used to (a) drop rows already drawn
        # from the still-healthy source and (b) redraw concept-choice
        # uniforms for already-decided positions, so the batch path emitted a
        # different (much longer) stream than the per-instance path.
        instance_stream = self._make(n_base, n_drift)
        instances = instance_stream.take(1_000)
        inst_x = np.vstack([i.x for i in instances]) if instances else None

        batch_stream = self._make(n_base, n_drift)
        chunks = []
        while True:
            features, labels = batch_stream.generate_batch(5)
            if labels.shape[0] == 0:
                break
            chunks.append((features, labels))
        batch_x = np.vstack([f for f, _ in chunks])
        batch_y = np.concatenate([y for _, y in chunks])

        assert batch_x.shape == inst_x.shape
        np.testing.assert_array_equal(batch_x, inst_x)
        np.testing.assert_array_equal(
            batch_y, np.asarray([i.y for i in instances])
        )
        # Emitted rows are gapless prefixes of each source.
        drift_values = batch_x[batch_y == 1][:, 0]
        np.testing.assert_array_equal(
            drift_values, 1000.0 + np.arange(drift_values.shape[0])
        )

    def test_exhaustion_is_terminal_for_both_paths(self):
        stream = self._make(n_base=3, n_drift=200)
        while stream.generate_batch(5)[1].shape[0]:
            pass
        # Once the selected source is exhausted, the stream stays ended for
        # both reading paths (no redrawing of the terminal decision).
        assert stream.generate_batch(5)[1].shape[0] == 0
        assert stream.take(5) == []


class TestBatchShapes:
    def test_zero_length_batch(self):
        stream = SEAGenerator(n_classes=3, seed=0)
        features, labels = stream.generate_batch(0)
        assert features.shape == (0, stream.n_features)
        assert labels.shape == (0,)
        assert stream.position == 0

    def test_negative_batch_rejected(self):
        stream = SEAGenerator(n_classes=3, seed=0)
        with pytest.raises(ValueError):
            stream.generate_batch(-1)

    def test_dtypes(self):
        features, labels = LEDGenerator(seed=1).generate_batch(10)
        assert features.dtype == np.float64
        assert labels.dtype == np.int64
