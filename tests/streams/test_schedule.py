"""Unit tests for the declarative schedule DSL and its execution engine."""

import numpy as np
import pytest

from repro.streams.generators import RandomRBFGenerator
from repro.streams.imbalance import DynamicImbalance, StaticImbalance
from repro.streams.schedule import (
    DriftEvent,
    Schedule,
    ScheduledStream,
    Segment,
)


def rbf_factory(n_classes=4, n_features=6, seed=5):
    def factory(concept):
        return RandomRBFGenerator(
            n_classes=n_classes,
            n_features=n_features,
            n_centroids=10,
            concept=concept,
            seed=seed,
        )

    return factory


class TestSegmentValidation:
    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError, match="length"):
            Segment(length=0)

    def test_rejects_unknown_transition(self):
        with pytest.raises(ValueError, match="transition"):
            Segment(length=10, transition="wobbly")

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError, match="label_noise"):
            Segment(length=10, label_noise=1.5)

    def test_rejects_empty_class_sets(self):
        with pytest.raises(ValueError, match="drifted_classes"):
            Segment(length=10, drifted_classes=())
        with pytest.raises(ValueError, match="active_classes"):
            Segment(length=10, active_classes=())

    def test_class_sets_are_sorted_and_deduped(self):
        segment = Segment(length=10, drifted_classes=(3, 1, 3))
        assert segment.drifted_classes == (1, 3)

    def test_rejects_bad_imbalance_ratio(self):
        with pytest.raises(ValueError, match="imbalance_ratio"):
            Segment(length=10, imbalance_ratio=0.5)


class TestScheduleGeometry:
    def test_requires_at_least_one_segment(self):
        with pytest.raises(ValueError):
            Schedule(segments=())

    def test_total_length_and_starts(self):
        schedule = Schedule.of(Segment(100), Segment(50), Segment(25))
        assert schedule.total_length == 175
        assert schedule.starts() == [0, 100, 150]

    def test_concept_inheritance(self):
        schedule = Schedule.of(
            Segment(10), Segment(10, concept=2), Segment(10), Segment(10, concept=0)
        )
        assert schedule.resolved_concepts() == [0, 2, 2, 0]

    def test_feature_shift_inheritance(self):
        schedule = Schedule.of(
            Segment(10), Segment(10, feature_shift=0.3), Segment(10)
        )
        assert schedule.resolved_shifts() == [0.0, 0.3, 0.3]

    def test_concept_sweep_helper(self):
        schedule = Schedule.concept_sweep(3, 100, transition="gradual", width=20)
        assert schedule.resolved_concepts() == [0, 1, 2]
        assert [s.width for s in schedule.segments] == [0, 20, 20]

    def test_recurring_helper_cycles(self):
        schedule = Schedule.recurring([0, 1], period=50, n_periods=4)
        assert schedule.resolved_concepts() == [0, 1, 0, 1]
        assert schedule.drift_points() == [50, 100, 150]


class TestGroundTruth:
    def test_real_drift_events(self):
        schedule = Schedule.of(
            Segment(100, concept=0),
            Segment(100, concept=1),
            Segment(100, concept=1),  # no change: no event
            Segment(100, concept=2, drifted_classes=(3,)),
        )
        events = schedule.events()
        assert events == [
            DriftEvent(100, "real"),
            DriftEvent(300, "real", classes=(3,)),
        ]
        assert schedule.drift_points() == [100, 300]

    def test_blip_events_are_not_real(self):
        schedule = Schedule.of(
            Segment(100, concept=0),
            Segment(20, concept=1, blip=True),
            Segment(100, concept=0),
        )
        kinds = [e.kind for e in schedule.events()]
        assert kinds == ["blip", "blip"]
        assert schedule.drift_points() == []

    def test_virtual_noise_and_prior_events(self):
        schedule = Schedule.of(
            Segment(100),
            Segment(100, feature_shift=0.4, label_noise=0.2),
            Segment(100, feature_shift=0.4, active_classes=(0, 1)),
        )
        events = schedule.events(n_classes=3)
        assert DriftEvent(100, "virtual") in events
        assert DriftEvent(100, "noise") in events
        # Noise reverts to 0 at the third segment, the shift persists.
        assert DriftEvent(200, "noise") in events
        assert DriftEvent(200, "prior", classes=(2,)) in events
        assert not any(e.kind == "virtual" and e.position == 200 for e in events)

    def test_event_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            DriftEvent(0, "weird")


class TestScheduledStream:
    def _stream(self, seed=9, **kwargs):
        schedule = Schedule.of(
            Segment(120, concept=0),
            Segment(120, concept=1, transition="gradual", width=40),
            Segment(120, concept=2, drifted_classes=(2, 3)),
        )
        return ScheduledStream(
            rbf_factory(), schedule, seed=seed,
            imbalance=DynamicImbalance(4, 2.0, 20.0, period=200), **kwargs
        )

    def test_schema_comes_from_factory(self):
        stream = self._stream()
        assert stream.n_classes == 4
        assert stream.n_features == 6

    def test_ground_truth_exposed(self):
        stream = self._stream()
        assert stream.drift_points == [120, 240]
        assert stream.drifted_classes == [None, [2, 3]]
        assert [e.kind for e in stream.events] == ["real", "real"]

    def test_open_ended_tail(self):
        stream = self._stream()
        features, labels = stream.generate_batch(500)
        assert labels.shape[0] == 500  # total_length is 360; tail continues

    def test_restart_replays(self):
        stream = self._stream()
        first_x, first_y = stream.generate_batch(200)
        stream.restart()
        second_x, second_y = stream.generate_batch(200)
        np.testing.assert_array_equal(first_x, second_x)
        np.testing.assert_array_equal(first_y, second_y)

    def test_active_classes_respected(self):
        schedule = Schedule.of(
            Segment(50, concept=0),
            Segment(150, active_classes=(0, 2)),
        )
        stream = ScheduledStream(rbf_factory(), schedule, seed=3)
        _, labels = stream.generate_batch(200)
        assert set(np.unique(labels[50:])) <= {0, 2}

    def test_removed_class_never_leaks_through_sampler_fallback(self):
        # Regression: the sampler's fullest-buffer fallback could re-emit a
        # removed class when the wanted class exhausted the draw budget.  A
        # tiny budget forces the fallback on nearly every request; the active
        # mask must still hold exactly after the declared change point.
        schedule = Schedule.of(
            Segment(50, concept=0, imbalance_ratio=50.0),
            Segment(450, active_classes=(2, 3), imbalance_ratio=50.0),
        )
        stream = ScheduledStream(
            rbf_factory(), schedule, seed=3, max_tries_per_draw=2
        )
        _, labels = stream.generate_batch(500)
        assert set(np.unique(labels[50:])) <= {2, 3}
        # Both reading paths agree under the stressed fallback.
        other = ScheduledStream(
            rbf_factory(), schedule, seed=3, max_tries_per_draw=2
        )
        inst_y = np.asarray([i.y for i in other.take(500)])
        np.testing.assert_array_equal(labels, inst_y)

    def test_static_segment_ratio_override(self):
        schedule = Schedule.of(Segment(4000, concept=0, imbalance_ratio=30.0))
        stream = ScheduledStream(rbf_factory(), schedule, seed=1)
        _, labels = stream.generate_batch(4000)
        counts = np.bincount(labels, minlength=4).astype(float)
        assert counts[0] / max(counts[3], 1.0) > 5.0

    def test_rotation_override_changes_majority(self):
        base = Schedule.of(Segment(3000, imbalance_ratio=25.0))
        rotated = Schedule.of(Segment(3000, imbalance_ratio=25.0, rotation=1))
        majority = []
        for schedule in (base, rotated):
            stream = ScheduledStream(rbf_factory(), schedule, seed=2)
            _, labels = stream.generate_batch(3000)
            majority.append(int(np.argmax(np.bincount(labels, minlength=4))))
        assert majority[0] != majority[1]

    def test_label_noise_flips_labels(self):
        clean = Schedule.of(Segment(2000, concept=0))
        noisy = Schedule.of(Segment(2000, concept=0, label_noise=0.5))
        stream_clean = ScheduledStream(rbf_factory(), clean, seed=4)
        stream_noisy = ScheduledStream(rbf_factory(), noisy, seed=4)
        _, labels_clean = stream_clean.generate_batch(2000)
        _, labels_noisy = stream_noisy.generate_batch(2000)
        flipped = (labels_clean != labels_noisy).mean()
        assert 0.3 < flipped < 0.7  # ~half the labels move to another class

    def test_feature_shift_moves_features_deterministically(self):
        schedule = Schedule.of(
            Segment(100, concept=0),
            Segment(100, feature_shift=2.0, width=0),
        )
        shifted = ScheduledStream(rbf_factory(), schedule, seed=6)
        plain = ScheduledStream(
            rbf_factory(), Schedule.of(Segment(200, concept=0)), seed=6
        )
        shifted_x, shifted_y = shifted.generate_batch(200)
        plain_x, plain_y = plain.generate_batch(200)
        np.testing.assert_array_equal(shifted_y, plain_y)  # labels untouched
        np.testing.assert_array_equal(shifted_x[:100], plain_x[:100])
        delta = shifted_x[100:] - plain_x[100:]
        np.testing.assert_allclose(np.linalg.norm(delta, axis=1), 2.0)
        # All rows shift along the same fixed unit direction.
        directions = delta / np.linalg.norm(delta, axis=1, keepdims=True)
        assert np.abs(directions - directions[0]).max() < 1e-12

    def test_blip_reverts_to_base_concept(self):
        schedule = Schedule.of(
            Segment(100, concept=0),
            Segment(30, concept=1, blip=True),
            Segment(100, concept=0),
        )
        stream = ScheduledStream(rbf_factory(), schedule, seed=7)
        assert stream.drift_points == []
        kinds = [e.kind for e in stream.events]
        assert kinds == ["blip", "blip"]

    def test_profile_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="n_classes"):
            ScheduledStream(
                rbf_factory(n_classes=4),
                Schedule.of(Segment(10)),
                imbalance=StaticImbalance(3, 10.0),
            )

    def test_out_of_range_classes_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            ScheduledStream(
                rbf_factory(n_classes=4),
                Schedule.of(Segment(10, active_classes=(0, 9))),
            )

    def test_position_advances_across_paths(self):
        stream = self._stream()
        stream.generate_batch(17)
        stream.next_instance()
        assert stream.position == 18


class TestFiniteSourceExhaustion:
    """A finite source exhausting mid-batch must stay chunk-exact and terminal."""

    @staticmethod
    def _make():
        from repro.streams.base import Instance, ListStream

        def factory(concept):
            return ListStream(
                [Instance(x=np.full(2, 100.0 * concept + i), y=i % 2) for i in range(40)]
            )

        return ScheduledStream(
            factory, Schedule.of(Segment(30, concept=0), Segment(30, concept=1)), seed=0
        )

    @staticmethod
    def _make_with_noise_and_shift():
        from repro.streams.base import Instance, ListStream

        def factory(concept):
            return ListStream(
                [Instance(x=np.full(2, float(i)), y=i % 3) for i in range(60)]
            )

        return ScheduledStream(
            factory,
            Schedule.of(
                Segment(20, concept=0),
                Segment(40, label_noise=0.4, feature_shift=0.5, width=10),
            ),
            seed=1,
        )

    def test_truncated_batch_still_applies_noise_and_shift(self):
        # Regression: the exhaustion path used to return the emitted prefix
        # before the label-noise / feature-shift post-processing ran, so a
        # truncated batch diverged from per-instance iteration.
        instances = self._make_with_noise_and_shift().take(1000)
        inst_x = np.vstack([i.x for i in instances])
        inst_y = np.asarray([i.y for i in instances])
        batch_stream = self._make_with_noise_and_shift()
        chunks = []
        while True:
            features, labels = batch_stream.generate_batch(23)
            if labels.shape[0] == 0:
                break
            chunks.append((features, labels))
        batch_x = np.vstack([f for f, _ in chunks])
        batch_y = np.concatenate([y for _, y in chunks])
        assert batch_x.shape == inst_x.shape
        np.testing.assert_array_equal(batch_x, inst_x)
        np.testing.assert_array_equal(batch_y, inst_y)

    def test_batch_matches_instance_on_exhaustion(self):
        instances = self._make().take(1000)
        batch_stream = self._make()
        chunks = []
        while True:
            features, labels = batch_stream.generate_batch(7)
            if labels.shape[0] == 0:
                break
            chunks.append((features, labels))
        batch_x = np.vstack([f for f, _ in chunks])
        inst_x = np.vstack([i.x for i in instances])
        assert batch_x.shape == inst_x.shape
        np.testing.assert_array_equal(batch_x, inst_x)
        # Terminal for both paths afterwards.
        assert batch_stream.generate_batch(5)[1].shape[0] == 0
        assert batch_stream.take(5) == []
