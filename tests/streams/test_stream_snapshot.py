"""Snapshot/restore round-trips for streams, wrappers, and scenarios.

Streams are restore-in-place snapshotables: a snapshot loaded (after a
strict-JSON round-trip, exactly what a persisted checkpoint goes through)
into an *identically configured* instance must emit the bit-identical tail —
generator RNG bit-state, pending-uniform replay buffers, schedule cursors,
per-class sampler buffers and drift-wrapper carries included.  The scenario
sweep below covers every registered scenario family, hence every generator
and wrapper the protocol composes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jsonio import dumps_strict, loads_strict
from repro.core.snapshot import SnapshotError
from repro.streams.base import ListStream
from repro.streams.scenarios import (
    SCENARIO_BUILDERS,
    build_scenario_stream,
    make_artificial_stream,
)

N_INSTANCES = 900
HEAD = 413  # deliberately not a multiple of any chunk size in play
TAIL = 300


def _json_roundtrip(snapshot: dict) -> dict:
    return loads_strict(dumps_strict(snapshot))


def _checkpoint_tail(make_stream, head: int = HEAD, tail: int = TAIL):
    """(expected tail, snapshot at head) of one seeded stream realization."""
    stream = make_stream()
    stream.generate_batch(head)
    snapshot = _json_roundtrip(stream.snapshot())
    expected = stream.generate_batch(tail)
    return expected, snapshot


@pytest.mark.parametrize("scenario", sorted(SCENARIO_BUILDERS))
def test_scenario_stream_restores_identical_tail(scenario: int) -> None:
    def make():
        return build_scenario_stream(
            scenario,
            family="rbf",
            n_classes=3,
            n_instances=N_INSTANCES,
            n_drifts=2,
            max_imbalance_ratio=20.0,
            seed=11,
        ).stream

    (expected_x, expected_y), snapshot = _checkpoint_tail(make)

    fresh = make()
    fresh.restore(snapshot)
    assert fresh.position == HEAD
    got_x, got_y = fresh.generate_batch(TAIL)
    np.testing.assert_array_equal(got_x, expected_x)
    np.testing.assert_array_equal(got_y, expected_y)


@pytest.mark.parametrize("family", ["agrawal", "hyperplane", "rbf", "randomtree"])
def test_artificial_family_restores_identical_tail(family: str) -> None:
    def make():
        return make_artificial_stream(
            family, n_classes=3, n_instances=N_INSTANCES, seed=7
        ).stream

    (expected_x, expected_y), snapshot = _checkpoint_tail(make)
    fresh = make()
    fresh.restore(snapshot)
    got_x, got_y = fresh.generate_batch(TAIL)
    np.testing.assert_array_equal(got_x, expected_x)
    np.testing.assert_array_equal(got_y, expected_y)


def test_restore_rewinds_an_advanced_stream() -> None:
    """Restoring *backwards* into the same object must also be exact.

    This is the chunk-rollback direction: the stream has advanced past the
    checkpoint (stale per-concept samplers, drift carries, later schedule
    cursor) and must come all the way back.
    """

    def make():
        return build_scenario_stream(
            4,  # recurring drift: concepts revisit, samplers accumulate
            family="rbf",
            n_classes=3,
            n_instances=N_INSTANCES,
            n_drifts=2,
            max_imbalance_ratio=20.0,
            seed=23,
        ).stream

    (expected_x, expected_y), snapshot = _checkpoint_tail(make)
    advanced = make()
    advanced.generate_batch(HEAD + 350)  # well past the checkpoint
    advanced.restore(snapshot)
    got_x, got_y = advanced.generate_batch(TAIL)
    np.testing.assert_array_equal(got_x, expected_x)
    np.testing.assert_array_equal(got_y, expected_y)


def test_restore_is_chunking_invariant() -> None:
    """The restored tail is identical however the original was chunked."""

    def make():
        return make_artificial_stream(
            "hyperplane", n_classes=3, n_instances=N_INSTANCES, seed=5
        ).stream

    stream = make()
    for chunk in (64, 64, 64, 64, 64, 64, 29):  # 413 = HEAD, ragged end
        stream.generate_batch(chunk)
    snapshot = _json_roundtrip(stream.snapshot())
    expected_x, expected_y = stream.generate_batch(TAIL)

    fresh = make()
    fresh.restore(snapshot)
    parts = [fresh.generate_batch(100) for _ in range(3)]
    got_x = np.vstack([x for x, _ in parts])
    got_y = np.concatenate([y for _, y in parts])
    np.testing.assert_array_equal(got_x, expected_x)
    np.testing.assert_array_equal(got_y, expected_y)


def test_list_stream_cursor_roundtrip() -> None:
    rng = np.random.default_rng(0)
    from repro.streams.base import Instance

    instances = [
        Instance(x=rng.random(3), y=int(rng.integers(0, 2))) for _ in range(40)
    ]
    stream = ListStream(instances)
    stream.generate_batch(17)
    snapshot = _json_roundtrip(stream.snapshot())
    expected_x, expected_y = stream.generate_batch(10)

    fresh = ListStream(instances)
    fresh.restore(snapshot)
    got_x, got_y = fresh.generate_batch(10)
    np.testing.assert_array_equal(got_x, expected_x)
    np.testing.assert_array_equal(got_y, expected_y)


def test_streams_are_restore_in_place_only() -> None:
    from repro.core.snapshot import Snapshotable

    stream = make_artificial_stream(
        "rbf", n_classes=3, n_instances=N_INSTANCES, seed=1
    ).stream
    with pytest.raises(SnapshotError):
        Snapshotable.from_snapshot(stream.snapshot())
