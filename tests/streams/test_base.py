"""Unit tests for the stream abstractions in repro.streams.base."""

import numpy as np
import pytest

from repro.streams.base import (
    DataStream,
    Instance,
    ListStream,
    StreamSchema,
    stream_to_arrays,
    take,
)


class TestInstance:
    def test_casts_feature_vector_to_float64(self):
        instance = Instance(x=[1, 2, 3], y=1)
        assert instance.x.dtype == np.float64
        assert instance.n_features == 3

    def test_casts_label_to_int(self):
        instance = Instance(x=np.zeros(2), y=np.int64(2))
        assert isinstance(instance.y, int)
        assert instance.y == 2

    def test_default_weight_is_one(self):
        assert Instance(x=np.zeros(2), y=0).weight == 1.0

    def test_is_frozen(self):
        instance = Instance(x=np.zeros(2), y=0)
        with pytest.raises(AttributeError):
            instance.y = 1


class TestStreamSchema:
    def test_generates_default_names(self):
        schema = StreamSchema(n_features=2, n_classes=3)
        assert schema.feature_names == ("x0", "x1")
        assert schema.class_names == ("class_0", "class_1", "class_2")

    def test_rejects_non_positive_features(self):
        with pytest.raises(ValueError):
            StreamSchema(n_features=0, n_classes=2)

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            StreamSchema(n_features=2, n_classes=1)

    def test_rejects_mismatched_feature_names(self):
        with pytest.raises(ValueError):
            StreamSchema(n_features=2, n_classes=2, feature_names=("a",))

    def test_rejects_mismatched_class_names(self):
        with pytest.raises(ValueError):
            StreamSchema(n_features=2, n_classes=3, class_names=("a", "b"))


class _ConstantStream(DataStream):
    """Minimal concrete stream for exercising the base-class machinery."""

    def _generate(self) -> Instance:
        value = float(self._rng.random())
        return Instance(x=np.array([value, value]), y=self._position % 2)


class TestDataStream:
    def _make(self, seed=7):
        schema = StreamSchema(n_features=2, n_classes=2, name="const")
        return _ConstantStream(schema, seed=seed)

    def test_position_advances(self):
        stream = self._make()
        stream.take(5)
        assert stream.position == 5

    def test_restart_resets_position_and_rng(self):
        stream = self._make()
        first = [inst.x[0] for inst in stream.take(10)]
        stream.restart()
        second = [inst.x[0] for inst in stream.take(10)]
        assert first == second
        assert stream.position == 10

    def test_same_seed_same_sequence(self):
        a = [inst.x[0] for inst in self._make(seed=1).take(20)]
        b = [inst.x[0] for inst in self._make(seed=1).take(20)]
        assert a == b

    def test_different_seed_different_sequence(self):
        a = [inst.x[0] for inst in self._make(seed=1).take(20)]
        b = [inst.x[0] for inst in self._make(seed=2).take(20)]
        assert a != b

    def test_iteration_protocol(self):
        stream = self._make()
        collected = take(stream, 7)
        assert len(collected) == 7

    def test_schema_properties(self):
        stream = self._make()
        assert stream.n_features == 2
        assert stream.n_classes == 2
        assert stream.name == "const"


class TestListStream:
    def test_round_trips_instances(self, tiny_list_stream):
        first = tiny_list_stream.next_instance()
        assert isinstance(first, Instance)
        assert len(tiny_list_stream) == 60

    def test_raises_when_exhausted(self):
        stream = ListStream([Instance(x=np.zeros(2), y=0), Instance(x=np.ones(2), y=1)])
        stream.take(2)
        with pytest.raises(StopIteration):
            stream.next_instance()

    def test_for_loop_terminates_cleanly(self):
        # Regression: StopIteration escaping a generator-based __iter__ is a
        # RuntimeError under PEP 479; iteration must end cleanly instead.
        stream = ListStream(
            [Instance(x=np.full(2, float(i)), y=i % 2) for i in range(5)]
        )
        seen = [instance.y for instance in stream]
        assert seen == [0, 1, 0, 1, 0]

    def test_take_returns_remaining_on_exhaustion(self):
        stream = ListStream(
            [Instance(x=np.full(2, float(i)), y=i % 2) for i in range(3)]
        )
        collected = stream.take(10)
        assert len(collected) == 3
        assert stream.take(10) == []

    def test_generate_batch_truncates_at_end(self):
        stream = ListStream(
            [Instance(x=np.full(2, float(i)), y=i % 2) for i in range(7)]
        )
        features, labels = stream.generate_batch(5)
        assert features.shape == (5, 2)
        features, labels = stream.generate_batch(5)
        assert features.shape == (2, 2)
        np.testing.assert_array_equal(labels, [1, 0])
        features, labels = stream.generate_batch(5)
        assert features.shape == (0, 2)
        assert stream.position == 7

    def test_generate_batch_matches_instances(self):
        instances = [Instance(x=np.full(3, float(i)), y=i % 4) for i in range(20)]
        batch_stream = ListStream(instances)
        features, labels = batch_stream.generate_batch(20)
        expected_x, expected_y = stream_to_arrays(instances)
        np.testing.assert_array_equal(features, expected_x)
        np.testing.assert_array_equal(labels, expected_y)

    def test_restart_replays_from_beginning(self, tiny_list_stream):
        first_pass = [inst.y for inst in tiny_list_stream.take(10)]
        tiny_list_stream.restart()
        second_pass = [inst.y for inst in tiny_list_stream.take(10)]
        assert first_pass == second_pass

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            ListStream([])

    def test_infers_schema(self):
        instances = [Instance(x=np.zeros(5), y=3)]
        stream = ListStream(instances)
        assert stream.n_features == 5
        assert stream.n_classes == 4


class TestHelpers:
    def test_stream_to_arrays_shapes(self, tiny_list_stream):
        instances = tiny_list_stream.take(30)
        X, y = stream_to_arrays(instances)
        assert X.shape == (30, 4)
        assert y.shape == (30,)
        assert y.dtype == np.int64

    def test_stream_to_arrays_rejects_empty(self):
        with pytest.raises(ValueError):
            stream_to_arrays([])

    def test_take_respects_count(self, tiny_list_stream):
        assert len(take(tiny_list_stream, 15)) == 15
