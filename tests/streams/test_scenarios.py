"""Unit tests for the taxonomy scenario builders and artificial benchmarks."""

import numpy as np
import pytest

from repro.streams.scenarios import (
    ARTIFICIAL_FAMILIES,
    make_artificial_stream,
    make_generator,
    scenario_global_drift,
    scenario_local_drift,
    scenario_role_switching,
)


class TestMakeGenerator:
    @pytest.mark.parametrize("family", sorted(ARTIFICIAL_FAMILIES))
    def test_builds_each_family(self, family):
        stream = make_generator(family, n_classes=5, n_features=20, concept=0, seed=0)
        assert stream.n_classes == 5
        assert stream.n_features == 20
        assert hasattr(stream, "set_concept")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_generator("nope", 5, 20, 0, 0)


class TestMakeArtificialStream:
    def test_feature_count_scales_with_classes(self):
        scenario = make_artificial_stream("rbf", 5, n_instances=2000, seed=0)
        assert scenario.n_features == 20
        scenario10 = make_artificial_stream("rbf", 10, n_instances=2000, seed=0)
        assert scenario10.n_features == 40

    def test_drift_points_evenly_spaced(self):
        scenario = make_artificial_stream("rbf", 5, n_instances=8000, n_drifts=3, seed=0)
        assert scenario.drift_points == [2000, 4000, 6000]
        assert scenario.drifted_classes == [None, None, None]

    def test_stream_emits_requested_shape(self):
        scenario = make_artificial_stream(
            "hyperplane", 5, n_instances=1000, max_imbalance_ratio=10, seed=1
        )
        for instance in scenario.stream.take(100):
            assert instance.x.shape == (scenario.n_features,)
            assert 0 <= instance.y < scenario.n_classes

    def test_metadata_records_family_and_speed(self):
        scenario = make_artificial_stream("agrawal", 5, n_instances=1000, seed=0)
        assert scenario.metadata["family"] == "agrawal"
        assert scenario.metadata["drift_speed"] == "incremental"

    def test_imbalance_profile_attached(self):
        scenario = make_artificial_stream(
            "rbf", 5, n_instances=1000, max_imbalance_ratio=100, seed=0
        )
        assert scenario.profile is not None
        assert scenario.profile.imbalance_ratio(0) >= 1.0


class TestScenarioBuilders:
    def test_scenario1_marks_metadata(self):
        scenario = scenario_global_drift("rbf", 5, n_instances=2000, seed=0)
        assert scenario.metadata["scenario"] == 1
        assert scenario.name.startswith("scenario1-")

    def test_scenario2_uses_role_switching_profile(self):
        from repro.streams.imbalance import RoleSwitchingImbalance

        scenario = scenario_role_switching("rbf", 5, n_instances=2000, seed=0)
        assert isinstance(scenario.profile, RoleSwitchingImbalance)
        assert scenario.metadata["scenario"] == 2

    def test_scenario3_targets_smallest_classes(self):
        scenario = scenario_local_drift(
            "rbf", n_classes=5, n_drifted_classes=2, n_instances=2000, seed=0
        )
        assert scenario.drifted_classes == [[3, 4]]
        assert scenario.drift_points == [1000]
        assert scenario.metadata["n_drifted_classes"] == 2

    def test_scenario3_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            scenario_local_drift("rbf", n_classes=5, n_drifted_classes=0)
        with pytest.raises(ValueError):
            scenario_local_drift("rbf", n_classes=5, n_drifted_classes=6)

    def test_scenario3_static_profile_when_roles_fixed(self):
        from repro.streams.imbalance import StaticImbalance

        scenario = scenario_local_drift(
            "rbf", n_classes=5, n_drifted_classes=1, role_switching=False, seed=0
        )
        assert isinstance(scenario.profile, StaticImbalance)

    def test_scenarios_emit_valid_instances(self):
        for builder in (scenario_global_drift, scenario_role_switching):
            scenario = builder("randomtree", 5, n_instances=1500, seed=3)
            labels = [inst.y for inst in scenario.stream.take(300)]
            assert all(0 <= label < 5 for label in labels)
            assert np.isfinite(
                np.vstack([inst.x for inst in scenario.stream.take(50)])
            ).all()
