"""Unit tests for every synthetic stream generator."""

import numpy as np
import pytest

from repro.streams.generators import (
    AgrawalGenerator,
    HyperplaneGenerator,
    LEDGenerator,
    MixedGenerator,
    RandomRBFGenerator,
    RandomTreeGenerator,
    SEAGenerator,
    SineGenerator,
    StaggerGenerator,
    WaveformGenerator,
)

ALL_GENERATORS = [
    lambda seed: AgrawalGenerator(n_classes=5, n_features=20, seed=seed),
    lambda seed: HyperplaneGenerator(n_classes=5, n_features=10, seed=seed),
    lambda seed: RandomRBFGenerator(n_classes=4, n_features=8, seed=seed),
    lambda seed: RandomTreeGenerator(n_classes=4, n_features=6, seed=seed),
    lambda seed: SEAGenerator(n_classes=3, seed=seed),
    lambda seed: SineGenerator(n_classes=2, seed=seed),
    lambda seed: StaggerGenerator(seed=seed),
    lambda seed: LEDGenerator(seed=seed),
    lambda seed: WaveformGenerator(seed=seed),
    lambda seed: MixedGenerator(seed=seed),
]


@pytest.mark.parametrize("factory", ALL_GENERATORS)
class TestGeneratorContract:
    """Properties every generator must satisfy."""

    def test_feature_dimension_matches_schema(self, factory):
        stream = factory(0)
        for instance in stream.take(50):
            assert instance.x.shape == (stream.n_features,)

    def test_labels_within_schema(self, factory):
        stream = factory(0)
        labels = {inst.y for inst in stream.take(300)}
        assert min(labels) >= 0
        assert max(labels) < stream.n_classes

    def test_deterministic_for_fixed_seed(self, factory):
        a = factory(42)
        b = factory(42)
        for inst_a, inst_b in zip(a.take(40), b.take(40)):
            np.testing.assert_array_equal(inst_a.x, inst_b.x)
            assert inst_a.y == inst_b.y

    def test_restart_reproduces_sequence(self, factory):
        stream = factory(7)
        first = [(inst.x.copy(), inst.y) for inst in stream.take(30)]
        stream.restart()
        second = [(inst.x.copy(), inst.y) for inst in stream.take(30)]
        for (xa, ya), (xb, yb) in zip(first, second):
            np.testing.assert_array_equal(xa, xb)
            assert ya == yb

    def test_finite_values(self, factory):
        stream = factory(3)
        for instance in stream.take(100):
            assert np.all(np.isfinite(instance.x))


class TestAgrawal:
    def test_produces_all_classes_eventually(self):
        stream = AgrawalGenerator(n_classes=5, n_features=20, seed=1)
        labels = {inst.y for inst in stream.take(3000)}
        assert labels == set(range(5))

    def test_concept_switch_changes_labelling(self):
        base = AgrawalGenerator(n_classes=5, n_features=20, concept=0, seed=5)
        shifted = AgrawalGenerator(n_classes=5, n_features=20, concept=3, seed=5)
        base_labels = [inst.y for inst in base.take(500)]
        shifted_labels = [inst.y for inst in shifted.take(500)]
        assert base_labels != shifted_labels

    def test_invalid_concept_rejected(self):
        with pytest.raises(ValueError):
            AgrawalGenerator(concept=10)
        stream = AgrawalGenerator(seed=0)
        with pytest.raises(ValueError):
            stream.set_concept(-1)

    def test_invalid_perturbation_rejected(self):
        with pytest.raises(ValueError):
            AgrawalGenerator(perturbation=1.5)

    def test_respects_requested_dimensionality(self):
        stream = AgrawalGenerator(n_classes=5, n_features=37, seed=0)
        assert stream.next_instance().x.shape == (37,)


class TestHyperplane:
    def test_stationary_when_mag_change_zero(self):
        stream = HyperplaneGenerator(n_classes=3, n_features=5, mag_change=0.0, seed=2)
        weights_before = stream._weights.copy()
        stream.take(200)
        np.testing.assert_array_equal(weights_before, stream._weights)

    def test_weights_move_under_mag_change(self):
        stream = HyperplaneGenerator(n_classes=3, n_features=5, mag_change=0.01, seed=2)
        weights_before = stream._weights.copy()
        stream.take(200)
        assert not np.allclose(weights_before, stream._weights)

    def test_set_concept_rerandomises_weights(self):
        stream = HyperplaneGenerator(n_classes=3, n_features=5, seed=2)
        weights_before = stream._weights.copy()
        stream.set_concept(5)
        assert not np.allclose(weights_before, stream._weights)

    def test_noise_bounds_validated(self):
        with pytest.raises(ValueError):
            HyperplaneGenerator(noise=1.5)

    def test_features_in_unit_cube(self):
        stream = HyperplaneGenerator(n_classes=3, n_features=5, seed=0)
        for instance in stream.take(100):
            assert np.all(instance.x >= 0.0) and np.all(instance.x <= 1.0)


class TestRandomRBF:
    def test_every_class_has_a_centroid(self):
        stream = RandomRBFGenerator(n_classes=6, n_features=4, n_centroids=6, seed=1)
        labels = {inst.y for inst in stream.take(2000)}
        assert labels == set(range(6))

    def test_rejects_fewer_centroids_than_classes(self):
        with pytest.raises(ValueError):
            RandomRBFGenerator(n_classes=5, n_centroids=3)

    def test_set_concept_moves_centroids(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=4, seed=1)
        before = stream.centroids_of_class(0)
        stream.set_concept(9)
        after = stream.centroids_of_class(0)
        assert not all(
            np.allclose(b, a) for b, a in zip(before, after) if b.shape == a.shape
        ) or len(before) != len(after)

    def test_centroid_speed_moves_centroids(self):
        stream = RandomRBFGenerator(
            n_classes=3, n_features=4, centroid_speed=0.01, seed=1
        )
        before = [c.centre.copy() for c in stream._centroids]
        stream.take(300)
        after = [c.centre for c in stream._centroids]
        moved = sum(0 if np.allclose(b, a) else 1 for b, a in zip(before, after))
        assert moved > 0

    def test_features_clipped_to_unit_cube(self):
        stream = RandomRBFGenerator(n_classes=3, n_features=4, seed=5)
        for instance in stream.take(200):
            assert np.all(instance.x >= 0.0) and np.all(instance.x <= 1.0)


class TestRandomTree:
    def test_all_classes_reachable(self):
        stream = RandomTreeGenerator(n_classes=5, n_features=6, max_depth=7, seed=2)
        labels = {inst.y for inst in stream.take(4000)}
        assert labels == set(range(5))

    def test_deterministic_labelling_given_features(self):
        stream = RandomTreeGenerator(n_classes=3, n_features=4, noise=0.0, seed=1)
        x = np.array([0.2, 0.6, 0.4, 0.9])
        assert stream._classify(x) == stream._classify(x)

    def test_set_concept_changes_boundaries(self):
        stream = RandomTreeGenerator(n_classes=4, n_features=5, noise=0.0, seed=3)
        points = np.random.default_rng(0).random((300, 5))
        before = [stream._classify(p) for p in points]
        stream.set_concept(8)
        after = [stream._classify(p) for p in points]
        assert before != after

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            RandomTreeGenerator(max_depth=0)


class TestSEA:
    def test_two_class_default_boundary(self):
        stream = SEAGenerator(n_classes=2, concept=0, noise=0.0, seed=1)
        for instance in stream.take(300):
            expected = int(instance.x[0] + instance.x[1] > 10.0)
            assert instance.y == expected

    def test_concept_changes_threshold(self):
        a = SEAGenerator(n_classes=2, concept=0, noise=0.0, seed=9)
        b = SEAGenerator(n_classes=2, concept=3, noise=0.0, seed=9)
        labels_a = [inst.y for inst in a.take(400)]
        labels_b = [inst.y for inst in b.take(400)]
        assert labels_a != labels_b

    def test_invalid_concept(self):
        with pytest.raises(ValueError):
            SEAGenerator(concept=4)

    def test_requires_two_features(self):
        with pytest.raises(ValueError):
            SEAGenerator(n_features=1)


class TestSine:
    def test_reversed_concept_flips_labels(self):
        normal = SineGenerator(n_classes=2, concept=0, seed=4)
        reversed_ = SineGenerator(n_classes=2, concept=2, seed=4)
        labels_normal = [inst.y for inst in normal.take(300)]
        labels_reversed = [inst.y for inst in reversed_.take(300)]
        assert all(a != b for a, b in zip(labels_normal, labels_reversed))

    def test_invalid_concept(self):
        with pytest.raises(ValueError):
            SineGenerator(concept=4)


class TestStagger:
    def test_binary_concept_zero(self):
        stream = StaggerGenerator(concept=0, seed=1)
        for instance in stream.take(200):
            is_small = instance.x[0] == 1.0
            is_red = instance.x[3] == 1.0
            assert instance.y == int(is_small and is_red)

    def test_multi_class_counts_predicates(self):
        stream = StaggerGenerator(multi_class=True, seed=1)
        labels = {inst.y for inst in stream.take(500)}
        assert labels <= {0, 1, 2, 3}
        assert len(labels) >= 3

    def test_one_hot_structure(self):
        stream = StaggerGenerator(seed=0)
        instance = stream.next_instance()
        assert instance.x[:3].sum() == 1.0
        assert instance.x[3:6].sum() == 1.0
        assert instance.x[6:].sum() == 1.0


class TestLED:
    def test_noiseless_segments_match_digit(self):
        stream = LEDGenerator(noise_percentage=0.0, n_irrelevant=0, seed=1)
        from repro.streams.generators.led import _SEGMENTS

        for instance in stream.take(100):
            np.testing.assert_array_equal(instance.x[:7], _SEGMENTS[instance.y])

    def test_drift_attributes_permute_features(self):
        stable = LEDGenerator(noise_percentage=0.0, n_irrelevant=5, seed=2)
        drifted = LEDGenerator(
            noise_percentage=0.0, n_irrelevant=5, n_drift_attributes=6, seed=2
        )
        x_stable = [inst.x for inst in stable.take(50)]
        x_drifted = [inst.x for inst in drifted.take(50)]
        assert any(not np.allclose(a, b) for a, b in zip(x_stable, x_drifted))

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            LEDGenerator(noise_percentage=2.0)

    def test_ten_classes(self):
        stream = LEDGenerator(seed=0)
        labels = {inst.y for inst in stream.take(500)}
        assert labels == set(range(10))


class TestWaveform:
    def test_dimensionality_with_and_without_noise(self):
        assert WaveformGenerator(seed=0).next_instance().x.shape == (21,)
        assert WaveformGenerator(add_noise_features=True, seed=0).next_instance().x.shape == (40,)

    def test_three_classes(self):
        stream = WaveformGenerator(seed=1)
        labels = {inst.y for inst in stream.take(300)}
        assert labels == {0, 1, 2}


class TestMixed:
    def test_concept_one_reverses_labels(self):
        a = MixedGenerator(concept=0, seed=3)
        b = MixedGenerator(concept=1, seed=3)
        for inst_a, inst_b in zip(a.take(200), b.take(200)):
            assert inst_a.y == 1 - inst_b.y

    def test_invalid_concept(self):
        with pytest.raises(ValueError):
            MixedGenerator(concept=2)
