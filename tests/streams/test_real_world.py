"""Unit tests for the Table I real-world surrogate streams."""

import pytest

from repro.streams.real_world import (
    REAL_WORLD_SPECS,
    real_world_names,
    real_world_stream,
)


class TestSpecs:
    def test_twelve_datasets(self):
        assert len(REAL_WORLD_SPECS) == 12
        assert len(real_world_names()) == 12

    def test_table_i_values_present(self):
        by_name = {spec.name: spec for spec in REAL_WORLD_SPECS}
        assert by_name["Covertype"].classes == 7
        assert by_name["Covertype"].features == 54
        assert by_name["IntelSensors"].classes == 57
        assert by_name["IntelSensors"].imbalance_ratio == pytest.approx(348.26)
        assert by_name["Electricity"].drift == "yes"
        assert by_name["Connect4"].drift == "unknown"

    def test_imbalance_ratios_positive(self):
        assert all(spec.imbalance_ratio > 1.0 for spec in REAL_WORLD_SPECS)


class TestSurrogateStreams:
    @pytest.mark.parametrize("name", ["EEG", "Electricity", "Connect4", "Gas"])
    def test_schema_matches_spec(self, name):
        scenario = real_world_stream(name, n_instances=500, seed=0)
        spec = next(s for s in REAL_WORLD_SPECS if s.name == name)
        assert scenario.n_classes == spec.classes
        assert scenario.n_features == spec.features

    def test_case_insensitive_lookup(self):
        scenario = real_world_stream("covertype", n_instances=300, seed=0)
        assert scenario.name == "Covertype"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            real_world_stream("not-a-dataset")

    def test_default_length_capped(self):
        scenario = real_world_stream("Poker", max_instances=5_000, seed=0)
        assert scenario.n_instances == 5_000

    def test_short_dataset_keeps_own_length(self):
        scenario = real_world_stream("Gas", max_instances=50_000, seed=0)
        assert scenario.n_instances == 13_910

    def test_drifting_dataset_has_drift_points(self):
        scenario = real_world_stream("Electricity", n_instances=4_000, seed=0)
        assert len(scenario.drift_points) == 3
        assert all(0 < p < 4_000 for p in scenario.drift_points)

    def test_stationary_dataset_has_no_drift_points(self):
        scenario = real_world_stream("Connect4", n_instances=4_000, seed=0)
        assert scenario.drift_points == []

    def test_instances_respect_schema(self):
        scenario = real_world_stream("Olympic", n_instances=1_000, seed=1)
        for instance in scenario.stream.take(200):
            assert instance.x.shape == (scenario.n_features,)
            assert 0 <= instance.y < scenario.n_classes

    def test_deterministic_given_seed(self):
        a = real_world_stream("DJ30", n_instances=500, seed=9)
        b = real_world_stream("DJ30", n_instances=500, seed=9)
        labels_a = [inst.y for inst in a.stream.take(200)]
        labels_b = [inst.y for inst in b.stream.take(200)]
        assert labels_a == labels_b

    def test_surrogate_flag_in_metadata(self):
        scenario = real_world_stream("Crimes", n_instances=500, seed=0)
        assert scenario.metadata["surrogate"] is True
