"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.base import Instance, ListStream, StreamSchema
from repro.streams.generators import RandomRBFGenerator


def make_error_stream(
    n_before: int,
    n_after: int,
    p_before: float,
    p_after: float,
    seed: int = 0,
) -> np.ndarray:
    """Bernoulli error stream whose error rate changes after ``n_before``."""
    rng = np.random.default_rng(seed)
    before = (rng.random(n_before) < p_before).astype(float)
    after = (rng.random(n_after) < p_after).astype(float)
    return np.concatenate([before, after])


def feed_errors(detector, errors) -> list[int]:
    """Feed a 0/1 error sequence through a detector, returning alarm positions."""
    alarms = []
    x = np.zeros(1)
    for index, error in enumerate(errors):
        y_pred = 0
        y_true = 1 if error > 0.5 else 0
        if detector.step(x, y_true, y_pred):
            alarms.append(index)
    return alarms


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_schema() -> StreamSchema:
    return StreamSchema(n_features=3, n_classes=3, name="small")


@pytest.fixture
def tiny_list_stream() -> ListStream:
    rng = np.random.default_rng(0)
    instances = [
        Instance(x=rng.random(4), y=int(rng.integers(3))) for _ in range(60)
    ]
    return ListStream(instances, name="tiny")


@pytest.fixture
def rbf_stream() -> RandomRBFGenerator:
    return RandomRBFGenerator(n_classes=4, n_features=8, n_centroids=12, seed=3)


@pytest.fixture
def labelled_batch(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small separable batch: class means at distinct corners of [0,1]^d."""
    n_per_class, n_features, n_classes = 40, 6, 3
    centres = np.array(
        [
            [0.2] * n_features,
            [0.8] * n_features,
            [0.2, 0.8] * (n_features // 2),
        ]
    )
    rows, labels = [], []
    for label, centre in enumerate(centres[:n_classes]):
        rows.append(centre + rng.normal(0.0, 0.05, size=(n_per_class, n_features)))
        labels.extend([label] * n_per_class)
    X = np.clip(np.vstack(rows), 0.0, 1.0)
    y = np.asarray(labels)
    order = rng.permutation(len(y))
    return X[order], y[order]
