"""Unit tests for the streaming confusion matrix."""

import numpy as np
import pytest

from repro.metrics.confusion import StreamingConfusionMatrix


class TestStreamingConfusionMatrix:
    def test_counts_accumulate(self):
        cm = StreamingConfusionMatrix(3)
        cm.update(0, 0)
        cm.update(0, 1)
        cm.update(2, 2)
        assert cm.total == 3
        assert cm.matrix[0, 1] == 1.0

    def test_accuracy(self):
        cm = StreamingConfusionMatrix(2)
        for pair in [(0, 0), (1, 1), (1, 0), (0, 0)]:
            cm.update(*pair)
        assert cm.accuracy() == pytest.approx(0.75)

    def test_recall_per_class(self):
        cm = StreamingConfusionMatrix(3)
        for pair in [(0, 0), (0, 0), (0, 1), (1, 1), (1, 0)]:
            cm.update(*pair)
        recall = cm.recall_per_class()
        assert recall[0] == pytest.approx(2.0 / 3.0)
        assert recall[1] == pytest.approx(0.5)
        assert np.isnan(recall[2])

    def test_precision_per_class(self):
        cm = StreamingConfusionMatrix(2)
        for pair in [(0, 0), (1, 0), (1, 1)]:
            cm.update(*pair)
        precision = cm.precision_per_class()
        assert precision[0] == pytest.approx(0.5)
        assert precision[1] == pytest.approx(1.0)

    def test_geometric_mean_ignores_unseen_classes(self):
        cm = StreamingConfusionMatrix(3)
        for pair in [(0, 0), (1, 1)]:
            cm.update(*pair)
        assert cm.geometric_mean() == pytest.approx(1.0)

    def test_geometric_mean_zero_if_class_fully_missed(self):
        cm = StreamingConfusionMatrix(2)
        for pair in [(0, 0), (1, 0), (1, 0)]:
            cm.update(*pair)
        assert cm.geometric_mean() == 0.0

    def test_geometric_mean_matches_manual_computation(self):
        cm = StreamingConfusionMatrix(2)
        # class 0: recall 0.8 (4/5); class 1: recall 0.5 (1/2)
        for _ in range(4):
            cm.update(0, 0)
        cm.update(0, 1)
        cm.update(1, 1)
        cm.update(1, 0)
        assert cm.geometric_mean() == pytest.approx(np.sqrt(0.8 * 0.5))

    def test_kappa_zero_for_random_agreement(self):
        cm = StreamingConfusionMatrix(2)
        rng = np.random.default_rng(0)
        for _ in range(4000):
            cm.update(int(rng.integers(2)), int(rng.integers(2)))
        assert abs(cm.kappa()) < 0.07

    def test_kappa_one_for_perfect_agreement(self):
        cm = StreamingConfusionMatrix(3)
        for label in [0, 1, 2, 0, 1, 2]:
            cm.update(label, label)
        assert cm.kappa() == pytest.approx(1.0)

    def test_sliding_window_forgets_old_predictions(self):
        cm = StreamingConfusionMatrix(2, window_size=10)
        for _ in range(10):
            cm.update(0, 1)  # all wrong
        for _ in range(10):
            cm.update(0, 0)  # all right; the wrong ones fall out
        assert cm.accuracy() == pytest.approx(1.0)
        assert cm.total == 10
        assert cm.n_seen == 20

    def test_imbalance_ratio(self):
        cm = StreamingConfusionMatrix(2)
        for _ in range(90):
            cm.update(0, 0)
        for _ in range(10):
            cm.update(1, 1)
        assert cm.imbalance_ratio() == pytest.approx(9.0)

    def test_reset(self):
        cm = StreamingConfusionMatrix(2, window_size=5)
        cm.update(0, 0)
        cm.reset()
        assert cm.total == 0
        assert cm.accuracy() == 0.0

    def test_label_validation(self):
        cm = StreamingConfusionMatrix(2)
        with pytest.raises(ValueError):
            cm.update(2, 0)
        with pytest.raises(ValueError):
            cm.update(0, -1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingConfusionMatrix(1)
        with pytest.raises(ValueError):
            StreamingConfusionMatrix(3, window_size=0)
