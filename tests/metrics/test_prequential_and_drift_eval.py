"""Unit tests for the prequential evaluator and drift-detection scoring."""

import numpy as np
import pytest

from repro.metrics.drift_eval import evaluate_detections
from repro.metrics.prequential import PrequentialEvaluator


class TestPrequentialEvaluator:
    def _feed_perfect(self, evaluator, n, n_classes=3, seed=0):
        rng = np.random.default_rng(seed)
        for _ in range(n):
            label = int(rng.integers(n_classes))
            scores = np.full(n_classes, 0.05)
            scores[label] = 1.0 - 0.05 * (n_classes - 1)
            evaluator.update(scores, label, label)

    def test_perfect_predictions_score_high(self):
        evaluator = PrequentialEvaluator(n_classes=3, window_size=200)
        self._feed_perfect(evaluator, 500)
        assert evaluator.pmauc() > 0.95
        assert evaluator.pmgm() > 0.95
        assert evaluator.accuracy() == pytest.approx(1.0)
        assert evaluator.kappa() == pytest.approx(1.0)

    def test_snapshots_recorded_at_interval(self):
        evaluator = PrequentialEvaluator(
            n_classes=2, window_size=100, snapshot_every=50
        )
        self._feed_perfect(evaluator, 230, n_classes=2)
        assert len(evaluator.snapshots) == 4
        assert [snap.position for snap in evaluator.snapshots] == [50, 100, 150, 200]

    def test_mean_metrics_average_snapshots(self):
        evaluator = PrequentialEvaluator(
            n_classes=2, window_size=100, snapshot_every=100
        )
        self._feed_perfect(evaluator, 400, n_classes=2)
        values = [snap.pmauc for snap in evaluator.snapshots]
        assert evaluator.mean_pmauc() == pytest.approx(np.mean(values))

    def test_mean_metrics_fall_back_to_current_value(self):
        evaluator = PrequentialEvaluator(n_classes=2, snapshot_every=10_000)
        self._feed_perfect(evaluator, 50, n_classes=2)
        assert evaluator.mean_pmauc() == pytest.approx(evaluator.pmauc())

    def test_reset(self):
        evaluator = PrequentialEvaluator(n_classes=2)
        self._feed_perfect(evaluator, 100, n_classes=2)
        evaluator.reset()
        assert evaluator.n_seen == 0
        assert evaluator.snapshots == []


class TestEvaluateDetections:
    def test_perfect_detection(self):
        report = evaluate_detections([1000, 2000], [1010, 2050], tolerance=500)
        assert report.n_detected == 2
        assert report.detection_recall == 1.0
        assert report.n_false_alarms == 0
        assert report.mean_delay == pytest.approx(30.0)

    def test_missed_drift(self):
        report = evaluate_detections([1000, 2000], [1010], tolerance=500)
        assert report.n_detected == 1
        assert report.detection_recall == 0.5

    def test_false_alarms_counted(self):
        report = evaluate_detections([1000], [200, 500, 1020], tolerance=300)
        assert report.n_false_alarms == 2
        assert report.n_detected == 1

    def test_alarm_before_drift_does_not_count(self):
        report = evaluate_detections([1000], [950], tolerance=500)
        assert report.n_detected == 0
        assert report.n_false_alarms == 1

    def test_no_true_drifts_recall_is_one(self):
        report = evaluate_detections([], [100, 200], tolerance=100)
        assert report.detection_recall == 1.0
        assert report.n_false_alarms == 2

    def test_no_detections_mean_delay_nan(self):
        report = evaluate_detections([100], [], tolerance=100)
        assert np.isnan(report.mean_delay)
        assert report.detection_recall == 0.0

    def test_multiple_alarms_in_window_count_once(self):
        report = evaluate_detections([1000], [1010, 1020, 1100], tolerance=500)
        assert report.n_detected == 1
        assert report.n_detections == 3
        assert report.n_false_alarms == 0
        assert report.mean_delay == pytest.approx(10.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            evaluate_detections([10], [10], tolerance=-1)
