"""Unit tests for prequential multi-class AUC and G-mean."""

import numpy as np
import pytest

from repro.metrics.gmean import PrequentialGMean
from repro.metrics.pmauc import PrequentialMultiClassAUC, auc_from_scores


class TestAUCFromScores:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        positives = np.array([True, True, False, False])
        assert auc_from_scores(scores, positives) == pytest.approx(1.0)

    def test_inverted_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        positives = np.array([True, True, False, False])
        assert auc_from_scores(scores, positives) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        positives = rng.random(4000) < 0.3
        assert auc_from_scores(scores, positives) == pytest.approx(0.5, abs=0.03)

    def test_ties_get_half_credit(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        positives = np.array([True, True, False, False])
        assert auc_from_scores(scores, positives) == pytest.approx(0.5)

    def test_single_class_returns_nan(self):
        assert np.isnan(auc_from_scores(np.array([0.1, 0.2]), np.array([True, True])))

    def test_matches_sklearn_style_pair_counting(self):
        rng = np.random.default_rng(1)
        scores = rng.random(200)
        positives = rng.random(200) < 0.4
        # Brute-force pair counting definition of AUC.
        pos = scores[positives]
        neg = scores[~positives]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert auc_from_scores(scores, positives) == pytest.approx(expected)


class TestPrequentialMultiClassAUC:
    def test_empty_window_returns_half(self):
        metric = PrequentialMultiClassAUC(3)
        assert metric.value() == 0.5

    def test_perfect_classifier_approaches_one(self):
        metric = PrequentialMultiClassAUC(3, window_size=200)
        rng = np.random.default_rng(0)
        for _ in range(300):
            label = int(rng.integers(3))
            scores = np.full(3, 0.1)
            scores[label] = 0.8
            metric.update(scores, label)
        assert metric.value() > 0.95

    def test_random_classifier_near_half(self):
        metric = PrequentialMultiClassAUC(4, window_size=500)
        rng = np.random.default_rng(1)
        for _ in range(800):
            scores = rng.random(4)
            scores /= scores.sum()
            metric.update(scores, int(rng.integers(4)))
        assert metric.value() == pytest.approx(0.5, abs=0.06)

    def test_window_forgets_old_behaviour(self):
        metric = PrequentialMultiClassAUC(2, window_size=100)
        rng = np.random.default_rng(2)
        # First: anti-correlated scores (bad). Then: perfect scores.
        for _ in range(100):
            label = int(rng.integers(2))
            scores = np.array([0.9, 0.1]) if label == 1 else np.array([0.1, 0.9])
            metric.update(scores, label)
        for _ in range(100):
            label = int(rng.integers(2))
            scores = np.array([0.1, 0.9]) if label == 1 else np.array([0.9, 0.1])
            metric.update(scores, label)
        assert metric.value() > 0.9

    def test_skew_insensitivity_versus_accuracy(self):
        """A majority-class scorer gets high accuracy but pmAUC stays at 0.5."""
        metric = PrequentialMultiClassAUC(2, window_size=1000)
        rng = np.random.default_rng(3)
        for _ in range(1000):
            label = 0 if rng.random() < 0.95 else 1
            metric.update(np.array([1.0, 0.0]), label)
        assert metric.value() == pytest.approx(0.5, abs=0.05)

    def test_input_validation(self):
        metric = PrequentialMultiClassAUC(3)
        with pytest.raises(ValueError):
            metric.update(np.array([0.5, 0.5]), 0)
        with pytest.raises(ValueError):
            metric.update(np.array([0.3, 0.3, 0.4]), 3)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PrequentialMultiClassAUC(1)
        with pytest.raises(ValueError):
            PrequentialMultiClassAUC(3, window_size=5)

    def test_reset(self):
        metric = PrequentialMultiClassAUC(2)
        metric.update(np.array([0.9, 0.1]), 0)
        metric.reset()
        assert metric.value() == 0.5


class TestPrequentialGMean:
    def test_perfect_predictions_give_one(self):
        metric = PrequentialGMean(3, window_size=100)
        for label in [0, 1, 2] * 30:
            metric.update(label, label)
        assert metric.value() == pytest.approx(1.0)

    def test_missing_minority_class_gives_zero(self):
        metric = PrequentialGMean(2, window_size=200)
        rng = np.random.default_rng(0)
        for _ in range(200):
            label = 0 if rng.random() < 0.9 else 1
            metric.update(label, 0)  # always predict majority
        assert metric.value() == 0.0

    def test_value_matches_manual_gmean(self):
        metric = PrequentialGMean(2, window_size=100)
        # class 0 recall 1.0 (10/10), class 1 recall 0.5 (5/10)
        for _ in range(10):
            metric.update(0, 0)
        for i in range(10):
            metric.update(1, 1 if i < 5 else 0)
        assert metric.value() == pytest.approx(np.sqrt(1.0 * 0.5))

    def test_recall_per_class_exposed(self):
        metric = PrequentialGMean(2)
        metric.update(0, 0)
        metric.update(1, 0)
        recall = metric.recall_per_class()
        assert recall[0] == pytest.approx(1.0)
        assert recall[1] == pytest.approx(0.0)

    def test_reset(self):
        metric = PrequentialGMean(2)
        metric.update(0, 0)
        metric.reset()
        assert metric.value() == 0.0
