"""Unit and behavioural tests for the RBM-IM drift detector."""

import numpy as np
import pytest

from repro.core.detector import RBMIM, RBMIMConfig
from repro.streams.drift import LocalDriftStream
from repro.streams.generators import RandomRBFGenerator


def feed_stream(detector, stream, n):
    """Push ``n`` instances through the detector, returning alarm positions."""
    alarms = []
    for index in range(n):
        instance = stream.next_instance()
        if detector.step(instance.x, instance.y, instance.y):
            alarms.append(index)
    return alarms


def make_detector(n_features, n_classes, **overrides):
    defaults = dict(batch_size=25, seed=3, warm_start_epochs=5)
    defaults.update(overrides)
    return RBMIM(n_features, n_classes, RBMIMConfig(**defaults))


class TestRBMIMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RBMIMConfig(batch_size=1)
        with pytest.raises(ValueError):
            RBMIMConfig(hidden_ratio=0.0)
        with pytest.raises(ValueError):
            RBMIMConfig(granger_segment=2)
        with pytest.raises(ValueError):
            RBMIMConfig(min_class_history=1)
        with pytest.raises(ValueError):
            RBMIMConfig(sensitivity=0.0)

    def test_defaults_follow_paper_grid(self):
        config = RBMIMConfig()
        assert 25 <= config.batch_size <= 100
        assert 0.25 <= config.hidden_ratio <= 1.0
        assert 0.01 <= config.learning_rate <= 0.07
        assert 1 <= config.cd_steps <= 4


class TestRBMIMMechanics:
    def test_buffering_until_batch_complete(self):
        detector = make_detector(6, 3, batch_size=10)
        x = np.random.default_rng(0).random(6)
        for _ in range(9):
            detector.step(x, 0, 0)
        assert detector.batches_processed == 0
        detector.step(x, 1, 1)
        assert detector.batches_processed == 1

    def test_first_batch_warm_starts_rbm(self):
        detector = make_detector(6, 3, batch_size=10)
        rng = np.random.default_rng(1)
        for _ in range(10):
            detector.step(rng.random(6), int(rng.integers(3)), 0)
        assert detector.rbm.n_batches_trained >= 1

    def test_explicit_warm_start(self, labelled_batch):
        X, y = labelled_batch
        detector = make_detector(X.shape[1], 3)
        detector.warm_start(X, y)
        assert detector.rbm.n_batches_trained == 5

    def test_input_validation(self):
        detector = make_detector(4, 3)
        with pytest.raises(ValueError):
            detector.add_instance(np.zeros(3), 0)
        with pytest.raises(ValueError):
            detector.add_instance(np.zeros(4), 5)

    def test_flush_processes_partial_batch(self, labelled_batch):
        X, y = labelled_batch
        detector = make_detector(X.shape[1], 3, batch_size=50)
        detector.warm_start(X, y)
        for row, label in zip(X[:10], y[:10]):
            detector.add_instance(row, int(label))
        before = detector.batches_processed
        detector.flush()
        assert detector.batches_processed == before + 1

    def test_reset_clears_monitors(self, labelled_batch):
        X, y = labelled_batch
        detector = make_detector(X.shape[1], 3, batch_size=10)
        for row, label in zip(X, y):
            detector.step(row, int(label), int(label))
        detector.reset()
        assert detector.batches_processed == 0
        assert np.all(np.isnan(detector.last_per_class_errors))

    def test_per_class_errors_exposed(self, labelled_batch):
        X, y = labelled_batch
        detector = make_detector(X.shape[1], 3, batch_size=20)
        detector.warm_start(X, y)
        for row, label in zip(X, y):
            detector.step(row, int(label), int(label))
        errors = detector.last_per_class_errors
        assert errors.shape == (3,)
        assert np.isfinite(errors[np.unique(y)]).all()

    def test_class_trend_accessor(self, labelled_batch):
        X, y = labelled_batch
        detector = make_detector(X.shape[1], 3, batch_size=20)
        detector.warm_start(X, y)
        for row, label in zip(np.tile(X, (3, 1)), np.tile(y, 3)):
            detector.step(row, int(label), int(label))
        assert len(detector.class_trend(int(y[0]))) > 0


class TestRBMIMDriftDetection:
    def _stationary_stream(self, seed=0):
        return RandomRBFGenerator(
            n_classes=4, n_features=8, n_centroids=12, concept=0, seed=seed
        )

    def test_quiet_on_stationary_stream(self):
        stream = self._stationary_stream()
        detector = make_detector(8, 4, batch_size=25)
        alarms = feed_stream(detector, stream, 4000)
        assert len(alarms) <= 3

    def test_detects_global_sudden_drift(self):
        stream = self._stationary_stream(seed=1)
        detector = make_detector(8, 4, batch_size=25)
        feed_stream(detector, stream, 3000)
        stream.set_concept(7)  # sudden real drift on every class
        alarms = feed_stream(detector, stream, 1500)
        assert alarms, "RBM-IM missed a global sudden drift"
        assert alarms[0] < 1000

    def test_detects_local_drift_and_blames_class(self):
        def factory(concept):
            return RandomRBFGenerator(
                n_classes=4, n_features=8, n_centroids=12, concept=concept, seed=5
            )

        stream = LocalDriftStream(
            generator_factory=factory,
            old_concept=0,
            new_concept=6,
            drifted_classes=[2],
            position=3000,
            seed=9,
        )
        detector = make_detector(8, 4, batch_size=25)
        blamed: set[int] = set()
        alarms = []
        for index in range(6000):
            instance = stream.next_instance()
            if detector.step(instance.x, instance.y, instance.y):
                alarms.append(index)
                blamed |= detector.drifted_classes or set()
        post = [a for a in alarms if a >= 3000]
        assert post, "RBM-IM missed the local drift"
        assert 2 in blamed

    def test_ablation_without_granger_still_detects(self):
        stream = self._stationary_stream(seed=2)
        detector = make_detector(8, 4, batch_size=25, use_granger=False)
        feed_stream(detector, stream, 3000)
        stream.set_concept(3)
        alarms = feed_stream(detector, stream, 1500)
        assert alarms

    def test_skew_insensitive_loss_can_be_disabled(self):
        detector = make_detector(8, 4, balance_beta=0.0)
        assert detector.rbm.config.balance_beta == 0.0

    def test_detector_adapts_after_drift(self):
        """After detecting a drift the RBM keeps training and goes quiet again."""
        stream = self._stationary_stream(seed=4)
        detector = make_detector(8, 4, batch_size=25)
        feed_stream(detector, stream, 3000)
        stream.set_concept(9)
        feed_stream(detector, stream, 2000)  # detection + adaptation period
        late_alarms = feed_stream(detector, stream, 2500)
        assert len(late_alarms) <= 2
