"""Unit tests for per-class reconstruction error and the trend tracker."""

import numpy as np
import pytest

from repro.core.rbm import RBMConfig, SkewInsensitiveRBM
from repro.core.reconstruction import (
    instance_reconstruction_errors,
    per_class_reconstruction_error,
)
from repro.core.trend import TrendTracker


def trained_rbm(X, y, n_classes=3, epochs=100):
    rbm = SkewInsensitiveRBM(
        RBMConfig(
            n_visible=X.shape[1],
            n_hidden=8,
            n_classes=n_classes,
            learning_rate=0.2,
            seed=1,
        )
    )
    for _ in range(epochs):
        rbm.partial_fit(X, y)
    return rbm


class TestReconstructionError:
    def test_errors_non_negative_and_finite(self, labelled_batch):
        X, y = labelled_batch
        rbm = trained_rbm(X, y, epochs=10)
        errors = instance_reconstruction_errors(rbm, X, y)
        assert errors.shape == (X.shape[0],)
        assert np.all(errors >= 0.0)
        assert np.all(np.isfinite(errors))

    def test_training_reduces_reconstruction_error(self, labelled_batch):
        X, y = labelled_batch
        fresh = trained_rbm(X, y, epochs=1)
        trained = trained_rbm(X, y, epochs=150)
        assert (
            instance_reconstruction_errors(trained, X, y).mean()
            < instance_reconstruction_errors(fresh, X, y).mean()
        )

    def test_unseen_distribution_has_higher_error(self, labelled_batch, rng):
        X, y = labelled_batch
        rbm = trained_rbm(X, y, epochs=150)
        familiar = instance_reconstruction_errors(rbm, X, y).mean()
        shifted = np.clip(1.0 - X, 0.0, 1.0)  # mirror of the training data
        novel = instance_reconstruction_errors(rbm, shifted, y).mean()
        assert novel > familiar

    def test_per_class_average_matches_manual(self, labelled_batch):
        X, y = labelled_batch
        rbm = trained_rbm(X, y, epochs=20)
        per_class, counts = per_class_reconstruction_error(rbm, X, y, 3)
        errors = instance_reconstruction_errors(rbm, X, y)
        for label in range(3):
            mask = y == label
            assert counts[label] == mask.sum()
            assert per_class[label] == pytest.approx(errors[mask].mean())

    def test_absent_class_reported_as_nan(self, labelled_batch):
        X, y = labelled_batch
        rbm = trained_rbm(X, y, epochs=5)
        mask = y != 2
        per_class, counts = per_class_reconstruction_error(rbm, X[mask], y[mask], 3)
        assert np.isnan(per_class[2])
        assert counts[2] == 0


class TestTrendTracker:
    def test_positive_slope_for_increasing_series(self):
        tracker = TrendTracker()
        slope = 0.0
        for value in np.linspace(0.0, 10.0, 50):
            slope = tracker.update(float(value))
        assert slope > 0.0

    def test_negative_slope_for_decreasing_series(self):
        tracker = TrendTracker()
        slope = 0.0
        for value in np.linspace(10.0, 0.0, 50):
            slope = tracker.update(float(value))
        assert slope < 0.0

    def test_near_zero_slope_for_constant_series(self):
        tracker = TrendTracker()
        slope = 0.0
        for _ in range(50):
            slope = tracker.update(5.0)
        assert slope == pytest.approx(0.0, abs=1e-9)

    def test_known_slope_recovered(self):
        tracker = TrendTracker(max_window=20, min_window=20)
        slope = 0.0
        for t in range(20):
            slope = tracker.update(3.0 * t + 1.0)
        assert slope == pytest.approx(3.0, rel=1e-6)

    def test_window_size_bounded(self):
        tracker = TrendTracker(max_window=30)
        for value in np.random.default_rng(0).random(200):
            tracker.update(float(value))
        assert tracker.window_size <= 30
        assert len(tracker.value_history) <= 30

    def test_trend_history_recorded(self):
        tracker = TrendTracker()
        for value in range(10):
            tracker.update(float(value))
        assert len(tracker.trend_history) == 10
        assert tracker.n_updates == 10

    def test_reset_clears_state(self):
        tracker = TrendTracker()
        for value in range(10):
            tracker.update(float(value))
        tracker.reset()
        assert tracker.n_updates == 0
        assert tracker.trend_history == []

    def test_slope_reacts_to_level_shift(self):
        tracker = TrendTracker(max_window=40)
        for _ in range(40):
            tracker.update(1.0)
        stable_slope = tracker.trend_history[-1]
        for _ in range(10):
            tracker.update(5.0)
        shifted_slope = tracker.trend_history[-1]
        assert shifted_slope > stable_slope

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TrendTracker(min_window=1)
        with pytest.raises(ValueError):
            TrendTracker(max_window=2, min_window=10)
