"""Unit tests for the shared windowed-statistics core (repro.core.windows).

The detector kernels lean on two properties of these primitives: they must
reproduce the scalar recurrences bit-for-bit (prior-seeded fold order,
last-wins tie semantics), and the vectorized concentration bounds must agree
exactly with the ``math``-based scalar twins used on the per-instance hot
paths (HDDM-A seeds its trackers with one and fills them with the other).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.windows import (
    ExponentialBuckets,
    RingWindow,
    StackedRingWindow,
    consecutive_true_runs,
    exclusive_totals,
    gather_tracked,
    hoeffding_bound,
    mcdiarmid_bound,
    running_totals,
    strict_prefix_max_exclusive,
    tracked_weak_max,
    tracked_weak_min,
)
from repro.detectors.hddm import HDDM_W, _hoeffding_bound


class TestBounds:
    @pytest.mark.parametrize("confidence", [0.001, 0.005, 0.05, 0.5])
    def test_hoeffding_matches_scalar_twin_bitwise(self, confidence):
        ns = np.arange(1.0, 500.0)
        vectorized = hoeffding_bound(ns, confidence)
        scalar = np.array([_hoeffding_bound(n, confidence) for n in ns])
        # Exact equality: the batch kernels seed trackers with one and fill
        # them with the other, so any rounding gap breaks chunk-exactness.
        assert np.array_equal(vectorized, scalar)

    def test_hoeffding_guards_empty_samples(self):
        # n <= 0 has no concentration bound; the guard must return inf
        # (scalar and array) instead of tripping a divide-by-zero warning.
        with np.errstate(divide="raise", invalid="raise"):
            assert math.isinf(float(hoeffding_bound(0, 0.05)))
            assert math.isinf(float(hoeffding_bound(-3.0, 0.05)))
            out = hoeffding_bound(np.array([0.0, -1.0, 4.0]), 0.05)
        assert np.isinf(out[:2]).all()
        assert out[2] == _hoeffding_bound(4.0, 0.05)

    @pytest.mark.parametrize("confidence", [0.001, 0.005, 0.05])
    def test_mcdiarmid_matches_scalar_twin_bitwise(self, confidence):
        sums = np.concatenate([[0.0, -1.0], np.geomspace(1e-6, 10.0, 200)])
        vectorized = mcdiarmid_bound(sums, confidence)
        scalar = np.array(
            [HDDM_W._mcdiarmid_bound(s, confidence) for s in sums]
        )
        assert np.array_equal(vectorized, scalar)

    def test_mcdiarmid_infinite_without_mass(self):
        assert math.isinf(float(mcdiarmid_bound(0.0, 0.05)))


class TestRunningTotals:
    def test_matches_seeded_scalar_fold_bitwise(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 1.0, 257)
        prior = float(rng.normal())
        acc, expected = prior, []
        for v in values:
            acc += v
            expected.append(acc)
        assert np.array_equal(running_totals(values, prior), expected)
        assert np.array_equal(
            exclusive_totals(values, prior), [prior] + expected[:-1]
        )

    def test_empty(self):
        assert running_totals(np.empty(0), 3.0).shape == (0,)
        assert exclusive_totals(np.empty(0), 3.0).shape == (0,)


class TestTrackers:
    def test_weak_min_last_wins_on_ties(self):
        scores = np.array([3.0, 5.0, 3.0, 4.0, 2.0, 2.0])
        tracked = tracked_weak_min(scores, math.inf)
        assert tracked.tolist() == [0, 0, 2, 2, 4, 5]

    def test_prior_reference_sticks_until_beaten(self):
        scores = np.array([4.0, 3.0, 3.5])
        tracked = tracked_weak_min(scores, 3.0)
        assert tracked.tolist() == [-1, 1, 1]
        assert gather_tracked(tracked, scores, 99.0).tolist() == [99.0, 3.0, 3.0]

    def test_weak_max_mirrors_weak_min(self):
        scores = np.array([1.0, 4.0, 4.0, 2.0])
        assert tracked_weak_max(scores, -math.inf).tolist() == [0, 1, 2, 2]
        assert tracked_weak_max(scores, 5.0).tolist() == [-1, -1, -1, -1]

    def test_strict_prefix_max_exclusive(self):
        scores = np.array([2.0, 5.0, 4.0])
        assert strict_prefix_max_exclusive(scores, 3.0).tolist() == [3.0, 3.0, 5.0]

    def test_consecutive_true_runs_with_carry(self):
        mask = np.array([True, True, False, True])
        assert consecutive_true_runs(mask, prior_run=2).tolist() == [3, 4, 0, 1]
        assert consecutive_true_runs(mask).tolist() == [1, 2, 0, 1]


class TestRingWindow:
    def test_rolling_sum_matches_fresh_sum(self):
        rng = np.random.default_rng(1)
        window = RingWindow(7)
        for bit in (rng.random(100) < 0.4).astype(float):
            window.append(float(bit))
            assert window.sum == window.values().sum()
            assert len(window) <= 7

    def test_oldest_and_eviction_order(self):
        window = RingWindow(3)
        for v in (1.0, 2.0, 3.0):
            window.append(v)
        assert window.oldest() == 1.0
        evicted = window.append(4.0)
        assert evicted == 1.0
        assert window.values().tolist() == [2.0, 3.0, 4.0]

    def test_assign_keeps_tail(self):
        window = RingWindow(3)
        window.assign(np.array([1.0, 0.0, 1.0, 1.0]))
        assert window.values().tolist() == [0.0, 1.0, 1.0]
        assert window.sum == 2.0

    def test_empty_guards(self):
        window = RingWindow(2)
        with pytest.raises(ValueError, match="empty RingWindow"):
            window.oldest()
        window.append(1.0)
        window.clear()
        assert len(window) == 0 and window.sum == 0.0
        # Cleared windows guard exactly like fresh ones.
        with pytest.raises(ValueError, match="empty RingWindow"):
            window.oldest()


class TestStackedRingWindow:
    def test_lanes_match_independent_ring_windows(self):
        rng = np.random.default_rng(3)
        n_lanes, capacity = 5, 7
        stacked = StackedRingWindow(n_lanes, capacity)
        scalars = [RingWindow(capacity) for _ in range(n_lanes)]
        for _ in range(80):
            k = int(rng.integers(1, n_lanes + 1))
            lanes = rng.choice(n_lanes, size=k, replace=False)
            values = rng.integers(0, 2, size=k).astype(np.float64)
            stacked.append_at(lanes, values)
            for lane, value in zip(lanes, values):
                scalars[lane].append(float(value))
            for lane in range(n_lanes):
                assert stacked.values_at(lane).tolist() == (
                    scalars[lane].values().tolist()
                )
                assert stacked.sums[lane] == scalars[lane].sum
                assert stacked.sizes[lane] == len(scalars[lane])

    def test_oldest_and_clear(self):
        stacked = StackedRingWindow(2, 3)
        with pytest.raises(ValueError, match="empty lane"):
            stacked.oldest_at(0)
        for v in (1.0, 2.0, 3.0, 4.0):
            stacked.append_at(np.array([0]), np.array([v]))
        assert stacked.oldest_at(0) == 2.0
        assert stacked.values_at(0).tolist() == [2.0, 3.0, 4.0]
        stacked.clear_lanes(np.array([0]))
        assert stacked.sizes[0] == 0 and stacked.sums[0] == 0.0
        with pytest.raises(ValueError, match="empty lane"):
            stacked.oldest_at(0)
        # Lane 1 was never touched by lane 0's traffic.
        assert stacked.sizes[1] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StackedRingWindow(0, 3)
        with pytest.raises(ValueError):
            StackedRingWindow(3, 0)


class TestExponentialBuckets:
    def test_compression_preserves_totals(self):
        buckets = ExponentialBuckets()
        values = np.random.default_rng(2).random(200)
        for v in values:
            buckets.append(float(v))
        sizes, totals = buckets.arrays_oldest_first()
        assert sizes.sum() == 200
        assert totals.sum() == pytest.approx(values.sum())
        # Bounded memory: at most max_per_row + 1 buckets per level.
        assert sizes.shape[0] <= 6 * buckets.n_levels

    def test_pop_oldest_returns_largest_level_first(self):
        buckets = ExponentialBuckets()
        for v in range(40):
            buckets.append(float(v))
        size, _total, _variance = buckets.pop_oldest()
        sizes, _ = buckets.arrays_oldest_first()
        assert size == 2 ** (buckets.n_levels - 1)
        assert size >= sizes.max()

    def test_pop_oldest_empty(self):
        assert ExponentialBuckets().pop_oldest() is None
