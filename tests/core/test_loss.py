"""Unit tests for the class-balanced (effective number of samples) loss."""

import numpy as np
import pytest

from repro.core.loss import (
    ClassBalancedWeighter,
    class_balanced_weights,
    effective_number,
)


class TestEffectiveNumber:
    def test_zero_beta_gives_indicator(self):
        counts = np.array([0, 1, 100])
        np.testing.assert_allclose(effective_number(counts, 0.0), [0.0, 1.0, 1.0])

    def test_beta_close_to_one_approaches_counts(self):
        counts = np.array([10.0, 100.0])
        effective = effective_number(counts, 0.99999)
        np.testing.assert_allclose(effective, counts, rtol=0.01)

    def test_monotone_in_counts(self):
        counts = np.array([1.0, 5.0, 50.0, 500.0])
        effective = effective_number(counts, 0.99)
        assert np.all(np.diff(effective) > 0)

    def test_bounded_by_asymptote(self):
        effective = effective_number(np.array([1e9]), 0.99)
        assert effective[0] <= 1.0 / (1.0 - 0.99) + 1e-9

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            effective_number(np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            effective_number(np.array([1.0]), -0.1)


class TestClassBalancedWeights:
    def test_minority_gets_larger_weight(self):
        counts = np.array([1000.0, 10.0])
        weights = class_balanced_weights(counts, 0.999)
        assert weights[1] > weights[0]

    def test_normalised_to_unit_mean_over_observed(self):
        counts = np.array([500.0, 50.0, 5.0])
        weights = class_balanced_weights(counts, 0.999)
        assert weights.mean() == pytest.approx(1.0)

    def test_unseen_class_gets_max_observed_weight(self):
        counts = np.array([100.0, 10.0, 0.0])
        weights = class_balanced_weights(counts, 0.99, normalise=False)
        assert weights[2] == pytest.approx(weights[:2].max())

    def test_all_unseen_defaults_to_ones(self):
        weights = class_balanced_weights(np.zeros(3), 0.99)
        np.testing.assert_allclose(weights, 1.0)

    def test_balanced_counts_give_equal_weights(self):
        weights = class_balanced_weights(np.array([50.0, 50.0, 50.0]), 0.999)
        np.testing.assert_allclose(weights, 1.0)


class TestClassBalancedWeighter:
    def test_observe_accumulates_counts(self):
        weighter = ClassBalancedWeighter(3, beta=0.99)
        weighter.observe(np.array([0, 0, 1, 2, 0]))
        np.testing.assert_allclose(weighter.counts, [3.0, 1.0, 1.0])

    def test_instance_weights_follow_imbalance(self):
        weighter = ClassBalancedWeighter(2, beta=0.999)
        weighter.observe(np.array([0] * 900 + [1] * 10))
        weights = weighter.instance_weights(np.array([0, 1]))
        assert weights[1] / weights[0] > 5.0

    def test_decay_forgets_old_roles(self):
        weighter = ClassBalancedWeighter(2, beta=0.999, decay=0.9)
        weighter.observe(np.array([0] * 500))
        counts_after_flood = weighter.counts[0]
        for _ in range(100):
            weighter.observe(np.array([1]))
        assert weighter.counts[0] < counts_after_flood * 0.01

    def test_label_out_of_range_rejected(self):
        weighter = ClassBalancedWeighter(2)
        with pytest.raises(ValueError):
            weighter.observe(np.array([2]))

    def test_reset(self):
        weighter = ClassBalancedWeighter(2)
        weighter.observe(np.array([0, 1, 1]))
        weighter.reset()
        np.testing.assert_allclose(weighter.counts, 0.0)

    def test_empty_observation_is_noop(self):
        weighter = ClassBalancedWeighter(2)
        weighter.observe(np.array([], dtype=int))
        np.testing.assert_allclose(weighter.counts, 0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ClassBalancedWeighter(1)
        with pytest.raises(ValueError):
            ClassBalancedWeighter(3, beta=1.0)
        with pytest.raises(ValueError):
            ClassBalancedWeighter(3, decay=0.0)
