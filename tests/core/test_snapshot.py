"""Unit tests for the snapshot codec (:mod:`repro.core.snapshot`).

The codec is the foundation of rollback and crash-resume: every tag must
survive a **strict-JSON** round-trip losslessly (that is what a persisted
checkpoint actually goes through), including the values ``dumps_strict``
would otherwise destroy — non-finite floats — and the values plain JSON
cannot represent — ndarrays, Generator bit-states, tuples, sets, deques,
non-string dict keys.
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np
import pytest

from repro.core.jsonio import dumps_strict, loads_strict
from repro.core.snapshot import (
    SnapshotError,
    Snapshotable,
    decode_state,
    encode_state,
    register_dataclass,
    snapshotable_class,
)


def _roundtrip(value):
    return decode_state(loads_strict(dumps_strict(encode_state(value))))


# ------------------------------------------------------------------- scalars
def test_scalars_roundtrip() -> None:
    for value in (None, True, False, 0, -17, 3.5, "text", ""):
        assert _roundtrip(value) == value
        assert type(_roundtrip(value)) is type(value)


def test_nonfinite_floats_survive_strict_json() -> None:
    # dumps_strict nulls bare non-finite floats; the __f64__ tag is what
    # keeps inf/nan state (min/max trackers, unseen-class sentinels) alive.
    assert _roundtrip(float("inf")) == float("inf")
    assert _roundtrip(float("-inf")) == float("-inf")
    assert np.isnan(_roundtrip(float("nan")))


def test_numpy_scalars_decode_as_python() -> None:
    assert _roundtrip(np.float64(2.5)) == 2.5
    assert _roundtrip(np.int64(7)) == 7
    assert _roundtrip(np.bool_(True)) is True


# -------------------------------------------------------------------- arrays
@pytest.mark.parametrize(
    "array",
    [
        np.arange(12, dtype=np.float64).reshape(3, 4),
        np.array([], dtype=np.float64),
        np.array([[1, 2], [3, 4]], dtype=np.int64).T,  # non-contiguous
        np.array([np.nan, np.inf, -np.inf, 0.0]),
        np.zeros((2, 0, 3)),
        np.array([True, False]),
        np.arange(6, dtype=np.int32),
    ],
)
def test_ndarray_roundtrip_bitexact(array: np.ndarray) -> None:
    restored = _roundtrip(array)
    assert restored.dtype == array.dtype
    assert restored.shape == array.shape
    np.testing.assert_array_equal(restored, array)


def test_generator_roundtrip_resumes_identical_draws() -> None:
    rng = np.random.default_rng(1234)
    rng.random(97)  # advance into an odd phase
    restored = _roundtrip(rng)
    np.testing.assert_array_equal(restored.random(50), rng.random(50))
    np.testing.assert_array_equal(
        restored.integers(0, 1000, 50), rng.integers(0, 1000, 50)
    )


# ---------------------------------------------------------------- containers
def test_containers_roundtrip() -> None:
    value = {
        "tuple": (1, 2.5, "x"),
        "set": {3, 1, 2},
        "frozen": frozenset({"a", "b"}),
        "deque": deque([1.0, 2.0], maxlen=5),
        "nested": [{"k": (np.arange(3),)}],
    }
    restored = _roundtrip(value)
    assert restored["tuple"] == (1, 2.5, "x")
    assert restored["set"] == {3, 1, 2}
    assert restored["frozen"] == {"a", "b"}
    assert restored["deque"] == deque([1.0, 2.0])
    assert restored["deque"].maxlen == 5
    np.testing.assert_array_equal(restored["nested"][0]["k"][0], np.arange(3))


def test_nonstring_dict_keys_roundtrip() -> None:
    value = {0: "zero", 1: "one"}
    restored = _roundtrip(value)
    assert restored == value
    assert all(isinstance(key, int) for key in restored)


def test_tag_shaped_plain_dict_is_not_mistaken_for_a_tag() -> None:
    # A dict whose single key happens to be a codec tag must round-trip as
    # data, not be decoded as an encoded value.
    value = {"__nd__": "not an array"}
    assert _roundtrip(value) == value


def test_unencodable_value_raises() -> None:
    with pytest.raises(SnapshotError):
        encode_state(object())
    with pytest.raises(SnapshotError):
        encode_state(lambda: None)


# --------------------------------------------------------------- dataclasses
@register_dataclass
@dataclasses.dataclass
class _Point:
    x: float
    y: float
    tags: tuple = ()


def test_registered_dataclass_roundtrip() -> None:
    point = _Point(x=1.5, y=float("inf"), tags=("a", "b"))
    restored = _roundtrip(point)
    assert isinstance(restored, _Point)
    assert restored == point


def test_register_dataclass_rejects_non_dataclass() -> None:
    with pytest.raises(SnapshotError):
        register_dataclass(int)


# --------------------------------------------------------------- Snapshotable
class _Counter(Snapshotable):
    def __init__(self) -> None:
        self.count = 0
        self.history = deque(maxlen=3)
        self._scratch = np.empty(4)

    _SNAPSHOT_EXCLUDE = frozenset({"_scratch"})

    def _after_restore(self) -> None:
        self._scratch = np.empty(4)

    def bump(self) -> None:
        self.count += 1
        self.history.append(self.count)


def test_snapshotable_roundtrip_and_registry() -> None:
    counter = _Counter()
    for _ in range(5):
        counter.bump()
    snapshot = loads_strict(dumps_strict(counter.snapshot()))
    clone = _Counter.from_snapshot(snapshot)
    assert clone.count == 5
    assert clone.history == deque([3, 4, 5])
    assert clone._scratch.shape == (4,)  # rebuilt, not serialised
    assert snapshotable_class("_Counter") is _Counter


def test_restore_rejects_kind_and_version_mismatch() -> None:
    counter = _Counter()
    snapshot = counter.snapshot()
    with pytest.raises(SnapshotError):
        counter.restore(dict(snapshot, kind="Other"))
    with pytest.raises(SnapshotError):
        counter.restore(dict(snapshot, version=99))
    with pytest.raises(SnapshotError):
        counter.restore({"kind": "_Counter"})  # no state


class _InPlaceOnly(Snapshotable):
    SNAPSHOT_SELF_CONTAINED = False

    def __init__(self, factory) -> None:
        self.factory = factory
        self.value = 0

    def _snapshot_state(self) -> dict:
        return {"value": self.value}


def test_from_snapshot_refuses_restore_in_place_classes() -> None:
    instance = _InPlaceOnly(factory=lambda: 1)
    instance.value = 9
    snapshot = instance.snapshot()
    with pytest.raises(SnapshotError):
        Snapshotable.from_snapshot(snapshot)
    target = _InPlaceOnly(factory=lambda: 2)
    target.restore(snapshot)
    assert target.value == 9


def test_nested_snapshotable_inside_state() -> None:
    class _Holder(Snapshotable):
        def __init__(self) -> None:
            self.inner = _Counter()

    holder = _Holder()
    holder.inner.bump()
    clone = _Holder.from_snapshot(
        loads_strict(dumps_strict(holder.snapshot()))
    )
    assert isinstance(clone.inner, _Counter)
    assert clone.inner.count == 1
