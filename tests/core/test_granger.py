"""Unit tests for the first-difference Granger causality test."""

import numpy as np
import pytest

from repro.core.granger import first_differences, granger_causality


class TestFirstDifferences:
    def test_values(self):
        np.testing.assert_allclose(
            first_differences(np.array([1.0, 3.0, 6.0])), [2.0, 3.0]
        )

    def test_length_shrinks_by_one(self):
        assert first_differences(np.arange(10.0)).shape == (9,)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            first_differences(np.array([1.0]))

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            first_differences(np.zeros((3, 3)))


class TestGrangerCausality:
    def _causal_pair(self, n=200, lag=1, noise=0.05, seed=0):
        """y depends on lagged x -> x Granger-causes y."""
        rng = np.random.default_rng(seed)
        x = np.cumsum(rng.normal(0.0, 1.0, size=n))
        y = np.zeros(n)
        for t in range(lag, n):
            y[t] = 0.9 * x[t - lag] + noise * rng.normal()
        return x, y

    def test_detects_causal_relationship(self):
        x, y = self._causal_pair()
        result = granger_causality(x, y, lags=1, alpha=0.05)
        assert result.causality
        assert result.p_value < 0.05

    def test_independent_noise_not_causal(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        result = granger_causality(x, y, lags=1, alpha=0.01)
        assert not result.causality or result.p_value > 0.001

    def test_short_series_is_inconclusive(self):
        result = granger_causality(np.arange(4.0), np.arange(4.0), lags=1)
        assert result.causality  # conservative default: "no drift evidence"
        assert result.p_value == 1.0

    def test_constant_series_is_inconclusive(self):
        result = granger_causality(np.ones(50), np.ones(50), lags=1)
        assert result.causality
        assert result.p_value == 1.0

    def test_lag_order_validation(self):
        with pytest.raises(ValueError):
            granger_causality(np.arange(10.0), np.arange(10.0), lags=0)

    def test_dimensionality_validation(self):
        with pytest.raises(ValueError):
            granger_causality(np.zeros((5, 2)), np.zeros(5))

    def test_mismatched_lengths_are_aligned(self):
        x, y = self._causal_pair(n=150)
        result = granger_causality(x[:120], y, lags=1)
        assert result.n_observations > 0

    def test_result_fields_consistent(self):
        x, y = self._causal_pair()
        result = granger_causality(x, y, lags=2)
        assert result.lags == 2
        assert result.f_statistic >= 0.0
        assert 0.0 <= result.p_value <= 1.0

    def test_first_difference_handles_trending_series(self):
        # Two independent series sharing a deterministic trend: levels look
        # spuriously related, first differences should not.
        rng = np.random.default_rng(2)
        trend = np.linspace(0.0, 50.0, 300)
        x = trend + rng.normal(0.0, 0.1, size=300)
        y = trend + rng.normal(0.0, 0.1, size=300)
        differenced = granger_causality(x, y, lags=1, use_first_differences=True)
        assert differenced.p_value > 0.001
