"""Unit tests for the online min-max scaler."""

import numpy as np
import pytest

from repro.core.scaling import OnlineMinMaxScaler


class TestOnlineMinMaxScaler:
    def test_transform_maps_to_unit_interval(self, rng):
        scaler = OnlineMinMaxScaler(4)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = scaler.fit_transform(X)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_seen_extremes_map_to_bounds(self):
        scaler = OnlineMinMaxScaler(1)
        X = np.array([[0.0], [10.0], [5.0]])
        scaled = scaler.fit_transform(X)
        assert scaled[0, 0] == pytest.approx(0.0)
        assert scaled[1, 0] == pytest.approx(1.0)
        assert scaled[2, 0] == pytest.approx(0.5)

    def test_out_of_range_values_clipped(self):
        scaler = OnlineMinMaxScaler(1)
        scaler.partial_fit(np.array([[0.0], [1.0]]))
        scaled = scaler.transform(np.array([[5.0], [-3.0]]))
        assert scaled[0, 0] == 1.0
        assert scaled[1, 0] == 0.0

    def test_constant_feature_handled(self):
        scaler = OnlineMinMaxScaler(2)
        X = np.array([[3.0, 1.0], [3.0, 2.0]])
        scaled = scaler.fit_transform(X)
        assert np.all(np.isfinite(scaled))

    def test_partial_fit_expands_range(self):
        scaler = OnlineMinMaxScaler(1)
        scaler.partial_fit(np.array([[0.0], [1.0]]))
        scaler.partial_fit(np.array([[10.0]]))
        low, high = scaler.data_range
        assert low[0] == 0.0
        assert high[0] == 10.0

    def test_forgetting_shrinks_range_towards_recent_data(self):
        scaler = OnlineMinMaxScaler(1, forget=0.2)
        scaler.partial_fit(np.array([[0.0], [100.0]]))
        for _ in range(50):
            scaler.partial_fit(np.array([[45.0], [55.0]]))
        low, high = scaler.data_range
        assert high[0] - low[0] < 100.0

    def test_transform_before_fit_raises(self):
        scaler = OnlineMinMaxScaler(2)
        with pytest.raises(RuntimeError):
            scaler.transform(np.zeros((1, 2)))

    def test_dimension_mismatch_rejected(self):
        scaler = OnlineMinMaxScaler(3)
        with pytest.raises(ValueError):
            scaler.partial_fit(np.zeros((5, 2)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnlineMinMaxScaler(0)
        with pytest.raises(ValueError):
            OnlineMinMaxScaler(2, forget=1.0)
