"""Unit tests for the skew-insensitive RBM."""

import numpy as np
import pytest

from repro.core.rbm import RBMConfig, SkewInsensitiveRBM


def make_rbm(n_visible=6, n_hidden=4, n_classes=3, **overrides):
    config = RBMConfig(
        n_visible=n_visible,
        n_hidden=n_hidden,
        n_classes=n_classes,
        seed=0,
        **overrides,
    )
    return SkewInsensitiveRBM(config)


class TestRBMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RBMConfig(n_visible=0, n_hidden=2, n_classes=2)
        with pytest.raises(ValueError):
            RBMConfig(n_visible=2, n_hidden=2, n_classes=1)
        with pytest.raises(ValueError):
            RBMConfig(n_visible=2, n_hidden=2, n_classes=2, learning_rate=0.0)
        with pytest.raises(ValueError):
            RBMConfig(n_visible=2, n_hidden=2, n_classes=2, cd_steps=0)
        with pytest.raises(ValueError):
            RBMConfig(n_visible=2, n_hidden=2, n_classes=2, momentum=1.0)


class TestConditionalProbabilities:
    def test_hidden_probabilities_in_unit_interval(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        z = np.zeros((X.shape[0], 3))
        z[np.arange(len(y)), y] = 1.0
        h = rbm.hidden_probabilities(X, z)
        assert h.shape == (X.shape[0], 4)
        assert np.all((h >= 0.0) & (h <= 1.0))

    def test_visible_probabilities_in_unit_interval(self):
        rbm = make_rbm()
        h = np.random.default_rng(0).random((10, 4))
        v = rbm.visible_probabilities(h)
        assert v.shape == (10, 6)
        assert np.all((v >= 0.0) & (v <= 1.0))

    def test_class_probabilities_sum_to_one(self):
        rbm = make_rbm()
        h = np.random.default_rng(0).random((10, 4))
        z = rbm.class_probabilities(h)
        np.testing.assert_allclose(z.sum(axis=1), 1.0, rtol=1e-9)

    def test_energy_finite(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        z = np.zeros((X.shape[0], 3))
        z[np.arange(len(y)), y] = 1.0
        h = rbm.hidden_probabilities(X, z)
        energy = rbm.energy(X, h, z)
        assert energy.shape == (X.shape[0],)
        assert np.all(np.isfinite(energy))

    def test_extreme_inputs_do_not_overflow(self):
        rbm = make_rbm()
        rbm._W[:] = 100.0
        v = np.ones((2, 6))
        z = np.zeros((2, 3))
        z[:, 0] = 1.0
        h = rbm.hidden_probabilities(v, z)
        assert np.all(np.isfinite(h))


class TestTraining:
    def test_partial_fit_reduces_reconstruction_error(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1], n_hidden=8, learning_rate=0.2)
        first = rbm.partial_fit(X, y)
        for _ in range(60):
            last = rbm.partial_fit(X, y)
        assert last < first

    def test_partial_fit_updates_counters(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        rbm.partial_fit(X, y)
        assert rbm.n_batches_trained == 1
        assert rbm.class_counts.sum() == pytest.approx(len(y))

    def test_shape_validation(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        with pytest.raises(ValueError):
            rbm.partial_fit(X[:, :3], y)
        with pytest.raises(ValueError):
            rbm.partial_fit(X, y[:-1])

    def test_label_out_of_range_rejected(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        with pytest.raises(ValueError):
            rbm.partial_fit(X, np.full_like(y, 7))

    def test_training_is_deterministic_given_seed(self, labelled_batch):
        X, y = labelled_batch
        rbm_a = make_rbm(n_visible=X.shape[1])
        rbm_b = make_rbm(n_visible=X.shape[1])
        for _ in range(5):
            rbm_a.partial_fit(X, y)
            rbm_b.partial_fit(X, y)
        np.testing.assert_allclose(rbm_a.weights["W"], rbm_b.weights["W"])

    def test_weights_property_returns_copies(self):
        rbm = make_rbm()
        weights = rbm.weights
        weights["W"][:] = 99.0
        assert not np.allclose(rbm.weights["W"], 99.0)


class TestInference:
    def test_reconstruct_shapes(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        x_recon, z_recon = rbm.reconstruct(X, y)
        assert x_recon.shape == X.shape
        assert z_recon.shape == (X.shape[0], 3)

    def test_predict_proba_valid_distribution(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1])
        proba = rbm.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)

    def test_learns_simple_classification(self, labelled_batch):
        X, y = labelled_batch
        rbm = make_rbm(n_visible=X.shape[1], n_hidden=12, learning_rate=0.2)
        for _ in range(200):
            rbm.partial_fit(X, y)
        accuracy = float(np.mean(rbm.predict(X) == y))
        assert accuracy > 0.5
