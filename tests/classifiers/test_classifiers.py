"""Unit tests for all streaming classifiers."""

import numpy as np
import pytest

from repro.classifiers import (
    CostSensitivePerceptronTree,
    GaussianNaiveBayes,
    MajorityClassClassifier,
    NoChangeClassifier,
    OnlinePerceptron,
)

CLASSIFIER_FACTORIES = {
    "majority": lambda f, c: MajorityClassClassifier(f, c),
    "no_change": lambda f, c: NoChangeClassifier(f, c),
    "naive_bayes": lambda f, c: GaussianNaiveBayes(f, c),
    "perceptron": lambda f, c: OnlinePerceptron(f, c, seed=0),
    "perceptron_tree": lambda f, c: CostSensitivePerceptronTree(
        f, c, grace_period=50, seed=0
    ),
}

LEARNING_FACTORIES = {
    name: factory
    for name, factory in CLASSIFIER_FACTORIES.items()
    if name in ("naive_bayes", "perceptron", "perceptron_tree")
}


@pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
class TestClassifierContract:
    def test_predict_proba_is_distribution(self, name, labelled_batch):
        X, y = labelled_batch
        clf = CLASSIFIER_FACTORIES[name](X.shape[1], 3)
        for row, label in zip(X[:20], y[:20]):
            clf.partial_fit(row, int(label))
        proba = clf.predict_proba(X[0])
        assert proba.shape == (3,)
        assert proba.sum() == pytest.approx(1.0)
        assert np.all(proba >= 0.0)

    def test_predict_matches_argmax(self, name, labelled_batch):
        X, y = labelled_batch
        clf = CLASSIFIER_FACTORIES[name](X.shape[1], 3)
        for row, label in zip(X[:30], y[:30]):
            clf.partial_fit(row, int(label))
        assert clf.predict(X[0]) == int(np.argmax(clf.predict_proba(X[0])))

    def test_reset_restores_initial_behaviour(self, name, labelled_batch):
        X, y = labelled_batch
        clf = CLASSIFIER_FACTORIES[name](X.shape[1], 3)
        for row, label in zip(X, y):
            clf.partial_fit(row, int(label))
        clf.reset()
        fresh = CLASSIFIER_FACTORIES[name](X.shape[1], 3)
        np.testing.assert_allclose(
            clf.predict_proba(X[0]), fresh.predict_proba(X[0]), atol=1e-9
        )

    def test_invalid_construction_rejected(self, name):
        with pytest.raises(ValueError):
            CLASSIFIER_FACTORIES[name](0, 3)
        with pytest.raises(ValueError):
            CLASSIFIER_FACTORIES[name](4, 1)


@pytest.mark.parametrize("name", sorted(LEARNING_FACTORIES))
class TestClassifierLearning:
    def test_learns_separable_problem(self, name, labelled_batch):
        X, y = labelled_batch
        clf = LEARNING_FACTORIES[name](X.shape[1], 3)
        for _ in range(5):
            for row, label in zip(X, y):
                clf.partial_fit(row, int(label))
        accuracy = float(np.mean([clf.predict(row) == label for row, label in zip(X, y)]))
        assert accuracy > 0.85, f"{name} accuracy {accuracy:.2f}"

    def test_beats_majority_on_balanced_data(self, name, labelled_batch):
        X, y = labelled_batch
        clf = LEARNING_FACTORIES[name](X.shape[1], 3)
        majority = MajorityClassClassifier(X.shape[1], 3)
        for row, label in zip(X, y):
            clf.partial_fit(row, int(label))
            majority.partial_fit(row, int(label))
        clf_acc = float(np.mean([clf.predict(r) == t for r, t in zip(X, y)]))
        maj_acc = float(np.mean([majority.predict(r) == t for r, t in zip(X, y)]))
        assert clf_acc > maj_acc


class TestMajorityAndNoChange:
    def test_majority_predicts_most_frequent(self):
        clf = MajorityClassClassifier(2, 3)
        for label in [0, 1, 1, 1, 2]:
            clf.partial_fit(np.zeros(2), label)
        assert clf.predict(np.zeros(2)) == 1

    def test_majority_uniform_before_training(self):
        clf = MajorityClassClassifier(2, 4)
        np.testing.assert_allclose(clf.predict_proba(np.zeros(2)), 0.25)

    def test_no_change_repeats_last_label(self):
        clf = NoChangeClassifier(2, 3)
        clf.partial_fit(np.zeros(2), 2)
        assert clf.predict(np.ones(2)) == 2


class TestOnlinePerceptron:
    def test_cost_sensitive_boosts_minority_updates(self):
        clf = OnlinePerceptron(2, 2, cost_sensitive=True, seed=0)
        for _ in range(200):
            clf.partial_fit(np.array([1.0, 0.0]), 0)
        for _ in range(10):
            clf.partial_fit(np.array([0.0, 1.0]), 1)
        assert clf._class_weight(1) > clf._class_weight(0)

    def test_cost_insensitive_weights_are_one(self):
        clf = OnlinePerceptron(2, 2, cost_sensitive=False, seed=0)
        clf.partial_fit(np.zeros(2), 0)
        assert clf._class_weight(0) == 1.0
        assert clf._class_weight(1) == 1.0

    def test_class_counts_tracked(self):
        clf = OnlinePerceptron(2, 3, seed=0)
        for label in [0, 0, 1, 2, 2, 2]:
            clf.partial_fit(np.zeros(2), label)
        np.testing.assert_allclose(clf.class_counts, [2.0, 1.0, 3.0])

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            OnlinePerceptron(2, 2, learning_rate=0.0)

    def test_minority_recall_better_with_cost_sensitivity(self, rng):
        """On a 20:1 imbalanced problem the cost-sensitive variant should
        recall the minority class at least as well as the plain one."""

        def run(cost_sensitive):
            clf = OnlinePerceptron(2, 2, cost_sensitive=cost_sensitive, seed=1)
            local_rng = np.random.default_rng(7)
            hits, total = 0, 0
            for _ in range(4000):
                if local_rng.random() < 0.95:
                    x = local_rng.normal([0.0, 0.0], 0.3)
                    label = 0
                else:
                    x = local_rng.normal([1.5, 1.5], 0.3)
                    label = 1
                if label == 1:
                    total += 1
                    hits += int(clf.predict(x) == 1)
                clf.partial_fit(x, label)
            return hits / max(total, 1)

        assert run(True) >= run(False) - 0.05


class TestGaussianNaiveBayes:
    def test_handles_unseen_class_gracefully(self):
        clf = GaussianNaiveBayes(2, 3)
        clf.partial_fit(np.array([0.0, 0.0]), 0)
        clf.partial_fit(np.array([1.0, 1.0]), 1)
        proba = clf.predict_proba(np.array([0.5, 0.5]))
        assert np.all(np.isfinite(proba))
        assert proba[2] < 0.5

    def test_weighted_updates(self):
        clf = GaussianNaiveBayes(1, 2)
        clf.partial_fit(np.array([1.0]), 0, weight=10.0)
        clf.partial_fit(np.array([5.0]), 0, weight=1.0)
        # The heavily weighted observation dominates the class mean.
        assert clf._means[0, 0] < 3.0

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(2, 2, prior_smoothing=-1.0)


class TestCostSensitivePerceptronTree:
    def test_grows_tree_on_separable_data(self, labelled_batch):
        X, y = labelled_batch
        clf = CostSensitivePerceptronTree(
            X.shape[1], 3, grace_period=30, split_threshold=0.5, seed=0
        )
        for _ in range(3):
            for row, label in zip(X, y):
                clf.partial_fit(row, int(label))
        assert clf.n_splits >= 1
        assert clf.n_leaves == clf.n_splits + 1

    def test_depth_limit_respected(self, labelled_batch):
        X, y = labelled_batch
        clf = CostSensitivePerceptronTree(
            X.shape[1], 3, grace_period=20, split_threshold=0.1, max_depth=1, seed=0
        )
        for _ in range(5):
            for row, label in zip(X, y):
                clf.partial_fit(row, int(label))
        assert clf.n_leaves <= 2

    def test_reset_collapses_tree(self, labelled_batch):
        X, y = labelled_batch
        clf = CostSensitivePerceptronTree(
            X.shape[1], 3, grace_period=30, split_threshold=0.5, seed=0
        )
        for row, label in zip(X, y):
            clf.partial_fit(row, int(label))
        clf.reset()
        assert clf.n_leaves == 1
        assert clf.n_splits == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CostSensitivePerceptronTree(2, 2, grace_period=5)
        with pytest.raises(ValueError):
            CostSensitivePerceptronTree(2, 2, max_depth=0)

    def test_no_split_on_inseparable_noise(self, rng):
        clf = CostSensitivePerceptronTree(
            4, 2, grace_period=50, split_threshold=2.5, seed=0
        )
        for _ in range(400):
            clf.partial_fit(rng.random(4), int(rng.integers(2)))
        assert clf.n_splits == 0
