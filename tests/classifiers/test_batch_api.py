"""Batch interface of the streaming classifiers.

The default adapters must be exactly equivalent to per-instance calls; the
native vectorized paths (naive Bayes, perceptron) must agree with the
sequential semantics they document (moment merging for NB, mini-batch SGD for
the perceptron).
"""

import numpy as np
import pytest

from repro.classifiers import (
    GaussianNaiveBayes,
    MajorityClassClassifier,
    NoChangeClassifier,
)
from repro.classifiers.perceptron import OnlinePerceptron
from repro.classifiers.perceptron_tree import CostSensitivePerceptronTree
from repro.streams.generators import RandomRBFGenerator


@pytest.fixture(scope="module")
def data():
    features, labels = RandomRBFGenerator(
        n_classes=4, n_features=6, seed=0
    ).generate_batch(600)
    return features, labels


DEFAULT_ADAPTER_FACTORIES = [
    lambda: MajorityClassClassifier(6, 4),
    lambda: NoChangeClassifier(6, 4),
    lambda: CostSensitivePerceptronTree(
        n_features=6, n_classes=4, grace_period=50, max_depth=2, seed=1
    ),
]


@pytest.mark.parametrize("factory", DEFAULT_ADAPTER_FACTORIES)
def test_default_adapter_identical_to_loop(factory, data):
    features, labels = data
    batch_model = factory()
    loop_model = factory()
    batch_model.partial_fit_batch(features[:400], labels[:400])
    for i in range(400):
        loop_model.partial_fit(features[i], int(labels[i]))
    batch_scores = batch_model.predict_proba_batch(features[400:])
    loop_scores = np.vstack(
        [loop_model.predict_proba(features[i]) for i in range(400, 600)]
    )
    np.testing.assert_array_equal(batch_scores, loop_scores)


def test_predict_batch_matches_argmax(data):
    features, labels = data
    model = GaussianNaiveBayes(6, 4)
    model.partial_fit_batch(features[:400], labels[:400])
    predictions = model.predict_batch(features[400:])
    assert predictions.shape == (200,)
    np.testing.assert_array_equal(
        predictions, np.argmax(model.predict_proba_batch(features[400:]), axis=1)
    )


class TestNaiveBayesNativeBatch:
    def test_moments_match_sequential(self, data):
        features, labels = data
        batch_model = GaussianNaiveBayes(6, 4)
        loop_model = GaussianNaiveBayes(6, 4)
        batch_model.partial_fit_batch(features, labels)
        for i in range(600):
            loop_model.partial_fit(features[i], int(labels[i]))
        np.testing.assert_allclose(batch_model._counts, loop_model._counts)
        np.testing.assert_allclose(
            batch_model._means, loop_model._means, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(
            batch_model._m2, loop_model._m2, rtol=1e-8, atol=1e-10
        )

    def test_batch_proba_matches_instance_proba(self, data):
        features, labels = data
        model = GaussianNaiveBayes(6, 4)
        model.partial_fit_batch(features[:500], labels[:500])
        batch_scores = model.predict_proba_batch(features[500:])
        loop_scores = np.vstack(
            [model.predict_proba(features[i]) for i in range(500, 600)]
        )
        np.testing.assert_allclose(batch_scores, loop_scores, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(batch_scores.sum(axis=1), 1.0)

    def test_weighted_batch(self, data):
        features, labels = data
        weighted = GaussianNaiveBayes(6, 4)
        doubled = GaussianNaiveBayes(6, 4)
        weighted.partial_fit_batch(
            features[:100], labels[:100], weights=np.full(100, 2.0)
        )
        doubled.partial_fit_batch(
            np.repeat(features[:100], 2, axis=0), np.repeat(labels[:100], 2)
        )
        np.testing.assert_allclose(weighted._counts, doubled._counts)
        np.testing.assert_allclose(weighted._means, doubled._means, rtol=1e-10)

    def test_unseen_class_guard(self):
        model = GaussianNaiveBayes(3, 3)
        model.partial_fit_batch(np.random.default_rng(0).random((20, 3)),
                                np.zeros(20, dtype=np.int64))
        scores = model.predict_proba_batch(np.random.default_rng(1).random((5, 3)))
        assert np.all(np.argmax(scores, axis=1) == 0)


class TestPerceptronNativeBatch:
    def test_learns_separable_problem(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(800, 4))
        labels = (features[:, 0] + features[:, 1] > 0).astype(np.int64)
        model = OnlinePerceptron(4, 2, cost_sensitive=False, seed=0)
        for start in range(0, 600, 50):
            model.partial_fit_batch(
                features[start : start + 50], labels[start : start + 50]
            )
        predictions = model.predict_batch(features[600:])
        accuracy = float(np.mean(predictions == labels[600:]))
        assert accuracy > 0.8

    def test_batch_proba_matches_instance_proba(self, data):
        features, labels = data
        model = OnlinePerceptron(6, 4, seed=3)
        model.partial_fit_batch(features[:500], labels[:500])
        batch_scores = model.predict_proba_batch(features[500:510])
        loop_scores = np.vstack(
            [model.predict_proba(features[i]) for i in range(500, 510)]
        )
        np.testing.assert_allclose(batch_scores, loop_scores, rtol=1e-9, atol=1e-12)

    def test_class_counts_accumulate(self, data):
        features, labels = data
        model = OnlinePerceptron(6, 4, seed=3)
        model.partial_fit_batch(features, labels)
        np.testing.assert_array_equal(
            model.class_counts, np.bincount(labels, minlength=4).astype(float)
        )
