"""End-to-end integration tests tying streams, detectors, classifiers and metrics.

These are scaled-down versions of the paper's experiments: short streams, the
full detector line-up, and checks on the qualitative outcomes the paper
reports (RBM-IM's per-class drift attribution, its robustness to skew, the
evaluation statistics pipeline).
"""

import numpy as np
import pytest

from repro.core import RBMIM, RBMIMConfig
from repro.detectors import DDM_OCI, FHDDM, PerfSim
from repro.evaluation import (
    PrequentialRunner,
    ResultTable,
    bayesian_signed_test,
    compare_detectors,
    default_classifier_factory,
    friedman_test,
)
from repro.evaluation.experiment import paper_detector_factories
from repro.classifiers import GaussianNaiveBayes
from repro.streams import (
    make_artificial_stream,
    real_world_stream,
    scenario_local_drift,
)


def nb_factory(n_features, n_classes):
    return GaussianNaiveBayes(n_features, n_classes)


def _scenario3_stream() -> "ScenarioStream":
    """A laptop-sized Scenario-3 stream: local drift on the smallest class.

    Built from a compact RandomRBF concept (12 centroids, 8 features) so the
    drift signal is detectable at this scale; the paper's own streams are two
    orders of magnitude longer.
    """
    from repro.streams import (
        ImbalancedStream,
        LocalDriftStream,
        StaticImbalance,
    )
    from repro.streams.generators import RandomRBFGenerator
    from repro.streams.scenarios import ScenarioStream

    def factory(concept: int):
        # Seed re-anchored when stream generation became batch-first (the new
        # fixed-draw-budget RNG discipline changed seeded realizations); this
        # realization keeps the injected drift detectable at laptop scale.
        return RandomRBFGenerator(
            n_classes=4, n_features=8, n_centroids=12, concept=concept, seed=3
        )

    drift_position = 3000
    local = LocalDriftStream(
        generator_factory=factory,
        old_concept=0,
        new_concept=6,
        drifted_classes=[3],
        position=drift_position,
        seed=9,
    )
    stream = ImbalancedStream(local, StaticImbalance(4, 10.0), seed=2)
    return ScenarioStream(
        stream=stream,
        drift_points=[drift_position],
        drifted_classes=[[3]],
        name="scenario3-integration",
        n_instances=6000,
    )


@pytest.fixture(scope="module")
def local_drift_results():
    """One shared comparison run on a Scenario-3 stream (module-scoped: slow)."""
    scenario = _scenario3_stream()
    factories = {
        "FHDDM": lambda f, c: FHDDM(),
        "DDM-OCI": lambda f, c: DDM_OCI(n_classes=c),
        "RBM-IM": lambda f, c: RBMIM(f, c, RBMIMConfig(batch_size=25, seed=7)),
    }
    return scenario, compare_detectors(
        scenario,
        detector_factories=factories,
        classifier_factory=nb_factory,
        n_instances=scenario.n_instances,
        pretrain_size=200,
    )


class TestEndToEndPipeline:
    def test_full_detector_lineup_on_artificial_stream(self):
        scenario = make_artificial_stream(
            "hyperplane", 5, n_instances=1500, max_imbalance_ratio=10, seed=3
        )
        results = compare_detectors(
            scenario,
            classifier_factory=nb_factory,
            detector_factories=paper_detector_factories(batch_size=25),
            n_instances=1500,
            pretrain_size=150,
        )
        assert len(results) == 6
        for name, result in results.items():
            assert 0.0 <= result.pmauc <= 1.0, name
            assert 0.0 <= result.pmgm <= 1.0, name
            assert result.n_instances == 1500

    def test_real_world_surrogate_end_to_end(self):
        scenario = real_world_stream("Electricity", n_instances=1500, seed=0)
        runner = PrequentialRunner(default_classifier_factory, pretrain_size=150)
        detector = RBMIM(
            scenario.n_features, scenario.n_classes, RBMIMConfig(batch_size=25, seed=0)
        )
        result = runner.run(scenario, detector, n_instances=1500)
        assert result.pmauc > 0.5
        assert result.drift_report is not None

    def test_rbmim_detects_local_drift(self, local_drift_results):
        scenario, results = local_drift_results
        rbm_result = results["RBM-IM"]
        drift_position = scenario.drift_points[0]
        post_alarms = [p for p in rbm_result.detections if p >= drift_position]
        assert post_alarms, "RBM-IM missed the injected local drift"
        # Per-class attribution on imbalanced laptop-scale streams is best
        # effort (the paper notes RBM-IM underfits on small streams); exact
        # attribution is asserted on the balanced case in the core unit tests.
        assert rbm_result.detected_classes, "no class attribution recorded"

    def test_rbmim_competitive_on_local_drift(self, local_drift_results):
        _scenario, results = local_drift_results
        rbm = results["RBM-IM"].pmauc
        best_baseline = max(results["FHDDM"].pmauc, results["DDM-OCI"].pmauc)
        # The paper's headline claim, scaled down: RBM-IM should not be
        # dominated by the baselines on local-drift scenarios.
        assert rbm >= best_baseline - 0.1

    def test_detection_reports_available_for_all(self, local_drift_results):
        _scenario, results = local_drift_results
        for result in results.values():
            assert result.drift_report is not None
            assert result.drift_report.n_true_drifts == 1


class TestStatisticsPipeline:
    def test_result_table_to_friedman_to_bayes(self):
        """The Table III -> Fig. 4/6 analysis chain runs on synthetic results."""
        rng = np.random.default_rng(0)
        table = ResultTable(metric_name="pmAUC")
        methods = ["WSTD", "PerfSim", "RBM-IM"]
        offsets = {"WSTD": 0.0, "PerfSim": 0.08, "RBM-IM": 0.2}
        for dataset in [f"stream{i}" for i in range(12)]:
            base = rng.uniform(0.4, 0.7)
            for method in methods:
                table.add(dataset, method, base + offsets[method] + rng.normal(0, 0.01))
        matrix = table.to_matrix()
        friedman = friedman_test(matrix)
        assert friedman.significant
        ranks = table.ranks()
        assert ranks["RBM-IM"] < ranks["WSTD"]
        bayes = bayesian_signed_test(matrix[:, 2], matrix[:, 0], rope=0.01, seed=0)
        assert bayes.p_left > 0.9

    def test_imbalance_aware_detectors_handle_many_classes(self):
        """PerfSim / DDM-OCI must at least run on wide multi-class problems."""
        scenario = make_artificial_stream(
            "rbf", 10, n_instances=1200, max_imbalance_ratio=50, seed=5
        )
        factories = {
            "PerfSim": lambda f, c: PerfSim(n_classes=c, batch_size=200),
            "DDM-OCI": lambda f, c: DDM_OCI(n_classes=c),
        }
        results = compare_detectors(
            scenario,
            detector_factories=factories,
            classifier_factory=nb_factory,
            n_instances=1200,
            pretrain_size=150,
        )
        for result in results.values():
            assert np.isfinite(result.pmauc)
