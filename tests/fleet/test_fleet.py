"""Unit tests for the fleet engine (repro.fleet): rounds, driver, kernels.

The bit-exactness contract against N scalar detectors is hunted by
Hypothesis in ``tests/property/test_property_fleet.py``; these tests pin the
deterministic plumbing — the rounds decomposition, input validation, the
per-lane bookkeeping, and the native-kernel / adapter dispatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import DDM, FHDDM, RDDM
from repro.fleet import (
    FLEET_NATIVE,
    DDMStateArray,
    ScalarDetectorFleet,
    fleet_from_template,
    iter_rounds,
    make_fleet,
)


class TestIterRounds:
    def test_single_occurrences_are_one_round(self):
        ids = np.array([3, 1, 4, 0], dtype=np.int64)
        rounds = list(iter_rounds(ids))
        assert len(rounds) == 1
        assert rounds[0].tolist() == [0, 1, 2, 3]

    def test_repeats_split_by_occurrence_preserving_order(self):
        # Lane 2 appears three times, lane 1 twice: round r holds the r-th
        # occurrence of every lane, at its original tick position.
        ids = np.array([2, 1, 2, 0, 1, 2], dtype=np.int64)
        rounds = [r.tolist() for r in iter_rounds(ids)]
        assert rounds == [[0, 1, 3], [2, 4], [5]]
        # Concatenation is a permutation and every round has distinct lanes.
        flat = [p for r in rounds for p in r]
        assert sorted(flat) == list(range(len(ids)))
        for positions in rounds:
            lanes = ids[positions]
            assert len(set(lanes.tolist())) == len(positions)

    def test_empty_tick(self):
        assert list(iter_rounds(np.empty(0, dtype=np.int64))) == []


class TestStepFleetDriver:
    def test_validation(self):
        fleet = make_fleet("DDM", 4)
        with pytest.raises(ValueError, match="aligned"):
            fleet.step_fleet(np.array([0, 1]), np.array([1.0]))
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            fleet.step_fleet(np.array([4]), np.array([1.0]))
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            fleet.step_fleet(np.array([-1]), np.array([1.0]))

    def test_empty_tick_is_a_no_op(self):
        fleet = make_fleet("DDM", 3)
        flags = fleet.step_fleet(np.empty(0, dtype=np.int64), np.empty(0))
        assert flags.shape == (0,)
        assert fleet.n_observations.tolist() == [0, 0, 0]

    def test_observation_counts_and_flags_shape(self):
        fleet = make_fleet("DDM", 3)
        flags = fleet.step_fleet(
            np.array([0, 2, 0, 0]), np.array([1.0, 0.0, 1.0, 0.0])
        )
        assert flags.dtype == bool and flags.shape == (4,)
        assert fleet.n_observations.tolist() == [3, 0, 1]
        assert fleet.in_drift.tolist() == [False, False, False]

    def test_detections_are_one_based_per_lane(self):
        template = DDM(min_num_instances=5)
        fleet = fleet_from_template(template, 2)
        scalar = DDM(min_num_instances=5)
        rng = np.random.default_rng(0)
        values = (rng.random(300) < (0.1 + 0.7 * (np.arange(300) > 150))).astype(
            float
        )
        for value in values:
            fleet.step_fleet(np.array([0, 1]), np.array([value, value]))
            scalar.step_values(np.array([value]))
        assert len(scalar.detections) > 0
        assert fleet.detections(0) == list(scalar.detections)
        assert fleet.detections(1) == list(scalar.detections)


class TestConstruction:
    def test_make_fleet_dispatch(self):
        assert isinstance(make_fleet("DDM", 8), DDMStateArray)
        assert isinstance(make_fleet("ADWIN", 3), ScalarDetectorFleet)
        assert isinstance(make_fleet("PerfSim", 3, n_classes=3), ScalarDetectorFleet)
        with pytest.raises(ValueError):
            make_fleet("none", 2)

    def test_native_coverage_is_the_sum_bound_family(self):
        assert set(FLEET_NATIVE) == {
            "DDM", "RDDM", "ECDD", "PH", "FHDDM", "HDDM-A",
        }

    def test_from_template_carries_configuration(self):
        template = FHDDM(window_size=25, delta=0.01)
        fleet = fleet_from_template(template, 4)
        assert fleet._window_size == 25
        assert fleet._epsilon == template.epsilon
        with pytest.raises(TypeError, match="no native fleet kernel"):
            from repro.detectors import ADWIN

            fleet_from_template(ADWIN(), 4)

    def test_from_detector_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="transposes DDM"):
            DDMStateArray.from_detector(FHDDM(), 4)

    def test_rddm_storage_is_min_size_stable_not_max_concept(self):
        template = RDDM(max_concept_size=40_000, min_size_stable_concept=7_000)
        fleet = fleet_from_template(template, 3)
        assert fleet._storage.capacity == 7_000

    def test_adapter_requires_detectors(self):
        with pytest.raises(ValueError):
            ScalarDetectorFleet([])


class TestAdapterLayouts:
    def test_error_rate_rejects_2d_values(self):
        fleet = make_fleet("ADWIN", 2)
        with pytest.raises(ValueError, match="1-D"):
            fleet.step_fleet(np.array([0]), np.array([[1.0, 0.0]]))

    def test_class_conditional_takes_label_pairs(self):
        fleet = make_fleet("DDM-OCI", 2, n_classes=3)
        flags = fleet.step_fleet(
            np.array([0, 1, 0]),
            np.array([[1.0, 1.0], [2.0, 0.0], [0.0, 1.0]]),
        )
        assert flags.shape == (3,)
        assert fleet.n_observations.tolist() == [2, 1]
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            fleet.step_fleet(np.array([0]), np.array([1.0]))
