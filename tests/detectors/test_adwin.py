"""Unit tests for the ADWIN adaptive-windowing detector."""

import numpy as np
import pytest

from conftest import feed_errors, make_error_stream
from repro.detectors import ADWIN


class TestADWINValidation:
    def test_delta_bounds(self):
        with pytest.raises(ValueError):
            ADWIN(delta=0.0)
        with pytest.raises(ValueError):
            ADWIN(delta=1.0)

    def test_min_window_and_clock(self):
        with pytest.raises(ValueError):
            ADWIN(min_window_length=0)
        with pytest.raises(ValueError):
            ADWIN(clock=0)


class TestADWINStatistics:
    def test_estimation_tracks_mean(self):
        adwin = ADWIN(seed=None) if False else ADWIN()
        rng = np.random.default_rng(0)
        values = rng.normal(0.4, 0.05, size=2000)
        for value in values:
            adwin.add_element(float(value))
        assert adwin.estimation == pytest.approx(0.4, abs=0.05)

    def test_width_grows_on_stationary_data(self):
        adwin = ADWIN()
        for _ in range(1500):
            adwin.add_element(0.5)
        assert adwin.width == 1500

    def test_variance_non_negative(self):
        adwin = ADWIN()
        rng = np.random.default_rng(1)
        for value in rng.random(1000):
            adwin.add_element(float(value))
        assert adwin.variance >= 0.0

    def test_empty_window_defaults(self):
        adwin = ADWIN()
        assert adwin.estimation == 0.0
        assert adwin.variance == 0.0
        assert adwin.width == 0


class TestADWINChangeDetection:
    def test_window_shrinks_after_mean_shift(self):
        adwin = ADWIN(delta=0.002)
        rng = np.random.default_rng(2)
        for value in rng.normal(0.2, 0.05, size=2000):
            adwin.add_element(float(value))
        width_before = adwin.width
        for value in rng.normal(0.8, 0.05, size=600):
            adwin.add_element(float(value))
        assert adwin.width < width_before + 600
        assert adwin.estimation > 0.5

    def test_detects_error_rate_jump(self):
        adwin = ADWIN(delta=0.002)
        errors = make_error_stream(2000, 1000, 0.05, 0.6, seed=5)
        alarms = feed_errors(adwin, errors)
        assert any(alarm >= 2000 for alarm in alarms)

    def test_quiet_on_stationary_bernoulli(self):
        adwin = ADWIN(delta=0.002)
        errors = make_error_stream(4000, 0, 0.3, 0.3, seed=6)
        alarms = feed_errors(adwin, errors)
        assert len(alarms) <= 2

    def test_reset_clears_window(self):
        adwin = ADWIN()
        for _ in range(100):
            adwin.add_element(1.0)
        adwin.reset()
        assert adwin.width == 0
        assert adwin.estimation == 0.0

    def test_tracks_real_valued_signals(self):
        """ADWIN is used by RBM-IM on reconstruction errors (not only 0/1)."""
        adwin = ADWIN(delta=0.01)
        rng = np.random.default_rng(8)
        for value in rng.normal(1.0, 0.1, size=1500):
            adwin.add_element(float(value))
        for value in rng.normal(3.0, 0.1, size=400):
            adwin.add_element(float(value))
        assert adwin.estimation > 1.5
