"""Detector-specific tests for DDM, EDDM, and RDDM."""

import pytest

from conftest import feed_errors, make_error_stream
from repro.detectors import DDM, EDDM, RDDM


class TestDDM:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DDM(min_num_instances=0)
        with pytest.raises(ValueError):
            DDM(warning_level=3.0, drift_level=2.0)

    def test_warning_precedes_drift(self):
        detector = DDM(min_num_instances=30)
        errors = make_error_stream(1000, 800, 0.02, 0.5, seed=1)
        warning_at = None
        drift_at = None
        import numpy as np

        x = np.zeros(1)
        for index, error in enumerate(errors):
            detector.step(x, 1 if error else 0, 0)
            if detector.in_warning and warning_at is None:
                warning_at = index
            if detector.in_drift and drift_at is None:
                drift_at = index
                break
        assert warning_at is not None and drift_at is not None
        assert warning_at <= drift_at

    def test_no_test_before_min_instances(self):
        detector = DDM(min_num_instances=50)
        errors = [1.0] * 40  # all errors, but below the activation threshold
        assert feed_errors(detector, errors) == []

    def test_internal_state_resets_after_drift(self):
        detector = DDM()
        errors = make_error_stream(800, 400, 0.02, 0.7, seed=2)
        feed_errors(detector, errors)
        # After a drift the error-rate estimate restarts from scratch.
        assert detector._sample_count < len(errors)


class TestEDDM:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EDDM(alpha=0.8, beta=0.9)
        with pytest.raises(ValueError):
            EDDM(alpha=1.2, beta=0.9)

    def test_detects_increasing_error_density(self):
        detector = EDDM(min_num_errors=15)
        errors = make_error_stream(3000, 1200, 0.02, 0.5, seed=4)
        alarms = feed_errors(detector, errors)
        assert any(alarm >= 3000 for alarm in alarms)

    def test_ignores_error_free_stream(self):
        detector = EDDM()
        assert feed_errors(detector, [0.0] * 2000) == []

    def test_distance_statistics_updated_only_on_errors(self):
        detector = EDDM()
        feed_errors(detector, [0.0, 0.0, 1.0, 0.0, 1.0])
        assert detector._error_count == 2


class TestRDDM:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RDDM(warning_level=3.0, drift_level=2.0)
        with pytest.raises(ValueError):
            RDDM(max_concept_size=100, min_size_stable_concept=200)

    def test_pruning_keeps_detector_reactive_on_long_concepts(self):
        detector = RDDM(
            min_num_instances=60,
            max_concept_size=3_000,
            min_size_stable_concept=500,
            warning_limit=400,
        )
        errors = make_error_stream(6_000, 1_500, 0.05, 0.6, seed=7)
        alarms = feed_errors(detector, errors)
        post = [alarm for alarm in alarms if alarm >= 6_000]
        assert post and post[0] - 6_000 < 800

    def test_warning_limit_forces_drift(self):
        detector = RDDM(min_num_instances=30, warning_limit=5)
        # A slow, persistent degradation keeps the detector in warning; the
        # warning limit must eventually convert it into a drift.
        errors = make_error_stream(500, 3_000, 0.05, 0.22, seed=9)
        alarms = feed_errors(detector, errors)
        assert alarms, "warning_limit did not force a drift"

    def test_stored_errors_bounded(self):
        detector = RDDM(max_concept_size=1_000, min_size_stable_concept=200)
        feed_errors(detector, make_error_stream(5_000, 0, 0.1, 0.1, seed=3))
        assert len(detector._stored_errors) <= 1_000
