"""Unit tests for the detector base classes and the uniform step() API."""

import numpy as np
import pytest

from repro.detectors.base import (
    ClassConditionalDetector,
    DriftDetector,
    ErrorRateDetector,
    InstanceDetector,
)


class _AlwaysDriftAfter(ErrorRateDetector):
    """Toy detector signalling a drift at a fixed observation count."""

    def __init__(self, at: int) -> None:
        super().__init__()
        self._at = at
        self._count = 0

    def add_element(self, value: float) -> None:
        self._count += 1
        if self._count == self._at:
            self._in_drift = True


class _RecallDrop(ClassConditionalDetector):
    """Toy class-aware detector flagging class 1 after ten mistakes on it."""

    def __init__(self, n_classes: int) -> None:
        super().__init__(n_classes)
        self._misses = 0

    def add_result(self, y_true: int, y_pred: int) -> None:
        if y_true == 1 and y_pred != 1:
            self._misses += 1
            if self._misses == 10:
                self._in_drift = True
                self._drifted_classes = {1}


class _CountingInstanceDetector(InstanceDetector):
    def __init__(self) -> None:
        super().__init__(n_features=3, n_classes=2)
        self.seen = 0

    def add_instance(self, x: np.ndarray, y: int) -> None:
        self.seen += 1


class TestErrorRateDetector:
    def test_step_translates_prediction_to_error(self):
        detector = _AlwaysDriftAfter(at=5)
        x = np.zeros(2)
        for i in range(4):
            assert detector.step(x, 0, 0) is False
        assert detector.step(x, 0, 1) is True
        assert detector.in_drift

    def test_detections_record_positions(self):
        detector = _AlwaysDriftAfter(at=3)
        x = np.zeros(2)
        for _ in range(6):
            detector.step(x, 0, 1)
        assert detector.detections == [3]
        assert detector.n_observations == 6

    def test_drift_flag_clears_next_step(self):
        detector = _AlwaysDriftAfter(at=2)
        x = np.zeros(2)
        detector.step(x, 0, 1)
        detector.step(x, 0, 1)
        assert detector.in_drift
        detector.step(x, 0, 1)
        assert not detector.in_drift

    def test_reset_clears_bookkeeping(self):
        detector = _AlwaysDriftAfter(at=1)
        detector.step(np.zeros(2), 0, 1)
        detector.reset()
        assert detector.detections == []
        assert detector.n_observations == 0
        assert not detector.in_drift

    def test_base_warm_start_is_noop(self):
        detector = _AlwaysDriftAfter(at=1)
        detector.warm_start(np.zeros((5, 2)), np.zeros(5, dtype=int))
        assert detector.n_observations == 0


class TestClassConditionalDetector:
    def test_drifted_classes_reported(self):
        detector = _RecallDrop(n_classes=3)
        x = np.zeros(2)
        for _ in range(9):
            detector.step(x, 1, 0)
        assert not detector.in_drift
        detector.step(x, 1, 0)
        assert detector.in_drift
        assert detector.drifted_classes == {1}

    def test_drifted_classes_cleared_after_next_step(self):
        detector = _RecallDrop(n_classes=3)
        x = np.zeros(2)
        for _ in range(10):
            detector.step(x, 1, 0)
        detector.step(x, 0, 0)
        assert detector.drifted_classes is None

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            _RecallDrop(n_classes=1)


class TestInstanceDetector:
    def test_step_forwards_instances(self):
        detector = _CountingInstanceDetector()
        detector.step(np.ones(3), 1, 0)
        detector.step(np.ones(3), 0, 0)
        assert detector.seen == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            InstanceDetector.__init__(DriftDetector.__new__(_CountingInstanceDetector), 0, 2)
