"""Unit tests for the imbalance-aware baselines: PerfSim and DDM-OCI."""

import numpy as np
import pytest

from repro.detectors import DDM_OCI, PerfSim


def feed_results(detector, pairs):
    """Feed (y_true, y_pred) pairs; return positions where drifts fired."""
    alarms = []
    x = np.zeros(1)
    for index, (y_true, y_pred) in enumerate(pairs):
        if detector.step(x, y_true, y_pred):
            alarms.append(index)
    return alarms


def make_prediction_stream(n, recalls, n_classes, seed=0, priors=None):
    """Simulate predictions where class k is recalled with probability recalls[k]."""
    rng = np.random.default_rng(seed)
    priors = np.asarray(priors if priors is not None else [1.0 / n_classes] * n_classes)
    priors = priors / priors.sum()
    pairs = []
    for _ in range(n):
        y_true = int(rng.choice(n_classes, p=priors))
        if rng.random() < recalls[y_true]:
            y_pred = y_true
        else:
            others = [c for c in range(n_classes) if c != y_true]
            y_pred = int(rng.choice(others))
        pairs.append((y_true, y_pred))
    return pairs


class TestPerfSim:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PerfSim(n_classes=1)
        with pytest.raises(ValueError):
            PerfSim(n_classes=3, batch_size=5)
        with pytest.raises(ValueError):
            PerfSim(n_classes=3, lambda_=1.5)

    def test_quiet_on_stable_confusion_matrix(self):
        detector = PerfSim(n_classes=3, batch_size=200, lambda_=0.2)
        pairs = make_prediction_stream(4000, [0.9, 0.8, 0.85], 3, seed=1)
        assert len(feed_results(detector, pairs)) <= 1

    def test_detects_global_performance_collapse(self):
        detector = PerfSim(n_classes=3, batch_size=200, lambda_=0.2)
        stable = make_prediction_stream(2000, [0.9, 0.9, 0.9], 3, seed=2)
        collapsed = make_prediction_stream(2000, [0.2, 0.2, 0.2], 3, seed=3)
        alarms = feed_results(detector, stable + collapsed)
        assert any(alarm >= 2000 for alarm in alarms)

    def test_blames_changed_classes(self):
        detector = PerfSim(n_classes=4, batch_size=250, lambda_=0.15)
        stable = make_prediction_stream(2000, [0.9] * 4, 4, seed=4)
        # Only class 3 collapses.
        local = make_prediction_stream(2000, [0.9, 0.9, 0.9, 0.05], 4, seed=5)
        x = np.zeros(1)
        blamed: set[int] = set()
        for y_true, y_pred in stable + local:
            if detector.step(x, y_true, y_pred):
                blamed |= detector.drifted_classes or set()
        assert 3 in blamed

    def test_cosine_similarity_bounds(self):
        a = np.eye(3)
        b = np.eye(3)
        assert PerfSim._cosine_similarity(a, b) == pytest.approx(1.0)
        c = np.zeros((3, 3))
        assert PerfSim._cosine_similarity(a, c) == pytest.approx(1.0)


class TestDDMOCI:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DDM_OCI(n_classes=3, warning_threshold=0.8, drift_threshold=0.9)
        with pytest.raises(ValueError):
            DDM_OCI(n_classes=3, decay=1.5)

    def test_recall_estimates_track_truth(self):
        detector = DDM_OCI(n_classes=2, decay=0.95)
        pairs = make_prediction_stream(3000, [0.9, 0.3], 2, seed=6)
        feed_results(detector, pairs)
        assert detector.class_recall(0) > detector.class_recall(1)

    def test_detects_minority_recall_drop(self):
        detector = DDM_OCI(n_classes=3, decay=0.98, min_errors=30)
        priors = [0.8, 0.15, 0.05]
        stable = make_prediction_stream(4000, [0.9, 0.85, 0.9], 3, seed=7, priors=priors)
        dropped = make_prediction_stream(4000, [0.9, 0.85, 0.1], 3, seed=8, priors=priors)
        x = np.zeros(1)
        blamed = set()
        alarms = []
        for index, (y_true, y_pred) in enumerate(stable + dropped):
            if detector.step(x, y_true, y_pred):
                alarms.append(index)
                blamed |= detector.drifted_classes or set()
        assert any(alarm >= 4000 for alarm in alarms)
        assert 2 in blamed

    def test_quiet_when_recalls_stable(self):
        # DDM-OCI is known to be somewhat alarm-prone on noisy recall
        # trajectories; "quiet" here means a false-alarm rate well below 1%.
        detector = DDM_OCI(n_classes=3)
        pairs = make_prediction_stream(5000, [0.85, 0.8, 0.82], 3, seed=9)
        assert len(feed_results(detector, pairs)) <= 15

    def test_only_affected_class_reset(self):
        detector = DDM_OCI(n_classes=3, decay=0.98, min_errors=20)
        priors = [0.4, 0.4, 0.2]
        stable = make_prediction_stream(3000, [0.9, 0.9, 0.9], 3, seed=10, priors=priors)
        dropped = make_prediction_stream(3000, [0.9, 0.9, 0.05], 3, seed=11, priors=priors)
        feed_results(detector, stable + dropped)
        # Class 0 keeps accumulating observations; class 2 was reset at least once.
        assert detector._class_counts[0] > detector._class_counts[2]
