"""Snapshot/restore round-trips for every registry detector.

The versioned snapshot contract (:mod:`repro.core.snapshot`) promises that a
detector restored from ``snapshot()`` — after a strict-JSON round-trip, i.e.
exactly what crash-resume reads back from disk — continues **bit-identically**
to the uninterrupted instance: same flags, same detection positions, same
blamed classes.  This suite pins that promise at *every chunk boundary* of a
drifting stream, for the full zoo, on both the cloning (``from_snapshot``)
and the restore-in-place paths.  The chunk-exact rollback inside
``PrequentialRunner._advance_exact_segment`` and the mid-cell
``RunnerCheckpoint`` both ride on this contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jsonio import dumps_strict, loads_strict
from repro.detectors.base import DriftDetector
from repro.protocol.registry import DETECTOR_NAMES, build_detector

N_CLASSES = 4
N_FEATURES = 6
N_INSTANCES = 1_200
CHUNK = 150

DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]


def _drifting_inputs(seed: int):
    """A mid-stream drift in both the error rate and the feature distribution.

    Same shape as the reset-replay harness: error-stream detectors see the
    error rate jump from 10% to 55%, instance-based detectors (RBM-IM) see
    the feature distribution collapse into a narrow band at the same point.
    """
    rng = np.random.default_rng(seed)
    half = N_INSTANCES // 2
    features = rng.random((N_INSTANCES, N_FEATURES))
    features[half:] = 0.85 + 0.1 * features[half:]
    labels = rng.integers(0, N_CLASSES, N_INSTANCES)
    error_probability = np.where(np.arange(N_INSTANCES) < half, 0.1, 0.55)
    is_error = rng.random(N_INSTANCES) < error_probability
    offsets = rng.integers(1, N_CLASSES, N_INSTANCES)
    predictions = np.where(is_error, (labels + offsets) % N_CLASSES, labels)
    return features, labels.astype(np.int64), predictions.astype(np.int64)


def _json_roundtrip(snapshot: dict) -> dict:
    """What a persisted checkpoint actually reads back: strict JSON."""
    return loads_strict(dumps_strict(snapshot))


@pytest.mark.parametrize("name", DETECTORS)
def test_snapshot_clone_at_every_chunk_boundary(name: str) -> None:
    """A ``from_snapshot`` clone taken at any boundary finishes identically."""
    features, labels, predictions = _drifting_inputs(seed=505)

    reference = build_detector(name, N_FEATURES, N_CLASSES)
    ref_flags = reference.step_batch(features, labels, predictions)

    live = build_detector(name, N_FEATURES, N_CLASSES)
    for start in range(0, N_INSTANCES, CHUNK):
        clone = DriftDetector.from_snapshot(_json_roundtrip(live.snapshot()))
        assert type(clone) is type(live)
        tail_flags = clone.step_batch(
            features[start:], labels[start:], predictions[start:]
        )
        np.testing.assert_array_equal(
            tail_flags,
            ref_flags[start:],
            err_msg=f"{name}: clone from boundary {start} diverged",
        )
        assert clone.detections == reference.detections
        assert clone.detection_classes == reference.detection_classes
        end = start + CHUNK
        live.step_batch(
            features[start:end], labels[start:end], predictions[start:end]
        )
    assert live.detections == reference.detections
    # Sanity: the schedule must actually fire most detectors, or the tail
    # comparison above would pass vacuously.
    if name not in ("PerfSim",):
        assert reference.detections, f"{name} never fired on the stream"


@pytest.mark.parametrize("name", DETECTORS)
def test_snapshot_restores_in_place_over_dirty_state(name: str) -> None:
    """``restore`` overwrites a detector mid-flight on *different* data."""
    features, labels, predictions = _drifting_inputs(seed=606)
    half = N_INSTANCES // 2

    reference = build_detector(name, N_FEATURES, N_CLASSES)
    ref_flags = reference.step_batch(features, labels, predictions)

    source = build_detector(name, N_FEATURES, N_CLASSES)
    source.step_batch(features[:half], labels[:half], predictions[:half])
    snapshot = _json_roundtrip(source.snapshot())

    # A detector polluted by an unrelated stream must come back bit-exact.
    dirty = build_detector(name, N_FEATURES, N_CLASSES)
    other = _drifting_inputs(seed=707)
    dirty.step_batch(*other)
    dirty.restore(snapshot)

    tail_flags = dirty.step_batch(
        features[half:], labels[half:], predictions[half:]
    )
    np.testing.assert_array_equal(tail_flags, ref_flags[half:])
    assert dirty.detections == reference.detections
    assert dirty.detection_classes == reference.detection_classes
    assert dirty.n_observations == reference.n_observations


@pytest.mark.parametrize("name", DETECTORS)
def test_snapshot_version_and_kind_are_enforced(name: str) -> None:
    from repro.core.snapshot import SnapshotError

    detector = build_detector(name, N_FEATURES, N_CLASSES)
    snapshot = detector.snapshot()
    assert snapshot["kind"] == type(detector).__name__
    assert snapshot["version"] == type(detector).SNAPSHOT_VERSION

    stale = dict(snapshot, version=snapshot["version"] + 1)
    with pytest.raises(SnapshotError):
        detector.restore(stale)
    wrong_kind = dict(snapshot, kind="SomethingElse")
    with pytest.raises(SnapshotError):
        detector.restore(wrong_kind)
