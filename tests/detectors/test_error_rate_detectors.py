"""Behavioural tests shared by all error-rate drift detectors.

Each detector is fed a Bernoulli error stream whose error rate jumps from a
low to a high value at a known position; it must (i) stay quiet on the stable
prefix and (ii) fire within a reasonable delay after the change.
"""

import numpy as np
import pytest

from conftest import feed_errors, make_error_stream
from repro.detectors import (
    DDM,
    ECDDWT,
    EDDM,
    FHDDM,
    HDDM_A,
    HDDM_W,
    PageHinkley,
    RDDM,
    WSTD,
)

DETECTOR_FACTORIES = {
    "ddm": lambda: DDM(),
    "eddm": lambda: EDDM(min_num_errors=20),
    "rddm": lambda: RDDM(),
    "hddm_a": lambda: HDDM_A(),
    "hddm_w": lambda: HDDM_W(),
    "fhddm": lambda: FHDDM(window_size=100, delta=1e-6),
    "wstd": lambda: WSTD(window_size=75, max_old_instances=1000),
    "page_hinkley": lambda: PageHinkley(threshold=20.0),
    "ecdd": lambda: ECDDWT(),
}

CHANGE_AT = 2000

# Detector-specific false-alarm budgets on stationary data: detectors designed
# around an expected average run length (ECDD, ARL0 ~= 400) or known to be
# noisy on dense error streams (EDDM, HDDM_W) legitimately fire occasionally.
FALSE_ALARM_BUDGET = {"ecdd": 8, "eddm": 10, "hddm_w": 10, "rddm": 8}
DEFAULT_BUDGET = 4


def budget(name: str) -> int:
    return FALSE_ALARM_BUDGET.get(name, DEFAULT_BUDGET)


@pytest.mark.parametrize("name", sorted(DETECTOR_FACTORIES))
class TestAbruptErrorIncrease:
    def _run(self, name, p_before=0.05, p_after=0.6, seed=3):
        detector = DETECTOR_FACTORIES[name]()
        errors = make_error_stream(CHANGE_AT, 1500, p_before, p_after, seed=seed)
        return feed_errors(detector, errors)

    def test_detects_change(self, name):
        alarms = self._run(name)
        assert any(alarm >= CHANGE_AT for alarm in alarms), (
            f"{name} never fired after the change"
        )

    def test_detection_delay_is_bounded(self, name):
        alarms = self._run(name)
        post = [alarm for alarm in alarms if alarm >= CHANGE_AT]
        assert post and post[0] - CHANGE_AT < 1000

    def test_quiet_on_stable_prefix(self, name):
        alarms = self._run(name)
        false_alarms = [alarm for alarm in alarms if alarm < CHANGE_AT]
        assert len(false_alarms) <= budget(name), (
            f"{name} raised {false_alarms} before the change"
        )


@pytest.mark.parametrize("name", sorted(DETECTOR_FACTORIES))
class TestStationaryStream:
    def test_few_alarms_on_constant_error_rate(self, name):
        detector = DETECTOR_FACTORIES[name]()
        errors = make_error_stream(4000, 0, 0.2, 0.2, seed=11)
        alarms = feed_errors(detector, errors)
        assert len(alarms) <= 2 * budget(name), (
            f"{name} fired {len(alarms)} times on a stable stream"
        )


@pytest.mark.parametrize("name", sorted(DETECTOR_FACTORIES))
def test_reset_allows_reuse(name):
    detector = DETECTOR_FACTORIES[name]()
    errors = make_error_stream(500, 500, 0.05, 0.7, seed=5)
    feed_errors(detector, errors)
    detector.reset()
    assert detector.n_observations == 0
    assert detector.detections == []
    # After reset the detector behaves like a fresh instance on stable data.
    alarms = feed_errors(detector, make_error_stream(800, 0, 0.1, 0.1, seed=6))
    assert len(alarms) <= budget(name)
