"""Reset-then-replay determinism for every registry detector.

``DriftDetector.reset()`` must return a detector to a state indistinguishable
from a freshly constructed instance: after driving a detector through a
drifting stream (so it fires and accumulates concept state, windows, and —
for RBM-IM — trained weights), a reset followed by a replay of a second
stream must produce exactly the detections a brand-new detector produces on
that stream.  This pins the contract the prequential harness and the tuning
loops rely on when they reuse detector objects across runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocol.registry import DETECTOR_NAMES, build_detector

N_CLASSES = 4
N_FEATURES = 6
N_INSTANCES = 1_200

DETECTORS = [name for name in DETECTOR_NAMES if name != "none"]


def _drifting_inputs(seed: int):
    """A mid-stream drift in both the error rate and the feature distribution.

    Error-stream detectors see the error rate jump from 10% to 55%;
    instance-based detectors (RBM-IM) see the feature distribution collapse
    into a narrow band at the same point.
    """
    rng = np.random.default_rng(seed)
    half = N_INSTANCES // 2
    features = rng.random((N_INSTANCES, N_FEATURES))
    features[half:] = 0.85 + 0.1 * features[half:]
    labels = rng.integers(0, N_CLASSES, N_INSTANCES)
    error_probability = np.where(np.arange(N_INSTANCES) < half, 0.1, 0.55)
    is_error = rng.random(N_INSTANCES) < error_probability
    offsets = rng.integers(1, N_CLASSES, N_INSTANCES)
    predictions = np.where(is_error, (labels + offsets) % N_CLASSES, labels)
    return features, labels.astype(np.int64), predictions.astype(np.int64)


def _replay(detector, inputs) -> list[int]:
    features, labels, predictions = inputs
    alarms = []
    for i in range(N_INSTANCES):
        if detector.step(features[i], int(labels[i]), int(predictions[i])):
            alarms.append(i)
    return alarms


@pytest.mark.parametrize("name", DETECTORS)
def test_reset_replay_matches_fresh_detector(name: str) -> None:
    first = _drifting_inputs(seed=101)
    second = _drifting_inputs(seed=202)

    used = build_detector(name, N_FEATURES, N_CLASSES)
    dirty_alarms = _replay(used, first)
    assert used.n_observations == N_INSTANCES
    used.reset()

    assert used.n_observations == 0
    assert used.detections == []
    assert used.detection_classes == []
    assert not used.in_drift and not used.in_warning

    fresh = build_detector(name, N_FEATURES, N_CLASSES)
    replayed = _replay(used, second)
    expected = _replay(fresh, second)
    assert replayed == expected, (
        f"{name}: reset detector diverged from a fresh instance "
        f"(reset {replayed} vs fresh {expected}); stale state survived reset"
    )
    assert used.detections == fresh.detections
    assert used.detection_classes == fresh.detection_classes
    # Sanity: the drifting schedule actually exercised the detector at least
    # once across the two streams for most detectors; otherwise this test
    # would pass vacuously for a detector that never fires.
    if name not in ("PerfSim",):
        assert dirty_alarms or expected, f"{name} never fired on either stream"


@pytest.mark.parametrize("name", DETECTORS)
def test_reset_after_batch_replay_matches_fresh_batch(name: str) -> None:
    """The same contract holds on the step_batch path."""
    first = _drifting_inputs(seed=303)
    second = _drifting_inputs(seed=404)

    used = build_detector(name, N_FEATURES, N_CLASSES)
    used.step_batch(*first)
    used.reset()

    fresh = build_detector(name, N_FEATURES, N_CLASSES)
    flags_reset = used.step_batch(*second)
    flags_fresh = fresh.step_batch(*second)
    np.testing.assert_array_equal(flags_reset, flags_fresh)
    assert used.detections == fresh.detections
