"""Batch stepping of drift detectors.

The default ``step_batch`` adapter loops over ``step`` and therefore must be
exactly equivalent for every detector; RBM-IM's native override must produce
bit-identical detections (flags, positions, blamed classes) for any split of
the stream into batches.
"""

import numpy as np
import pytest

from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors import ADWIN, DDM, DDM_OCI, EDDM, FHDDM, PerfSim, RDDM, WSTD
from repro.streams.drift import ConceptScheduleStream
from repro.streams.generators import RandomRBFGenerator, SEAGenerator


@pytest.fixture(scope="module")
def drifting_data():
    """A stream with two sudden drifts plus a synthetic prediction stream."""
    generator = RandomRBFGenerator(
        n_classes=4, n_features=8, n_centroids=12, seed=3
    )
    stream = ConceptScheduleStream(generator, [(0, 0), (1_500, 6), (3_000, 2)])
    features, labels = stream.generate_batch(4_500)
    rng = np.random.default_rng(0)
    predictions = np.where(
        rng.random(labels.shape[0]) < 0.7, labels, rng.integers(0, 4, labels.shape[0])
    ).astype(np.int64)
    return features, labels, predictions


ERROR_DETECTOR_FACTORIES = [
    lambda: ADWIN(),
    lambda: DDM(),
    lambda: EDDM(),
    lambda: FHDDM(),
    lambda: RDDM(),
    lambda: WSTD(window_size=75),
    lambda: DDM_OCI(n_classes=4),
    lambda: PerfSim(n_classes=4, batch_size=250),
]


@pytest.mark.parametrize("factory", ERROR_DETECTOR_FACTORIES)
def test_default_adapter_matches_step_loop(factory, drifting_data):
    features, labels, predictions = drifting_data
    loop_detector = factory()
    batch_detector = factory()
    loop_flags = np.array(
        [
            loop_detector.step(features[i], int(labels[i]), int(predictions[i]))
            for i in range(labels.shape[0])
        ]
    )
    batch_flags = []
    for start in range(0, labels.shape[0], 333):
        batch_flags.append(
            batch_detector.step_batch(
                features[start : start + 333],
                labels[start : start + 333],
                predictions[start : start + 333],
            )
        )
    np.testing.assert_array_equal(loop_flags, np.concatenate(batch_flags))
    assert loop_detector.detections == batch_detector.detections
    assert loop_detector.n_observations == batch_detector.n_observations


class TestRBMIMNativeBatch:
    def _detector(self):
        return RBMIM(8, 4, RBMIMConfig(batch_size=25, seed=7))

    def test_bit_identical_to_instance_stepping(self, drifting_data):
        features, labels, predictions = drifting_data
        loop_detector = self._detector()
        batch_detector = self._detector()
        loop_flags = np.array(
            [
                loop_detector.step(features[i], int(labels[i]), int(predictions[i]))
                for i in range(labels.shape[0])
            ]
        )
        batch_flags = []
        # Deliberately misaligned split sizes relative to batch_size=25.
        start = 0
        for size in (7, 100, 1_003, 2_000, 10_000):
            batch_flags.append(
                batch_detector.step_batch(
                    features[start : start + size],
                    labels[start : start + size],
                    predictions[start : start + size],
                )
            )
            start += size
            if start >= labels.shape[0]:
                break
        np.testing.assert_array_equal(loop_flags, np.concatenate(batch_flags))
        assert loop_detector.detections == batch_detector.detections
        assert loop_detector.detection_classes == batch_detector.detection_classes
        assert loop_detector.batches_processed == batch_detector.batches_processed

    def test_detections_fire_on_drift(self, drifting_data):
        features, labels, predictions = drifting_data
        detector = self._detector()
        detector.warm_start(features[:200], labels[:200])
        detector.step_batch(features[200:], labels[200:], predictions[200:])
        assert detector.detections, "no drift detected on a double-drift stream"

    def test_shape_validation(self):
        detector = self._detector()
        with pytest.raises(ValueError):
            detector.step_batch(np.zeros((3, 5)), np.zeros(3, dtype=int), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            detector.step_batch(
                np.zeros((2, 8)), np.array([0, 9]), np.array([0, 0])
            )

    def test_empty_batch_is_noop(self):
        detector = self._detector()
        flags = detector.step_batch(
            np.empty((0, 8)), np.empty(0, dtype=int), np.empty(0, dtype=int)
        )
        assert flags.shape == (0,)
        assert detector.n_observations == 0


def test_empty_chunk_preserves_state():
    """A zero-length chunk is a strict no-op, like a zero-iteration loop.

    In particular it must not clear the drift/warning flags of the previous
    step — callers that forward possibly-empty chunks rely on this.
    """
    from repro.protocol.registry import DETECTOR_NAMES, build_detector

    rng = np.random.default_rng(9)
    features = rng.random((600, 8))
    labels = rng.integers(0, 4, 600).astype(np.int64)
    predictions = np.where(
        rng.random(600) < 0.5, labels, rng.integers(0, 4, 600)
    ).astype(np.int64)
    empty = (np.empty((0, 8)), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    for name in DETECTOR_NAMES:
        if name == "none":
            continue
        detector = build_detector(name, 8, 4)
        detector.step_batch(features, labels, predictions)
        before = (
            detector.in_drift,
            detector.in_warning,
            detector.drifted_classes,
            detector.n_observations,
            detector.detections,
        )
        flags = detector.step_batch(*empty)
        assert flags.shape == (0,)
        after = (
            detector.in_drift,
            detector.in_warning,
            detector.drifted_classes,
            detector.n_observations,
            detector.detections,
        )
        assert before == after, f"{name}: empty chunk mutated detector state"


def test_detection_classes_tracks_detections():
    features, labels = SEAGenerator(n_classes=3, seed=0).generate_batch(500)
    detector = DDM_OCI(n_classes=3)
    predictions = np.zeros_like(labels)
    detector.step_batch(features, labels, predictions)
    assert len(detector.detection_classes) == len(detector.detections)
