"""Detector-specific tests for FHDDM, WSTD, HDDM, Page-Hinkley, and ECDD."""

import numpy as np
import pytest

from conftest import feed_errors, make_error_stream
from repro.detectors import ECDDWT, FHDDM, HDDM_A, HDDM_W, PageHinkley, WSTD


class TestFHDDM:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FHDDM(window_size=1)
        with pytest.raises(ValueError):
            FHDDM(delta=0.0)

    def test_epsilon_matches_hoeffding_bound(self):
        detector = FHDDM(window_size=100, delta=1e-6)
        expected = np.sqrt(np.log(1e6) / 200.0)
        assert detector.epsilon == pytest.approx(expected)

    def test_no_decision_before_window_fills(self):
        detector = FHDDM(window_size=50)
        assert feed_errors(detector, [1.0] * 49) == []

    def test_detects_accuracy_drop(self):
        detector = FHDDM(window_size=100, delta=1e-6)
        errors = make_error_stream(1500, 600, 0.05, 0.65, seed=2)
        alarms = feed_errors(detector, errors)
        assert any(alarm >= 1500 for alarm in alarms)

    def test_smaller_delta_is_more_conservative(self):
        errors = make_error_stream(1500, 600, 0.05, 0.35, seed=3)
        loose = feed_errors(FHDDM(window_size=100, delta=1e-2), errors)
        strict = feed_errors(FHDDM(window_size=100, delta=1e-9), errors)
        assert len(strict) <= len(loose)


class TestWSTD:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WSTD(window_size=2)
        with pytest.raises(ValueError):
            WSTD(warning_significance=0.001, drift_significance=0.05)

    def test_detects_distribution_change(self):
        detector = WSTD(window_size=75, max_old_instances=1000)
        errors = make_error_stream(2000, 800, 0.05, 0.5, seed=4)
        alarms = feed_errors(detector, errors)
        assert any(alarm >= 2000 for alarm in alarms)

    def test_no_alarm_on_identical_constant_windows(self):
        detector = WSTD(window_size=25, min_instances=50)
        assert feed_errors(detector, [0.0] * 1000) == []

    def test_warning_state_reachable(self):
        detector = WSTD(
            window_size=50,
            warning_significance=0.2,
            drift_significance=1e-6,
            max_old_instances=500,
        )
        errors = make_error_stream(800, 400, 0.05, 0.4, seed=5)
        x = np.zeros(1)
        warned = False
        for error in errors:
            detector.step(x, 1 if error else 0, 0)
            warned = warned or detector.in_warning
        assert warned


class TestHDDM:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HDDM_A(drift_confidence=0.01, warning_confidence=0.001)
        with pytest.raises(ValueError):
            HDDM_W(lambda_=0.0)

    def test_hddm_a_faster_than_min_instances_free_ddm_on_abrupt(self):
        errors = make_error_stream(2000, 800, 0.05, 0.7, seed=6)
        alarms = feed_errors(HDDM_A(), errors)
        post = [alarm for alarm in alarms if alarm >= 2000]
        assert post and post[0] - 2000 < 400

    def test_hddm_w_detects_gradual_change(self):
        rng = np.random.default_rng(7)
        stable = (rng.random(2000) < 0.05).astype(float)
        ramp_probabilities = np.linspace(0.05, 0.5, 1500)
        ramp = (rng.random(1500) < ramp_probabilities).astype(float)
        alarms = feed_errors(HDDM_W(), np.concatenate([stable, ramp]))
        assert any(alarm >= 2000 for alarm in alarms)

    def test_two_sided_detects_error_decrease(self):
        errors = make_error_stream(2000, 1000, 0.6, 0.05, seed=8)
        one_sided = feed_errors(HDDM_A(two_sided=False), errors)
        two_sided = feed_errors(HDDM_A(two_sided=True), errors)
        assert any(a >= 2000 for a in two_sided)
        assert len([a for a in one_sided if a >= 2000]) <= len(
            [a for a in two_sided if a >= 2000]
        )


class TestPageHinkley:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(alpha=0.0)

    def test_detects_mean_increase(self):
        detector = PageHinkley(threshold=20.0)
        errors = make_error_stream(2000, 800, 0.05, 0.6, seed=9)
        alarms = feed_errors(detector, errors)
        assert any(alarm >= 2000 for alarm in alarms)

    def test_higher_threshold_fewer_alarms(self):
        errors = make_error_stream(2000, 800, 0.05, 0.4, seed=10)
        low = feed_errors(PageHinkley(threshold=5.0), errors)
        high = feed_errors(PageHinkley(threshold=80.0), errors)
        assert len(high) <= len(low)


class TestECDD:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ECDDWT(lambda_=0.0)
        with pytest.raises(ValueError):
            ECDDWT(warning_fraction=1.5)

    def test_detects_error_increase(self):
        detector = ECDDWT(lambda_=0.2)
        errors = make_error_stream(2000, 800, 0.05, 0.5, seed=11)
        alarms = feed_errors(detector, errors)
        assert any(alarm >= 2000 for alarm in alarms)

    def test_warning_before_drift_possible(self):
        detector = ECDDWT(lambda_=0.2, warning_fraction=0.3)
        errors = make_error_stream(1000, 500, 0.05, 0.5, seed=12)
        x = np.zeros(1)
        states = []
        for error in errors:
            detector.step(x, 1 if error else 0, 0)
            states.append((detector.in_warning, detector.in_drift))
        first_warning = next((i for i, s in enumerate(states) if s[0]), None)
        first_drift = next((i for i, s in enumerate(states) if s[1]), None)
        assert first_drift is not None
        if first_warning is not None:
            assert first_warning <= first_drift
