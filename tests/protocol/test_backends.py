"""The pluggable execution-backend layer: registry, fallbacks, cluster.

The cluster backend is exercised without a real cluster: any object with the
``submit`` / ``scheduler_info`` / ``close`` surface is a valid client, so
fakes drive the lifecycle paths — explicit connect, worker health checks,
per-cell retry on lost workers, and graceful degradation-to-local both when
no cluster is reachable and when the cluster dies mid-run.
"""

from __future__ import annotations

import warnings

import pytest

from repro.classifiers import GaussianNaiveBayes
from repro.detectors import FHDDM
from repro.evaluation.grid import (
    CellTask,
    GridCell,
    cell_record,
    run_cell_tasks,
    tasks_picklable,
)
from repro.protocol.backends import (
    ClusterBackend,
    ExecutionBackend,
    SerialBackend,
    WorkerLost,
    backend_names,
    make_backend,
    register_backend,
    resolve_backend,
)
from repro.streams.scenarios import make_artificial_stream

N_INSTANCES = 300


def nb_factory(n_features, n_classes):
    return GaussianNaiveBayes(n_features, n_classes)


def fhddm_factory(n_features, n_classes):
    return FHDDM()


def tiny_stream(seed: int):
    return make_artificial_stream(
        "rbf", 4, n_instances=N_INSTANCES, max_imbalance_ratio=10.0, seed=seed
    )


def _task(name: str, seed: int = 0, **kwargs) -> CellTask:
    return CellTask(
        cell=GridCell(stream=name, detector="FHDDM", seed=seed),
        stream_factory=kwargs.pop("stream_factory", tiny_stream),
        detector_factory=fhddm_factory,
        classifier_factory=nb_factory,
        run_kwargs={"n_instances": N_INSTANCES},
        **kwargs,
    )


# ---------------------------------------------------------------- registry
def test_builtin_backends_are_registered():
    assert backend_names() == ["cluster", "process", "serial", "thread"]


def test_unknown_backend_is_a_value_error():
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend("bogus")
    with pytest.raises(ValueError, match="unknown backend"):
        run_cell_tasks([_task("a")], backend="bogus")


def test_resolve_accepts_instances_and_rejects_junk():
    backend = SerialBackend()
    assert resolve_backend(backend) is backend
    assert isinstance(resolve_backend("serial"), SerialBackend)
    with pytest.raises(TypeError):
        resolve_backend(42)


def test_third_party_backends_register_and_run():
    class CountingBackend(SerialBackend):
        name = "counting"
        calls = 0

        def run(self, tasks, *, max_workers=None, progress=None):
            CountingBackend.calls += 1
            return super().run(tasks, max_workers=max_workers, progress=progress)

    register_backend("counting", CountingBackend)
    try:
        assert "counting" in backend_names()
        assert isinstance(make_backend("counting"), ExecutionBackend)
        results = run_cell_tasks([_task("a")], backend="counting")
        assert CountingBackend.calls == 1
        assert results[0].ok
    finally:
        from repro.protocol import backends as backends_module

        backends_module._REGISTRY.pop("counting", None)


# ----------------------------------------------------- picklability probing
def test_probe_covers_kwargs_not_just_factories():
    """An unpicklable value hiding in runner_kwargs must fail the probe —
    the old three-factory probe let it through and every cell then died on
    the process backend."""
    clean = _task("a")
    assert tasks_picklable([clean])
    poisoned = _task("b", runner_kwargs={"hook": lambda: None})
    assert not tasks_picklable([poisoned])
    poisoned_run = CellTask(
        cell=clean.cell,
        stream_factory=clean.stream_factory,
        detector_factory=clean.detector_factory,
        classifier_factory=clean.classifier_factory,
        run_kwargs={"n_instances": N_INSTANCES, "junk": lambda: None},
    )
    assert not tasks_picklable([poisoned_run])


def test_process_backend_warns_when_degrading_to_threads():
    closure_seed = 0
    tasks = [_task("a", stream_factory=lambda seed: tiny_stream(closure_seed))]
    with pytest.warns(RuntimeWarning, match="degrading to the thread backend"):
        results = run_cell_tasks(tasks, backend="process", max_workers=1)
    assert results[0].ok


# ---------------------------------------------------------- strict records
def test_cell_record_replaces_nonfinite_floats():
    """A broken-pool cell's nan wall_time must serialise as null, not NaN."""
    import json

    from repro.evaluation.grid import GridCellResult

    failed = GridCellResult(
        cell=GridCell(stream="s", detector="d", seed=0),
        result=None,
        wall_time=float("nan"),
        error="Traceback: broken pool",
    )
    record = cell_record(failed)
    assert record["wall_time"] is None

    def reject(token):
        raise AssertionError(f"non-strict constant {token!r}")

    json.loads(json.dumps(record), parse_constant=reject)


# ------------------------------------------------------------ fake clusters
class FakeFuture:
    def __init__(self, compute):
        self._compute = compute

    def result(self):
        return self._compute()


class FakeClient:
    """Duck-typed distributed.Client: runs submissions inline on result()."""

    def __init__(self, n_workers=2, fail_plan=None):
        self.n_workers = n_workers
        self.fail_plan = dict(fail_plan or {})  # cell stream -> failures left
        self.submissions = 0
        self.closed = False

    def submit(self, fn, *args):
        self.submissions += 1
        cell = args[0]

        def compute():
            if self.fail_plan.get(cell.stream, 0) > 0:
                self.fail_plan[cell.stream] -= 1
                raise WorkerLost(f"worker running {cell.stream} died")
            return fn(*args)

        return FakeFuture(compute)

    def scheduler_info(self):
        return {"workers": {f"w{i}": {} for i in range(self.n_workers)}}

    def close(self):
        self.closed = True


def test_cluster_runs_cells_and_closes_client():
    client = FakeClient()
    backend = ClusterBackend(client_factory=lambda: client)
    results = backend.run([_task("a"), _task("b", seed=1)])
    assert [r.ok for r in results] == [True, True]
    assert client.submissions == 2
    assert client.closed


def test_cluster_retries_cells_on_lost_workers():
    client = FakeClient(fail_plan={"flaky": 1})
    backend = ClusterBackend(client_factory=lambda: client)
    results = backend.run([_task("flaky"), _task("ok", seed=1)])
    assert [r.ok for r in results] == [True, True]
    assert client.submissions == 3  # the lost cell was resubmitted once


def test_cluster_writes_off_repeat_offenders_only():
    client = FakeClient(fail_plan={"doomed": 99})
    backend = ClusterBackend(client_factory=lambda: client, max_retries=2)
    results = backend.run([_task("doomed"), _task("ok", seed=1)])
    by_stream = {r.cell.stream: r for r in results}
    assert by_stream["ok"].ok
    assert not by_stream["doomed"].ok
    assert "worker running doomed died" in by_stream["doomed"].error


def test_cluster_degrades_to_local_when_unreachable():
    def no_cluster():
        raise ConnectionRefusedError("nothing listening")

    backend = ClusterBackend(
        client_factory=no_cluster, fallback="serial", address="tcp://nowhere:1"
    )
    with pytest.warns(RuntimeWarning, match="no cluster reachable"):
        results = backend.run([_task("a")])
    assert results[0].ok


def test_cluster_degrades_when_scheduler_has_no_workers():
    client = FakeClient(n_workers=0)
    backend = ClusterBackend(client_factory=lambda: client, fallback="serial")
    with pytest.warns(RuntimeWarning, match="no cluster reachable"):
        results = backend.run([_task("a")])
    assert results[0].ok
    assert client.closed  # the useless client was not leaked


def test_cluster_degrades_remainder_when_cluster_dies_mid_run():
    class DyingClient(FakeClient):
        def scheduler_info(self):
            # Healthy at connect time, gone by the first health re-check.
            self.n_workers -= 1
            return super().scheduler_info()

    client = DyingClient(n_workers=2, fail_plan={"flaky": 1})
    backend = ClusterBackend(client_factory=lambda: client, fallback="serial")
    with pytest.warns(RuntimeWarning, match="became unhealthy"):
        results = backend.run([_task("flaky"), _task("ok", seed=1)])
    assert [r.ok for r in results] == [True, True]


def test_cluster_gathers_in_completion_order():
    """A finished cell must reach progress (and thus be persisted) the
    moment it completes, not wait behind an earlier-submitted cell still
    running — otherwise a kill loses completed-but-ungathered results."""

    class ReorderingClient(FakeClient):
        def __init__(self):
            super().__init__()
            self.gathered = []

        def submit(self, fn, *args):
            self.submissions += 1
            cell = args[0]
            client = self

            class PollableFuture:
                def done(self):
                    if cell.stream == "slow":
                        # "slow" only finishes after "fast" was gathered.
                        return "fast" in client.gathered
                    return True

                def result(self):
                    client.gathered.append(cell.stream)
                    return fn(*args)

            return PollableFuture()

    client = ReorderingClient()
    backend = ClusterBackend(client_factory=lambda: client, poll_interval=0.001)
    finished = []
    results = backend.run(
        [_task("slow"), _task("fast", seed=1)],
        progress=lambda r: finished.append(r.cell.stream),
    )
    assert finished == ["fast", "slow"]  # completion order, not submission
    assert [r.cell.stream for r in results] == ["slow", "fast"]  # input order
    assert all(r.ok for r in results)


def test_cluster_default_factory_degrades_without_dask():
    """No dask in the environment: the real default path must warn + run."""
    pytest.importorskip  # (dask is deliberately NOT importable here)
    try:
        import distributed  # noqa: F401

        pytest.skip("dask.distributed installed; default factory would connect")
    except ImportError:
        pass
    backend = ClusterBackend(fallback="serial")
    with pytest.warns(RuntimeWarning, match="degrading to local 'serial'"):
        results = backend.run([_task("a")])
    assert results[0].ok


def test_pipeline_accepts_backend_instances(tmp_path):
    from repro.protocol.pipeline import ProtocolPipeline
    from repro.protocol.spec import ProtocolSpec

    spec = ProtocolSpec.quick()
    spec.n_instances = 400
    spec.window_size = 100
    spec.pretrain_size = 50
    spec.drift_tolerance = 200
    spec.__post_init__()
    client = FakeClient()
    backend = ClusterBackend(client_factory=lambda: client)
    pipeline = ProtocolPipeline(spec, str(tmp_path / "results"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a healthy fake cluster never warns
        summary = pipeline.run(backend=backend)
    assert summary.n_executed == 2
    assert summary.n_failed == 0
    assert pipeline.status().done
