"""The sharded results store: round-trips, crashes, compaction, parity, speed.

Holds :class:`ShardedResultsStore` to the exact contract of the single-file
store — any visible record is complete, any interrupted write (torn segment
tail, killed compaction) is invisible or redundant, never corrupting — plus
the properties that justify its existence: ``statuses()`` answers from the
index without parsing per-cell files, and a full pipeline run over it is
record-for-record identical to the single-file store.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.sharded_store import ShardedResultsStore
from repro.protocol.spec import ProtocolSpec
from repro.protocol.store import ResultsStore

# JSON-representable values (round-trippable: no NaN, no non-string keys).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=15), children, max_size=5),
    ),
    max_leaves=20,
)
_records = st.dictionaries(st.text(max_size=20), _json_values, max_size=8)
_keys = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=".-_"
    ),
    min_size=1,
    max_size=60,
)

#: Record fields that legitimately differ between two runs of the same cell.
_VOLATILE = ("wall_time", "detector_time", "classifier_time")


def _stable(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in _VOLATILE}


def quick_spec() -> ProtocolSpec:
    spec = ProtocolSpec.quick()
    spec.n_instances = 400
    spec.window_size = 100
    spec.pretrain_size = 50
    spec.drift_tolerance = 200
    spec.__post_init__()
    return spec


# --------------------------------------------------------------- round trips
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(key=_keys, record=_records)
def test_round_trip(tmp_path_factory, key, record):
    store = ShardedResultsStore(tmp_path_factory.mktemp("store"))
    store.put(key, record)
    assert key in store
    assert store.get(key) == record
    # A fresh store over the same directory (process-restart analogue) sees
    # the identical record — before AND after compaction.
    assert ShardedResultsStore(store.root).get(key) == record
    store.compact()
    reopened = ShardedResultsStore(store.root)
    assert reopened.get(key) == record
    assert reopened.keys() == [key]


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(first=_records, second=_records)
def test_put_overwrites_last_wins_across_compaction(tmp_path_factory, first, second):
    store = ShardedResultsStore(tmp_path_factory.mktemp("store"))
    store.put("cell", first)
    store.compact()
    store.put("cell", second)  # segment overlays the index
    assert store.get("cell") == second
    assert len(store) == 1
    store.compact()
    assert store.get("cell") == second


# ------------------------------------------------------- corruption tolerance
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(record=_records, cut=st.integers(min_value=1, max_value=400))
def test_torn_segment_tail_reads_as_absent(tmp_path_factory, record, cut):
    """SIGKILL mid-append leaves a torn last line: that record (and only
    that record) reads as absent; earlier lines in the segment survive."""
    store = ShardedResultsStore(tmp_path_factory.mktemp("store"))
    store.put("intact", {"v": 1})
    segment = store.put("victim", record)
    store.close()

    payload = segment.read_bytes()
    intact_len = payload.index(b"\n") + 1
    torn = payload[: max(intact_len, len(payload) - cut)]
    segment.write_bytes(torn)

    reloaded = ShardedResultsStore(store.root)
    assert reloaded.get("intact") == {"v": 1}
    victim = reloaded.get("victim")
    # Truncation that only ate the trailing newline leaves a complete record.
    assert victim is None or victim == record
    if victim is None:
        assert "victim" not in reloaded.statuses()
        # The pipeline's response is to recompute and re-put: that heals it.
        reloaded.put("victim", record)
        assert reloaded.get("victim") == record


def test_mid_segment_garbage_is_skipped(tmp_path):
    store = ShardedResultsStore(tmp_path / "store")
    segment = store.put("a", {"v": 1})
    store.close()
    with open(segment, "ab") as handle:
        handle.write(b"\x00\xffnot json at all\n")
        handle.write(b'{"k": 42, "r": {"bad": "key type"}}\n')
        handle.write(b'["not", "an", "object"]\n')
    store.put("b", {"v": 2})
    assert dict(store.records()) == {"a": {"v": 1}, "b": {"v": 2}}
    store.compact()
    assert dict(store.records()) == {"a": {"v": 1}, "b": {"v": 2}}


def test_unreadable_index_is_treated_as_absent_not_fatal(tmp_path):
    store = ShardedResultsStore(tmp_path / "store")
    store.put("a", {"v": 1})
    store.compact()
    store.index_path.write_bytes(b"this is not a sqlite database")
    reloaded = ShardedResultsStore(store.root)
    assert reloaded.get("a") is None  # absent, like any corrupt record
    reloaded.put("a", {"v": 2})  # recompute-and-heal still works...
    assert reloaded.get("a") == {"v": 2}
    reloaded.compact()  # ...and compaction rebuilds a valid index
    assert ShardedResultsStore(store.root).get("a") == {"v": 2}


# ------------------------------------------------------- killed compactions
def test_kill_before_index_replace_loses_nothing(tmp_path, monkeypatch):
    """Dying before os.replace leaves the old store fully intact."""
    store = ShardedResultsStore(tmp_path / "store")
    records = {f"k{i}": {"v": i} for i in range(5)}
    store.put_many(records.items())
    store.compact()
    store.put("k5", {"v": 5})
    records["k5"] = {"v": 5}

    real_replace = os.replace

    def dies(src, dst):
        raise KeyboardInterrupt("simulated kill mid-compaction")

    monkeypatch.setattr(os, "replace", dies)
    with pytest.raises(KeyboardInterrupt):
        store.compact()
    monkeypatch.setattr(os, "replace", real_replace)

    reloaded = ShardedResultsStore(store.root)
    assert dict(reloaded.records()) == records
    reloaded.compact()  # the stray tmp database is cleaned up here
    assert dict(reloaded.records()) == records
    assert not list(reloaded.root.glob(".tmp-*"))
    assert not list((reloaded.root / "segments").iterdir())


def test_kill_between_replace_and_segment_unlink_dedupes(tmp_path, monkeypatch):
    """Dying after the new index is visible but before the folded segments
    are unlinked leaves duplicates that reads dedupe and compaction removes."""
    store = ShardedResultsStore(tmp_path / "store")
    records = {f"k{i}": {"v": i} for i in range(5)}
    store.put_many(records.items())

    real_unlink = os.unlink
    index_name = store.index_path.name

    def dies(path, *args, **kwargs):
        if str(path).endswith(".jsonl"):
            raise KeyboardInterrupt("simulated kill mid-compaction")
        return real_unlink(path, *args, **kwargs)

    monkeypatch.setattr(os, "unlink", dies)
    with pytest.raises(KeyboardInterrupt):
        store.compact()
    monkeypatch.setattr(os, "unlink", real_unlink)

    # Index and segments now both hold every record; the merge dedupes.
    reloaded = ShardedResultsStore(store.root)
    assert (reloaded.root / index_name).is_file()
    assert list((reloaded.root / "segments").iterdir())
    assert dict(reloaded.records()) == records

    reloaded.compact()
    assert dict(reloaded.records()) == records
    assert not list((reloaded.root / "segments").iterdir())


# ------------------------------------------------------------ pipeline parity
def test_pipeline_parity_with_single_file_store(tmp_path):
    """Both stores, same spec: identical keys and identical stable records."""
    spec = quick_spec()
    json_store = ResultsStore(tmp_path / "json")
    sharded = ShardedResultsStore(tmp_path / "sharded")
    ProtocolPipeline(spec, json_store).run(backend="serial")
    pipeline = ProtocolPipeline(spec, sharded)
    pipeline.run(backend="serial")

    assert sharded.keys() == json_store.keys()
    assert pipeline.status().done

    json_records = dict(json_store.records())
    for key, record in sharded.records():
        assert _stable(record) == _stable(json_records[key])

    # Compaction changes the layout, not the contents — and completed_records
    # (the report's input) agrees with the single-file pipeline's.
    sharded.compact()
    json_completed = ProtocolPipeline(spec, json_store).completed_records()
    sharded_completed = ProtocolPipeline(spec, sharded).completed_records()
    assert [_stable(r) for r in sharded_completed] == [
        _stable(r) for r in json_completed
    ]


def test_pipeline_resume_on_sharded_store(tmp_path):
    """Interrupt after one persisted cell; the re-run computes only the rest."""

    class KillAfterOne:
        seen = 0

        def __call__(self, cell_result):
            KillAfterOne.seen += 1
            if KillAfterOne.seen >= 1:
                raise KeyboardInterrupt("simulated kill")

    spec = quick_spec()
    store = ShardedResultsStore(tmp_path / "results")
    pipeline = ProtocolPipeline(spec, store)
    with pytest.raises(KeyboardInterrupt):
        pipeline.run(backend="serial", progress=KillAfterOne())

    status = pipeline.status()
    assert status.n_completed == 1
    assert status.n_pending == 1
    (done_key,) = [key for _, key in pipeline.cells() if store.get(key) is not None]
    first_record = store.get(done_key)

    summary = pipeline.run(backend="serial")
    assert summary.n_skipped == 1
    assert summary.n_executed == 1
    assert done_key not in summary.executed_keys
    assert pipeline.status().done
    # The surviving record was not recomputed (byte-equal, volatile included).
    assert store.get(done_key) == first_record


def test_pipeline_resume_across_compaction(tmp_path):
    spec = quick_spec()
    store = ShardedResultsStore(tmp_path / "results")
    pipeline = ProtocolPipeline(spec, store)
    pipeline.run(backend="serial", max_cells=1)
    store.compact()
    summary = ProtocolPipeline(spec, ShardedResultsStore(store.root)).run(
        backend="serial"
    )
    assert summary.n_skipped == 1
    assert summary.n_executed == 1


def test_failed_records_are_retried_and_replaced(tmp_path):
    spec = quick_spec()
    store = ShardedResultsStore(tmp_path / "results")
    pipeline = ProtocolPipeline(spec, store)
    pipeline.run(backend="serial")

    _, key = pipeline.cells()[0]
    record = store.get(key)
    record["error"] = "Traceback (most recent call last): boom"
    store.put(key, record)
    assert len(pipeline.pending(retry_failed=False)) == 0
    assert len(pipeline.pending(retry_failed=True)) == 1

    summary = pipeline.run(backend="serial")
    assert summary.n_executed == 1
    assert store.get(key)["error"] is None


# ------------------------------------------------------------ strict records
def test_appends_are_strict_json_lines(tmp_path):
    store = ShardedResultsStore(tmp_path / "store")
    segment = store.put(
        "cell", {"wall_time": float("nan"), "delay": float("inf"), "ok": 1.5}
    )
    store.close()

    def reject(token):
        raise AssertionError(f"non-strict constant {token!r}")

    for line in segment.read_text(encoding="utf-8").splitlines():
        json.loads(line, parse_constant=reject)
    assert store.get("cell") == {"wall_time": None, "delay": None, "ok": 1.5}
    store.compact()
    row = sqlite3.connect(store.index_path).execute(
        "SELECT record FROM records"
    ).fetchone()
    json.loads(row[0], parse_constant=reject)


def test_legacy_nan_lines_still_read(tmp_path):
    """Segments written before the strict-JSON fix must stay readable."""
    store = ShardedResultsStore(tmp_path / "store")
    legacy = store.root / "segments" / "seg-0-legacy.jsonl"
    legacy.parent.mkdir(parents=True)
    legacy.write_text('{"k": "old", "r": {"wall_time": NaN}}\n', encoding="utf-8")
    record = store.get("old")
    assert record is not None and record["wall_time"] != record["wall_time"]
    store.compact()  # re-serialised strictly
    assert ShardedResultsStore(store.root).get("old") == {"wall_time": None}


# ------------------------------------------------------- temporal ordering
def test_newer_segments_win_regardless_of_name_sort(tmp_path):
    """Last-write-wins must follow write time, not filename sort: a resumed
    run's pid can sort lexicographically *before* the original run's
    (e.g. pid 102345 after pid 9841, since '1' < '9'), and its retried
    record must still win — including through compaction."""
    store = ShardedResultsStore(tmp_path / "store")
    segments = store.root / "segments"
    segments.mkdir(parents=True)
    stale = segments / "seg-9841-oldrun.jsonl"  # legacy name, no stamp
    fresh = segments / "seg-102345-newrun.jsonl"  # sorts before 'seg-9841-'
    stale.write_text(
        '{"k": "cell", "r": {"error": "Traceback: boom"}}\n', encoding="utf-8"
    )
    fresh.write_text('{"k": "cell", "r": {"error": null}}\n', encoding="utf-8")
    past = time.time_ns() - 3_600_000_000_000  # stale really is older
    os.utime(stale, ns=(past, past))

    assert store.get("cell") == {"error": None}
    assert store.statuses() == {"cell": True}
    store.compact()  # must bake the newer record into the index...
    reopened = ShardedResultsStore(store.root)
    assert reopened.get("cell") == {"error": None}
    assert not list(segments.iterdir())  # ...and drop both segments


def test_retry_in_fresh_store_instance_overrides_failure(tmp_path):
    """The resume flow: run 1 records a failure, run 2 (a different writer,
    therefore a different segment) retries successfully.  The success must
    win on read and survive compaction."""
    run1 = ShardedResultsStore(tmp_path / "store")
    run1.put("cell", {"error": "Traceback: boom"})
    run1.close()
    run2 = ShardedResultsStore(tmp_path / "store")
    run2.put("cell", {"error": None, "pmauc": 0.9})
    run2.close()

    reloaded = ShardedResultsStore(tmp_path / "store")
    assert reloaded.get("cell") == {"error": None, "pmauc": 0.9}
    assert reloaded.statuses() == {"cell": True}
    reloaded.compact()
    assert ShardedResultsStore(store_root := reloaded.root).get("cell") == {
        "error": None,
        "pmauc": 0.9,
    }
    assert ShardedResultsStore(store_root).statuses() == {"cell": True}


def test_discard_in_later_store_instance_wins(tmp_path):
    run1 = ShardedResultsStore(tmp_path / "store")
    run1.put("cell", {"v": 1})
    run1.close()
    run2 = ShardedResultsStore(tmp_path / "store")
    assert run2.discard("cell")
    run2.close()
    reloaded = ShardedResultsStore(tmp_path / "store")
    assert reloaded.get("cell") is None
    reloaded.compact()
    assert ShardedResultsStore(reloaded.root).get("cell") is None


# ------------------------------------------------------- deferred layout
def test_read_only_open_creates_no_layout(tmp_path):
    """Opening (and reading) a directory as a sharded store must leave no
    trace — an eagerly-created segments/ dir used to poison store-format
    auto-detection against existing JSON stores."""
    root = tmp_path / "store"
    store = ShardedResultsStore(root)
    assert store.statuses() == {}
    assert store.keys() == []
    assert store.get("anything") is None
    assert len(store) == 0
    assert not root.exists()
    store.put("a", {"v": 1})  # the first write scaffolds the layout
    assert (root / "segments").is_dir()
    assert store.get("a") == {"v": 1}


# ------------------------------------------------------------------ indexing
def test_statuses_scale_via_index_not_per_file_parses(tmp_path):
    """status() over 10k cells answers from the index >=20x faster than the
    single-file store's file-per-key parse loop."""
    n = 10_000
    record = {
        "error": None,
        "pmauc": 0.5,
        "detections": [100, 200, 300],
        "drift_report": {"mean_delay": 12.5, "n_detected": 3},
    }
    payload = json.dumps(record)

    json_root = tmp_path / "json-store"
    json_root.mkdir()
    keys = [f"cell-{i:05d}" for i in range(n)]
    for key in keys:
        (json_root / f"{key}.json").write_text(payload, encoding="utf-8")
    json_store = ResultsStore(json_root)

    sharded = ShardedResultsStore(tmp_path / "sharded")
    sharded.put_many((key, record) for key in keys)
    sharded.compact()

    started = time.perf_counter()
    parsed = {key: json_store.get(key) is not None for key in keys}
    per_file_seconds = time.perf_counter() - started
    assert all(parsed.values())

    indexed_seconds = float("inf")
    for _ in range(3):  # best-of-3 to shrug off scheduler noise
        started = time.perf_counter()
        statuses = sharded.statuses()
        indexed_seconds = min(indexed_seconds, time.perf_counter() - started)
    assert len(statuses) == n and all(statuses.values())

    assert per_file_seconds >= 20 * indexed_seconds, (
        f"indexed statuses() not >=20x faster: per-file {per_file_seconds:.3f}s "
        f"vs indexed {indexed_seconds:.4f}s"
    )


def test_get_many_prefers_segment_overlay(tmp_path):
    store = ShardedResultsStore(tmp_path / "store")
    store.put_many([("a", {"v": 1}), ("b", {"v": 2})])
    store.compact()
    store.put("b", {"v": 22})
    store.discard("a")
    assert store.get_many(["a", "b", "ghost"]) == {"b": {"v": 22}}
