"""ProtocolSpec expansion, validation, serialisation, and the registry."""

from __future__ import annotations

import pytest

from repro.detectors.base import DriftDetector
from repro.protocol.registry import DETECTOR_NAMES, build_detector, detector_factory
from repro.protocol.spec import ProtocolCell, ProtocolSpec, benchmark_name, build_scenario
from repro.streams.scenarios import ScenarioStream


class TestExpansion:
    def test_paper_spec_matches_the_papers_cross_product(self):
        spec = ProtocolSpec.paper(seeds=(0, 1))
        # 4 families x 3 class counts x 3 scenarios x 6 detectors x 2 seeds.
        assert len(spec) == 4 * 3 * 3 * 6 * 2
        cells = spec.expand()
        assert len(cells) == len(spec)
        assert len(set(cells)) == len(cells)
        assert len(set(spec.benchmarks())) == 36

    def test_expansion_order_is_deterministic(self):
        spec = ProtocolSpec.quick()
        assert spec.expand() == spec.expand()
        assert [cell.detector for cell in spec.expand()] == ["DDM", "RBM-IM"]

    def test_benchmark_names_match_scenario_builders(self):
        for scenario_id in range(1, 10):
            built = build_scenario(
                0,
                family="rbf",
                n_classes=5,
                scenario=scenario_id,
                n_instances=500,
                n_drifts=1,
                max_imbalance_ratio=10.0,
            )
            assert isinstance(built, ScenarioStream)
            assert built.name == benchmark_name("rbf", 5, scenario_id)

    def test_every_scenario_family_emits_ground_truth(self):
        """Acceptance: all 9 families build, with exact per-family ground truth."""
        for scenario_id in range(1, 10):
            built = build_scenario(
                0,
                family="rbf",
                n_classes=5,
                scenario=scenario_id,
                n_instances=600,
                n_drifts=1,
                max_imbalance_ratio=10.0,
            )
            assert len(built.drift_points) == len(built.drifted_classes)
            if scenario_id == 9:
                assert built.drift_points == []  # blips are not real drifts
                assert built.metadata["blips"]
            else:
                assert built.drift_points, scenario_id
            if scenario_id == 3:
                assert built.drifted_classes == [[4]]
            if scenario_id == 6:
                # Smallest class arrives, majority class leaves.
                assert built.drifted_classes == [[4], [0]]

    def test_stream_factory_is_picklable_and_seed_sensitive(self):
        import pickle

        spec = ProtocolSpec.quick()
        cell = spec.expand()[0]
        factory = pickle.loads(pickle.dumps(spec.stream_factory(cell)))
        a = factory(0)
        b = factory(1)
        xa, _ = a.stream.generate_batch(50)
        xb, _ = b.stream.generate_batch(50)
        assert (xa != xb).any()


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            ProtocolSpec(families=("sea",))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenarios"):
            ProtocolSpec(scenarios=(12,))

    def test_extended_scenarios_accepted(self):
        spec = ProtocolSpec(scenarios=tuple(range(1, 10)), seeds=(0,))
        assert len(spec.benchmarks()) == 4 * 3 * 9

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match="unknown detector"):
            ProtocolSpec(detectors=("NOPE",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSpec(seeds=())

    def test_unknown_scenario_in_builder(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario(
                0,
                family="rbf",
                n_classes=5,
                scenario=12,
                n_instances=100,
                n_drifts=1,
                max_imbalance_ratio=10.0,
            )

    def test_stringly_typed_scenario_id_keeps_n_drifts(self):
        # A coerced id must hit the same n_drifts plumbing as the int id.
        from_str = build_scenario(
            0, family="rbf", n_classes=5, scenario="1",
            n_instances=800, n_drifts=3, max_imbalance_ratio=10.0,
        )
        from_int = build_scenario(
            0, family="rbf", n_classes=5, scenario=1,
            n_instances=800, n_drifts=3, max_imbalance_ratio=10.0,
        )
        assert from_str.drift_points == from_int.drift_points
        assert len(from_str.drift_points) == 3


class TestPresets:
    def test_extended_preset_lists_all_nine_scenarios(self):
        spec = ProtocolSpec.extended()
        assert spec.scenarios == tuple(range(1, 10))
        assert spec.name == "extended"
        # Every scenario family appears among the benchmark names.
        names = spec.benchmarks()
        for scenario_id in range(1, 10):
            assert any(n.startswith(f"scenario{scenario_id}-") for n in names)

    def test_stress_preset_targets_the_stressor_families(self):
        spec = ProtocolSpec.stress()
        assert set(spec.scenarios) == {5, 6, 7, 8, 9}
        assert spec.max_imbalance_ratio == 200.0

    def test_presets_round_trip_through_json(self):
        for preset in (ProtocolSpec.extended(), ProtocolSpec.stress()):
            assert ProtocolSpec.from_json(preset.to_json()) == preset


class TestSerialisation:
    def test_json_round_trip(self):
        spec = ProtocolSpec.quick()
        assert ProtocolSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            ProtocolSpec.from_dict({"name": "x", "bogus": 1})

    def test_keys_embed_readable_slug(self):
        spec = ProtocolSpec.quick()
        cell = ProtocolCell(
            family="rbf", n_classes=5, scenario=1, detector="DDM", seed=0
        )
        key = spec.cell_key(cell)
        assert key.startswith("scenario1-Rbf5.DDM.s0.")


class TestRegistry:
    def test_full_zoo_is_registered(self):
        # The paper's six plus the standard baselines; "none" for detector-less.
        assert len([n for n in DETECTOR_NAMES if n != "none"]) >= 11
        assert "RBM-IM" in DETECTOR_NAMES
        assert "none" in DETECTOR_NAMES

    @pytest.mark.parametrize("name", [n for n in DETECTOR_NAMES if n != "none"])
    def test_every_builder_constructs(self, name):
        detector = build_detector(name, n_features=8, n_classes=4)
        assert isinstance(detector, DriftDetector)

    def test_none_builds_no_detector(self):
        assert detector_factory("none") is None
        assert build_detector("none", 8, 4) is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown detector"):
            detector_factory("DDM2")

    def test_builders_are_picklable(self):
        import pickle

        for name in DETECTOR_NAMES:
            pickle.dumps(detector_factory(name))
