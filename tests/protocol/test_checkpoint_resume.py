"""Mid-cell checkpoint/resume through the protocol pipeline and CLI.

The acceptance scenario of the snapshot/restore PR: SIGKILL the CLI while it
is *inside* a cell (a mid-cell checkpoint exists, no record yet), re-invoke,
and the pipeline must resume that cell from its runner checkpoint — finishing
with records key-for-key identical (timings aside) to a run that was never
killed, and with the checkpoint side-area empty again.

Also pinned here: the checkpoint side-area contract of both store backends —
checkpoints live under ``<root>/checkpoints/`` and are invisible to the
record namespace (``records()``, ``statuses()``, ``keys()``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.protocol.sharded_store import ShardedResultsStore
from repro.protocol.store import ResultsStore

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Record fields that legitimately differ between two executions of the same
#: cell (timing); everything else must match key-for-key.
_VOLATILE = ("wall_time", "detector_time", "classifier_time")


def _stable(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in _VOLATILE}


# ---------------------------------------------------------- store side-area
@pytest.mark.parametrize("backend", [ResultsStore, ShardedResultsStore])
def test_checkpoint_side_area_roundtrip(tmp_path, backend):
    store = backend(tmp_path / "store")
    payload = {"kind": "RunnerCheckpoint", "version": 1, "produced": 256}

    assert store.get_checkpoint("cell/a:1") is None
    path = store.checkpoint_path_for("cell/a:1")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert store.get_checkpoint("cell/a:1") == payload

    # Path separators are flattened exactly like record keys are.
    assert path.name == "cell_a:1.json"
    assert path.parent.name == "checkpoints"

    assert store.discard_checkpoint("cell/a:1")
    assert store.get_checkpoint("cell/a:1") is None
    assert not store.discard_checkpoint("cell/a:1")  # idempotent


@pytest.mark.parametrize("backend", [ResultsStore, ShardedResultsStore])
def test_checkpoints_are_invisible_to_the_record_namespace(tmp_path, backend):
    store = backend(tmp_path / "store")
    store.put("done-cell", {"status": "ok", "pmauc": 0.5})
    path = store.checkpoint_path_for("half-done-cell")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('{"kind": "RunnerCheckpoint"}', encoding="utf-8")

    assert store.keys() == ["done-cell"]
    assert dict(store.records()) == {"done-cell": {"status": "ok", "pmauc": 0.5}}
    assert store.statuses() == {"done-cell": True}
    assert "half-done-cell" not in store
    # ...but the checkpoint is still there for the resuming runner.
    assert store.get_checkpoint("half-done-cell") is not None


@pytest.mark.parametrize("backend", [ResultsStore, ShardedResultsStore])
def test_corrupt_checkpoint_reads_as_absent(tmp_path, backend):
    store = backend(tmp_path / "store")
    path = store.checkpoint_path_for("cell")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json", encoding="utf-8")
    assert store.get_checkpoint("cell") is None
    assert store.discard_checkpoint("cell")  # cleanup still works


# ------------------------------------------------------------ CLI SIGKILL
def _cli_run(store: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.protocol",
            "run",
            "--preset",
            "quick",
            "--store",
            str(store),
            "--backend",
            "serial",
            *extra,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"CLI failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def test_sigkill_mid_cell_resumes_from_runner_checkpoint(tmp_path):
    """Kill inside a cell; the rerun must finish that cell mid-stream."""
    reference_store = tmp_path / "reference"
    _cli_run(reference_store)
    reference = dict(ResultsStore(reference_store).records())

    store = tmp_path / "results"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.protocol",
            "run",
            "--preset",
            "quick",
            "--store",
            str(store),
            "--backend",
            "serial",
            "--checkpoint-every",
            "100",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    checkpoints = store / "checkpoints"

    def durable_checkpoints() -> list[Path]:
        # In-flight atomic-write temp files (.tmp-*) are not checkpoints; a
        # SIGKILL can strand one, exactly like it can in the record area.
        return [
            path
            for path in checkpoints.glob("*.json")
            if not path.name.startswith(".tmp-")
        ]

    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if durable_checkpoints():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.002)
        else:
            pytest.fail("no mid-cell checkpoint appeared within the deadline")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    survivors = durable_checkpoints()
    if not survivors:
        pytest.skip("run finished before the kill landed; resume not observable")

    out = _cli_run(store, "--checkpoint-every", "100")
    assert "2 completed, 0 failed, 0 pending" in out.stdout

    resumed = dict(ResultsStore(store).records())
    assert sorted(resumed) == sorted(reference)
    for key, record in reference.items():
        assert _stable(resumed[key]) == _stable(record), key
    # Completed cells tidy up after themselves.
    assert not durable_checkpoints()


def test_checkpointed_run_matches_plain_run(tmp_path):
    """--checkpoint-every must not change any result, kill or no kill."""
    plain = tmp_path / "plain"
    _cli_run(plain)
    checkpointed = tmp_path / "checkpointed"
    _cli_run(checkpointed, "--checkpoint-every", "100")

    plain_records = dict(ResultsStore(plain).records())
    checkpointed_records = dict(ResultsStore(checkpointed).records())
    assert sorted(plain_records) == sorted(checkpointed_records)
    for key, record in plain_records.items():
        assert _stable(checkpointed_records[key]) == _stable(record), key
    assert not list((checkpointed / "checkpoints").glob("*.json"))
