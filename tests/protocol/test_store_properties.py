"""Property-based tests for the ResultsStore: round-trips, crashes, stability.

The store's contract is brutal on purpose: *any* visible record is complete
and parseable, *any* interrupted write is invisible, and cell keys never
depend on process state.  Hypothesis drives arbitrary JSON-shaped records
through write -> (simulated crash) -> reload cycles to hold it to that.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocol.spec import ProtocolSpec
from repro.protocol.store import ResultsStore

# JSON-representable values (round-trippable: no NaN, no non-string keys).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=15), children, max_size=5),
    ),
    max_leaves=20,
)
_records = st.dictionaries(st.text(max_size=20), _json_values, max_size=8)
_keys = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=".-_"
    ),
    min_size=1,
    max_size=60,
).filter(lambda key: not key.startswith(".") and key != "spec")


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(key=_keys, record=_records)
def test_round_trip(tmp_path_factory, key, record):
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put(key, record)
    assert key in store
    assert store.get(key) == record
    # A fresh store over the same directory (process-restart analogue) sees
    # the identical record.
    assert ResultsStore(store.root).get(key) == record


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(record=_records, cut=st.integers(min_value=0, max_value=200))
def test_truncated_record_reads_as_absent_and_is_recoverable(
    tmp_path_factory, record, cut
):
    """A record truncated by a crashed non-atomic writer is simply 'missing'."""
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put("cell", record)
    path = store.path_for("cell")
    payload = path.read_bytes()
    truncated = payload[: min(cut, max(0, len(payload) - 1))]
    path.write_bytes(truncated)

    reloaded = ResultsStore(store.root)
    assert reloaded.get("cell") is None
    assert "cell" not in reloaded
    assert reloaded.keys() == []
    # The pipeline's response is to recompute and re-put: that must heal it.
    reloaded.put("cell", record)
    assert reloaded.get("cell") == record


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(record=_records)
def test_stray_tmp_files_are_invisible(tmp_path_factory, record):
    """A crash between tmp-write and rename leaves no phantom records."""
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put("done", record)
    # Simulate a write that died before os.replace: a lingering tmp file.
    (store.root / ".tmp-deadbeef.json").write_text(
        json.dumps(record)[: max(0, len(json.dumps(record)) // 2)],
        encoding="utf-8",
    )
    assert store.keys() == [store.path_for("done").stem]
    assert dict(store.records()) == {store.path_for("done").stem: record}


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(first=_records, second=_records)
def test_put_overwrites_atomically(tmp_path_factory, first, second):
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put("cell", first)
    store.put("cell", second)
    assert store.get("cell") == second
    assert len(store) == 1


def test_put_serialises_nonfinite_floats_as_null(tmp_path: Path):
    """Records with nan/inf metrics must land on disk as strict JSON.

    Broken-pool failures record ``wall_time=nan`` and empty drift reports a
    ``mean_delay`` of nan; ``json.dumps`` would emit bare ``NaN``, which
    sqlite/parquet/jq all reject.
    """
    store = ResultsStore(tmp_path)
    store.put(
        "cell",
        {
            "wall_time": float("nan"),
            "drift_report": {"mean_delay": float("inf"), "n_detected": 0},
            "detections": [1.0, float("-inf")],
        },
    )

    def reject(token):
        raise AssertionError(f"non-strict JSON constant {token!r}")

    payload = store.path_for("cell").read_text(encoding="utf-8")
    record = json.loads(payload, parse_constant=reject)
    assert record == store.get("cell")
    assert record["wall_time"] is None
    assert record["drift_report"]["mean_delay"] is None
    assert record["detections"] == [1.0, None]


def test_legacy_nan_records_still_read(tmp_path: Path):
    """Stores written before the strict-serialisation fix stay readable."""
    store = ResultsStore(tmp_path)
    store.path_for("old").write_text('{"wall_time": NaN}', encoding="utf-8")
    record = store.get("old")
    assert record is not None
    assert record["wall_time"] != record["wall_time"]  # i.e. it parsed as nan
    assert store.statuses() == {"old": True}


def test_atomic_write_fsyncs_the_directory(tmp_path: Path, monkeypatch):
    """os.replace is followed by a directory fsync (POSIX), so a completed
    record's rename survives power failure, not just its bytes."""
    import os

    # The helpers live in repro.core.durability (the store re-exports them);
    # atomic_write_text resolves fsync_dir through that module's globals, so
    # that is where the spy must go.
    from repro.core import durability

    synced_dirs = []
    real_fsync_dir = durability.fsync_dir

    def spying(directory):
        synced_dirs.append(Path(directory))
        real_fsync_dir(directory)

    monkeypatch.setattr(durability, "fsync_dir", spying)
    store = ResultsStore(tmp_path / "results")
    store.put("cell", {"v": 1})
    assert store.root in synced_dirs

    # And the guard itself is harmless where directories cannot be fsynced.
    if hasattr(os, "O_DIRECTORY"):
        real_fsync_dir(tmp_path / "does-not-exist")  # no raise


def test_sharded_appends_and_compaction_fsync(tmp_path: Path, monkeypatch):
    """Segment appends fsync the data; segment creation and compaction fsync
    the directory entries (same durability discipline as the atomic writes)."""
    import os

    from repro.protocol import sharded_store as sharded_module
    from repro.protocol.sharded_store import ShardedResultsStore

    synced_fds = []
    real_fsync = os.fsync

    def spying_fsync(fd):
        synced_fds.append(fd)
        real_fsync(fd)

    synced_dirs = []
    real_fsync_dir = sharded_module._fsync_dir

    def spying_dir(directory):
        synced_dirs.append(Path(directory))
        real_fsync_dir(directory)

    monkeypatch.setattr(os, "fsync", spying_fsync)
    monkeypatch.setattr(sharded_module, "_fsync_dir", spying_dir)

    store = ShardedResultsStore(tmp_path / "results")
    store.put("cell", {"v": 1})
    assert synced_fds, "segment append was not fsynced"
    assert store.root / "segments" in synced_dirs

    synced_fds.clear()
    synced_dirs.clear()
    store.compact()
    assert synced_fds, "compacted index was not fsynced"
    assert store.root in synced_dirs  # the index rename
    assert store.root / "segments" in synced_dirs  # the segment unlinks


def test_cell_keys_stable_across_process_restarts(tmp_path: Path):
    """Keys are pure content hashes: a fresh interpreter derives them bit-equal.

    This is the property resumability rests on — if keys drifted between
    processes (e.g. hash randomisation, dict ordering, repr formatting), a
    resumed run would recompute everything or, worse, mis-attribute records.
    """
    spec = ProtocolSpec.quick()
    keys_here = [spec.cell_key(cell) for cell in spec.expand()]

    script = (
        "from repro.protocol.spec import ProtocolSpec\n"
        "spec = ProtocolSpec.quick()\n"
        "print('\\n'.join(spec.cell_key(c) for c in spec.expand()))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "31337", "PATH": ""},
        cwd=Path(__file__).resolve().parents[2],
    )
    keys_there = out.stdout.strip().splitlines()
    assert keys_there == keys_here


def test_cell_keys_change_with_run_parameters():
    """Any run-affecting field flips every key (stale-cache protection)."""
    base = ProtocolSpec.quick()
    longer = ProtocolSpec.quick()
    longer.n_instances += 1
    cells = base.expand()
    assert [base.cell_key(c) for c in cells] != [longer.cell_key(c) for c in cells]


def test_cell_keys_unique_per_cell():
    spec = ProtocolSpec(
        name="grid",
        families=("rbf", "agrawal"),
        class_counts=(5, 10),
        scenarios=(1, 2, 3),
        detectors=("DDM", "ADWIN"),
        seeds=(0, 1),
        n_instances=500,
    )
    keys = [spec.cell_key(cell) for cell in spec.expand()]
    assert len(set(keys)) == len(keys) == len(spec)
