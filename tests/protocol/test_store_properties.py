"""Property-based tests for the ResultsStore: round-trips, crashes, stability.

The store's contract is brutal on purpose: *any* visible record is complete
and parseable, *any* interrupted write is invisible, and cell keys never
depend on process state.  Hypothesis drives arbitrary JSON-shaped records
through write -> (simulated crash) -> reload cycles to hold it to that.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocol.spec import ProtocolSpec
from repro.protocol.store import ResultsStore

# JSON-representable values (round-trippable: no NaN, no non-string keys).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=15), children, max_size=5),
    ),
    max_leaves=20,
)
_records = st.dictionaries(st.text(max_size=20), _json_values, max_size=8)
_keys = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=".-_"
    ),
    min_size=1,
    max_size=60,
).filter(lambda key: not key.startswith(".") and key != "spec")


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(key=_keys, record=_records)
def test_round_trip(tmp_path_factory, key, record):
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put(key, record)
    assert key in store
    assert store.get(key) == record
    # A fresh store over the same directory (process-restart analogue) sees
    # the identical record.
    assert ResultsStore(store.root).get(key) == record


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(record=_records, cut=st.integers(min_value=0, max_value=200))
def test_truncated_record_reads_as_absent_and_is_recoverable(
    tmp_path_factory, record, cut
):
    """A record truncated by a crashed non-atomic writer is simply 'missing'."""
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put("cell", record)
    path = store.path_for("cell")
    payload = path.read_bytes()
    truncated = payload[: min(cut, max(0, len(payload) - 1))]
    path.write_bytes(truncated)

    reloaded = ResultsStore(store.root)
    assert reloaded.get("cell") is None
    assert "cell" not in reloaded
    assert reloaded.keys() == []
    # The pipeline's response is to recompute and re-put: that must heal it.
    reloaded.put("cell", record)
    assert reloaded.get("cell") == record


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(record=_records)
def test_stray_tmp_files_are_invisible(tmp_path_factory, record):
    """A crash between tmp-write and rename leaves no phantom records."""
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put("done", record)
    # Simulate a write that died before os.replace: a lingering tmp file.
    (store.root / ".tmp-deadbeef.json").write_text(
        json.dumps(record)[: max(0, len(json.dumps(record)) // 2)],
        encoding="utf-8",
    )
    assert store.keys() == [store.path_for("done").stem]
    assert dict(store.records()) == {store.path_for("done").stem: record}


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(first=_records, second=_records)
def test_put_overwrites_atomically(tmp_path_factory, first, second):
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    store.put("cell", first)
    store.put("cell", second)
    assert store.get("cell") == second
    assert len(store) == 1


def test_cell_keys_stable_across_process_restarts(tmp_path: Path):
    """Keys are pure content hashes: a fresh interpreter derives them bit-equal.

    This is the property resumability rests on — if keys drifted between
    processes (e.g. hash randomisation, dict ordering, repr formatting), a
    resumed run would recompute everything or, worse, mis-attribute records.
    """
    spec = ProtocolSpec.quick()
    keys_here = [spec.cell_key(cell) for cell in spec.expand()]

    script = (
        "from repro.protocol.spec import ProtocolSpec\n"
        "spec = ProtocolSpec.quick()\n"
        "print('\\n'.join(spec.cell_key(c) for c in spec.expand()))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "31337", "PATH": ""},
        cwd=Path(__file__).resolve().parents[2],
    )
    keys_there = out.stdout.strip().splitlines()
    assert keys_there == keys_here


def test_cell_keys_change_with_run_parameters():
    """Any run-affecting field flips every key (stale-cache protection)."""
    base = ProtocolSpec.quick()
    longer = ProtocolSpec.quick()
    longer.n_instances += 1
    cells = base.expand()
    assert [base.cell_key(c) for c in cells] != [longer.cell_key(c) for c in cells]


def test_cell_keys_unique_per_cell():
    spec = ProtocolSpec(
        name="grid",
        families=("rbf", "agrawal"),
        class_counts=(5, 10),
        scenarios=(1, 2, 3),
        detectors=("DDM", "ADWIN"),
        seeds=(0, 1),
        n_instances=500,
    )
    keys = [spec.cell_key(cell) for cell in spec.expand()]
    assert len(set(keys)) == len(keys) == len(spec)
