"""Resumability of the protocol pipeline: completed cells are never re-run.

These tests exercise the acceptance path of the protocol subsystem: a run
interrupted mid-way (simulated by an exception thrown from the progress
callback, after the finished cell was already persisted) is re-invoked and
completes by executing only the cells that have no stored record.
"""

from __future__ import annotations

import pytest

from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.sharded_store import ShardedResultsStore
from repro.protocol.spec import ProtocolSpec
from repro.protocol.store import ResultsStore

#: Both ResultsStoreProtocol implementations; resume semantics are a store
#: contract, so the shared tests run against each.
STORE_KINDS = {"json": ResultsStore, "sharded": ShardedResultsStore}


def make_store(kind: str, root):
    return STORE_KINDS[kind](root)


def quick_spec() -> ProtocolSpec:
    spec = ProtocolSpec.quick()
    # Shrink further: resume semantics do not need long streams.
    spec.n_instances = 400
    spec.window_size = 100
    spec.pretrain_size = 50
    spec.drift_tolerance = 200
    spec.__post_init__()
    return spec


class _KillAfter:
    """Progress callback that raises once ``n`` cells have finished."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def __call__(self, cell_result) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt("simulated kill")


def test_interrupted_run_resumes_without_recomputing(tmp_path):
    spec = quick_spec()
    store = ResultsStore(tmp_path / "results")
    pipeline = ProtocolPipeline(spec, store)
    assert len(pipeline.pending()) == 2

    # First invocation dies after the first cell was persisted.
    with pytest.raises(KeyboardInterrupt):
        pipeline.run(backend="serial", progress=_KillAfter(1))

    status = pipeline.status()
    assert status.n_completed == 1
    assert status.n_pending == 1

    # Fingerprint the surviving record so recomputation would be visible.
    (done_key,) = [
        key for _, key in pipeline.cells() if store.get(key) is not None
    ]
    first_mtime = store.path_for(done_key).stat().st_mtime_ns
    first_record = store.get(done_key)

    # Second invocation completes the spec by running ONLY the missing cell.
    summary = pipeline.run(backend="serial")
    assert summary.n_skipped == 1
    assert summary.n_executed == 1
    assert summary.n_failed == 0
    assert done_key not in summary.executed_keys
    assert pipeline.status().done

    # The completed cell was not recomputed: same file, byte-identical record.
    assert store.path_for(done_key).stat().st_mtime_ns == first_mtime
    assert store.get(done_key) == first_record


@pytest.mark.parametrize("store_kind", sorted(STORE_KINDS))
def test_completed_run_is_fully_cached(tmp_path, store_kind):
    spec = quick_spec()
    pipeline = ProtocolPipeline(spec, make_store(store_kind, tmp_path / "results"))
    first = pipeline.run(backend="serial")
    assert first.n_executed == 2

    again = pipeline.run(backend="serial")
    assert again.n_executed == 0
    assert again.n_skipped == 2
    assert again.executed_keys == []


@pytest.mark.parametrize("store_kind", sorted(STORE_KINDS))
def test_changed_run_parameters_invalidate_the_cache(tmp_path, store_kind):
    store = make_store(store_kind, tmp_path / "results")
    spec = quick_spec()
    ProtocolPipeline(spec, store).run(backend="serial")

    longer = quick_spec()
    longer.n_instances = 500
    pipeline = ProtocolPipeline(longer, store)
    assert len(pipeline.pending()) == 2  # nothing reusable
    summary = pipeline.run(backend="serial")
    assert summary.n_executed == 2


def _tiny_classifier_factory(n_features: int, n_classes: int):
    from repro.classifiers.naive_bayes import GaussianNB

    return GaussianNB(n_features=n_features, n_classes=n_classes)


def test_changed_classifier_invalidates_the_cache(tmp_path):
    """Records computed with one classifier are never served to another."""
    spec = quick_spec()
    store = ResultsStore(tmp_path / "results")
    ProtocolPipeline(spec, store).run(backend="serial")

    swapped = ProtocolPipeline(
        spec, store, classifier_factory=_tiny_classifier_factory
    )
    assert len(swapped.pending()) == 2  # nothing reusable
    summary = swapped.run(backend="serial")
    assert summary.n_executed == 2
    label = "tests.protocol.test_pipeline_resume._tiny_classifier_factory"
    for record in swapped.completed_records():
        assert record["run_parameters"]["classifier"].endswith(
            "_tiny_classifier_factory"
        ), label
    # The default-classifier records are untouched and still resumable.
    assert ProtocolPipeline(spec, store).status().done


@pytest.mark.parametrize("store_kind", sorted(STORE_KINDS))
def test_failed_cells_are_retried_by_default(tmp_path, store_kind):
    spec = quick_spec()
    store = make_store(store_kind, tmp_path / "results")
    pipeline = ProtocolPipeline(spec, store)
    pipeline.run(backend="serial")

    # Forge one record into a failure, as a crashed worker would leave it.
    _, key = pipeline.cells()[0]
    record = store.get(key)
    record["error"] = "Traceback (most recent call last): boom"
    store.put(key, record)

    assert len(pipeline.pending(retry_failed=False)) == 0
    assert len(pipeline.pending(retry_failed=True)) == 1

    summary = pipeline.run(backend="serial")
    assert summary.n_executed == 1
    assert store.get(key)["error"] is None


@pytest.mark.parametrize("store_kind", sorted(STORE_KINDS))
def test_max_cells_caps_one_invocation(tmp_path, store_kind):
    spec = quick_spec()
    pipeline = ProtocolPipeline(spec, make_store(store_kind, tmp_path / "results"))
    summary = pipeline.run(backend="serial", max_cells=1)
    assert summary.n_executed == 1
    assert pipeline.status().n_completed == 1

    summary = pipeline.run(backend="serial")
    assert summary.n_executed == 1
    assert pipeline.status().done


@pytest.mark.parametrize("store_kind", sorted(STORE_KINDS))
def test_records_carry_protocol_metadata(tmp_path, store_kind):
    spec = quick_spec()
    pipeline = ProtocolPipeline(spec, make_store(store_kind, tmp_path / "results"))
    pipeline.run(backend="serial")
    records = pipeline.completed_records()
    assert len(records) == 2
    for record in records:
        assert record["benchmark"] == "scenario1-Rbf5"
        assert record["scenario"] == 1
        assert record["family"] == "rbf"
        assert record["spec_name"] == spec.name
        assert record["run_parameters"] == spec.run_parameters()
        assert record["detector"] in spec.detectors
        assert "pmauc" in record and "detections" in record
        assert record["drift_report"]["n_true_drifts"] == 1
    # The store also holds a provenance copy of the spec.
    spec_copy = (pipeline.store.root / "spec.json").read_text(encoding="utf-8")
    assert ProtocolSpec.from_json(spec_copy) == spec


def test_table_folds_seeds(tmp_path):
    spec = quick_spec()
    spec.seeds = (0, 1)
    spec.__post_init__()
    pipeline = ProtocolPipeline(spec, ResultsStore(tmp_path / "results"))
    pipeline.run(backend="serial")
    table = pipeline.table("pmauc")
    assert table.datasets == ["scenario1-Rbf5"]
    assert set(table.methods) == set(spec.detectors)
