"""End-to-end tests of the ``python -m repro.protocol`` command line.

Includes the acceptance scenario: a run killed mid-flight (SIGKILL, so
nothing can clean up) is re-invoked and completes by re-running only the
unfinished cells.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.protocol", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"CLI failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def test_run_status_report_round_trip(tmp_path):
    store = tmp_path / "results"
    out = run_cli(
        "run", "--preset", "quick", "--store", str(store), "--backend", "serial"
    )
    assert "2 executed" in out.stdout
    assert "2 completed" in out.stdout

    status = run_cli("status", "--preset", "quick", "--store", str(store))
    assert "2 completed, 0 failed, 0 pending" in status.stdout

    report = run_cli(
        "report", "--preset", "quick", "--store", str(store), "--control", "RBM-IM"
    )
    assert "== pmauc ==" in report.stdout
    assert "scenario1-Rbf5" in report.stdout
    assert "ranks" in report.stdout


def test_rerun_uses_cache(tmp_path):
    store = tmp_path / "results"
    run_cli("run", "--preset", "quick", "--store", str(store), "--backend", "serial")
    again = run_cli(
        "run", "--preset", "quick", "--store", str(store), "--backend", "serial"
    )
    assert "2 cached, 0 executed" in again.stdout


def test_spec_subcommand_emits_editable_json(tmp_path):
    out = run_cli("spec", "--preset", "quick")
    spec = json.loads(out.stdout)
    assert spec["name"] == "quick"

    # The emitted JSON is directly usable as --spec input.
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(out.stdout, encoding="utf-8")
    store = tmp_path / "results"
    run_cli(
        "run",
        "--spec",
        str(spec_path),
        "--store",
        str(store),
        "--backend",
        "serial",
        "--max-cells",
        "1",
    )
    status = run_cli(
        "status", "--spec", str(spec_path), "--store", str(store), check=False
    )
    assert "1 completed, 0 failed, 1 pending" in status.stdout
    assert status.returncode == 2  # "not done yet" exit code


def test_missing_spec_selection_is_an_error(tmp_path):
    """No silent default: forgetting --preset must not start the paper run."""
    out = run_cli("run", "--store", str(tmp_path / "results"), check=False)
    assert out.returncode != 0
    assert "pass --spec" in out.stderr
    assert not (tmp_path / "results").exists()


def test_batch_mode_is_a_two_way_override(tmp_path):
    out = run_cli("run", "--help")
    assert "--no-batch-mode" in out.stdout


def test_execution_mode_overrides_shared_by_all_subcommands(tmp_path):
    """A store produced under --batch-mode is visible to status/report
    invoked with the same override (the flags are part of every cell key)."""
    store = tmp_path / "results"
    run_cli(
        "run", "--preset", "quick", "--store", str(store),
        "--backend", "serial", "--batch-mode",
    )
    status = run_cli(
        "status", "--preset", "quick", "--store", str(store), "--batch-mode"
    )
    assert "2 completed, 0 failed, 0 pending" in status.stdout
    report = run_cli(
        "report", "--preset", "quick", "--store", str(store), "--batch-mode"
    )
    assert "== pmauc ==" in report.stdout
    # Without the override the same store is (correctly) a different run.
    plain = run_cli(
        "status", "--preset", "quick", "--store", str(store), check=False
    )
    assert "0 completed, 0 failed, 2 pending" in plain.stdout


def test_status_on_empty_store_reports_all_pending(tmp_path):
    status = run_cli(
        "status",
        "--preset",
        "quick",
        "--store",
        str(tmp_path / "results"),
        check=False,
    )
    assert "0 completed, 0 failed, 2 pending" in status.stdout
    assert status.returncode == 2


def test_report_on_empty_store_fails_gracefully(tmp_path):
    report = run_cli(
        "report",
        "--preset",
        "quick",
        "--store",
        str(tmp_path / "results"),
        check=False,
    )
    assert report.returncode == 2
    assert "no completed cells" in report.stderr


def test_sharded_round_trip_compact_and_report_agree_with_json(tmp_path):
    """The same spec into both store formats: status and report agree, and
    compaction changes the layout, not the answers."""
    json_store = tmp_path / "json-results"
    sharded_store = tmp_path / "sharded-results"
    run_cli(
        "run", "--preset", "quick", "--store", str(json_store),
        "--backend", "serial",
    )
    out = run_cli(
        "run", "--preset", "quick", "--store", str(sharded_store),
        "--store-format", "sharded", "--backend", "serial",
    )
    assert "2 executed" in out.stdout
    assert (sharded_store / "segments").is_dir()
    assert not list(sharded_store.glob("*.json.json"))  # no per-cell files

    # --store-format auto recognises the layout from here on.
    status = run_cli("status", "--preset", "quick", "--store", str(sharded_store))
    assert "2 completed, 0 failed, 0 pending" in status.stdout

    compact = run_cli("compact", "--store", str(sharded_store))
    assert "compacted 2 records" in compact.stdout
    assert (sharded_store / "index.sqlite").is_file()
    assert not list((sharded_store / "segments").iterdir())

    status = run_cli("status", "--preset", "quick", "--store", str(sharded_store))
    assert "2 completed, 0 failed, 0 pending" in status.stdout

    json_report = run_cli("report", "--preset", "quick", "--store", str(json_store))
    sharded_report = run_cli(
        "report", "--preset", "quick", "--store", str(sharded_store)
    )
    assert sharded_report.stdout == json_report.stdout

    # A re-run on the compacted store is fully cached.
    again = run_cli(
        "run", "--preset", "quick", "--store", str(sharded_store),
        "--backend", "serial",
    )
    assert "2 cached, 0 executed" in again.stdout


def test_sharded_flag_refuses_existing_json_store(tmp_path):
    """--store-format sharded against a populated JSON store must refuse —
    and must NOT scaffold segments/ or index.sqlite, which would make auto
    treat the store as sharded and hide every existing record."""
    store = tmp_path / "results"
    run_cli("run", "--preset", "quick", "--store", str(store), "--backend", "serial")

    for command in ("status", "report", "compact"):
        args = [command]
        if command != "compact":
            args += ["--preset", "quick"]
        args += ["--store", str(store), "--store-format", "sharded"]
        out = run_cli(*args, check=False)
        assert out.returncode != 0, command
        assert "JSON store" in out.stderr, command
        assert not (store / "segments").exists(), command
        assert not (store / "index.sqlite").exists(), command

    # The store is unharmed: auto still sees every record.
    status = run_cli("status", "--preset", "quick", "--store", str(store))
    assert "2 completed, 0 failed, 0 pending" in status.stdout


def test_json_flag_refuses_existing_sharded_store(tmp_path):
    store = tmp_path / "results"
    run_cli(
        "run", "--preset", "quick", "--store", str(store),
        "--store-format", "sharded", "--backend", "serial",
    )
    out = run_cli(
        "status", "--preset", "quick", "--store", str(store),
        "--store-format", "json", check=False,
    )
    assert out.returncode != 0
    assert "sharded store" in out.stderr


def test_auto_prefers_json_records_over_empty_segments_dir(tmp_path):
    """A stray empty segments/ dir (damage from the old eager-mkdir bug)
    must not make auto hide an existing JSON store's records."""
    store = tmp_path / "results"
    run_cli("run", "--preset", "quick", "--store", str(store), "--backend", "serial")
    (store / "segments").mkdir()
    status = run_cli("status", "--preset", "quick", "--store", str(store))
    assert "2 completed, 0 failed, 0 pending" in status.stdout


def test_compact_refuses_non_sharded_store(tmp_path):
    store = tmp_path / "results"
    run_cli("run", "--preset", "quick", "--store", str(store), "--backend", "serial")
    out = run_cli("compact", "--store", str(store), check=False)
    assert out.returncode == 2
    assert "not a sharded store" in out.stderr


def test_run_help_documents_scaling_flags():
    out = run_cli("run", "--help")
    assert "--store-format" in out.stdout
    assert "--cluster-address" in out.stdout
    # argparse re-wraps help text, so compare whitespace-normalised.
    flattened = " ".join(out.stdout.split())
    assert "degrades to local execution" in flattened
    assert "sharded" in flattened


def test_killed_run_resumes_by_skipping_completed_cells(tmp_path):
    """SIGKILL the CLI after the first record lands; re-invoke; verify resume."""
    store = tmp_path / "results"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.protocol",
            "run",
            "--preset",
            "quick",
            "--store",
            str(store),
            "--backend",
            "serial",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )

    def completed_records() -> list[Path]:
        return [
            path
            for path in store.glob("*.json")
            if path.name != "spec.json" and not path.name.startswith(".tmp-")
        ]

    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if completed_records():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.005)
        else:
            pytest.fail("no record appeared within the deadline")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    survivors = completed_records()
    if len(survivors) >= 2:
        pytest.skip("run finished before the kill landed; resume not observable")
    assert len(survivors) == 1
    fingerprint = {
        path.name: (path.stat().st_mtime_ns, path.read_bytes())
        for path in survivors
    }

    # Re-invoke: must complete by executing only the unfinished cell.
    out = run_cli(
        "run", "--preset", "quick", "--store", str(store), "--backend", "serial"
    )
    assert "1 cached, 1 executed" in out.stdout
    assert "2 completed, 0 failed, 0 pending" in out.stdout

    for name, (mtime, payload) in fingerprint.items():
        path = store / name
        assert path.stat().st_mtime_ns == mtime, f"{name} was recomputed"
        assert path.read_bytes() == payload


#: Record fields that legitimately differ between two executions of the
#: same cell (timing); everything else must match key-for-key.
_VOLATILE = ("wall_time", "detector_time", "classifier_time")


def _stable(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in _VOLATILE}


def test_killed_sharded_run_resumes_and_matches_json_store(tmp_path):
    """SIGKILL a --store-format sharded run mid-flight (possibly mid-append:
    the torn segment tail must read as absent, not corrupt the store);
    re-invoke; the recovered record set must equal a single-file-store run's
    key-for-key, modulo timing fields."""
    from repro.protocol.sharded_store import ShardedResultsStore

    store = tmp_path / "sharded-results"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.protocol", "run",
            "--preset", "quick",
            "--store", str(store),
            "--store-format", "sharded",
            "--backend", "serial",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )

    def completed_keys() -> list[str]:
        if not store.is_dir():
            return []
        return ShardedResultsStore(store).keys()

    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if completed_keys():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.005)
        else:
            pytest.fail("no record appeared within the deadline")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    survivors = completed_keys()
    if len(survivors) >= 2:
        pytest.skip("run finished before the kill landed; resume not observable")
    assert len(survivors) == 1
    (done_key,) = survivors
    first_record = ShardedResultsStore(store).get(done_key)

    # Re-invoke (--store-format auto recognises the layout): only the
    # unfinished cell runs; the survivor is served from the store untouched.
    out = run_cli(
        "run", "--preset", "quick", "--store", str(store), "--backend", "serial"
    )
    assert "1 cached, 1 executed" in out.stdout
    assert "2 completed, 0 failed, 0 pending" in out.stdout
    assert ShardedResultsStore(store).get(done_key) == first_record

    # Key-for-key parity with the single-file store for the same run.
    json_store_dir = tmp_path / "json-results"
    run_cli(
        "run", "--preset", "quick", "--store", str(json_store_dir),
        "--backend", "serial",
    )
    json_records = {
        path.stem: json.loads(path.read_text(encoding="utf-8"))
        for path in json_store_dir.glob("*.json")
        if path.name != "spec.json"
    }
    recovered = ShardedResultsStore(store)
    assert sorted(recovered.keys()) == sorted(json_records)
    for key, record in json_records.items():
        assert _stable(recovered.get(key)) == _stable(record)
