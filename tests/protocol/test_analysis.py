"""The analysis stage: record folding, guarded statistics, report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocol.analysis import (
    analyze_records,
    detection_table,
    records_to_table,
    render_report,
)


def make_record(
    benchmark: str,
    detector: str,
    seed: int = 0,
    pmauc: float = 0.8,
    recall: float = 1.0,
    error: "str | None" = None,
) -> dict:
    return {
        "stream": benchmark,
        "benchmark": benchmark,
        "detector": detector,
        "seed": seed,
        "error": error,
        "pmauc": pmauc,
        "pmgm": pmauc - 0.1,
        "accuracy": pmauc + 0.05,
        "kappa": pmauc - 0.2,
        "detections": [100],
        "drift_report": {
            "n_true_drifts": 1,
            "n_detections": 1,
            "n_detected": 1,
            "n_false_alarms": 0,
            "mean_delay": 40.0,
            "detection_recall": recall,
        },
    }


class TestRecordsToTable:
    def test_seed_averaging(self):
        records = [
            make_record("bench", "DDM", seed=0, pmauc=0.8),
            make_record("bench", "DDM", seed=1, pmauc=0.6),
        ]
        table = records_to_table(records, "pmauc")
        assert table.value("bench", "DDM") == pytest.approx(0.7)

    def test_drift_report_metrics_resolve(self):
        table = detection_table([make_record("bench", "DDM", recall=0.5)])
        assert table.value("bench", "DDM") == pytest.approx(0.5)

    def test_failed_and_metricless_records_skipped(self):
        records = [
            make_record("bench", "DDM"),
            make_record("bench", "ADWIN", error="boom"),
            {"benchmark": "bench", "detector": "WSTD", "error": None},
        ]
        table = records_to_table(records, "pmauc")
        assert table.methods == ["DDM"]

    def test_nan_values_skipped(self):
        record = make_record("bench", "DDM")
        record["drift_report"]["mean_delay"] = float("nan")
        table = records_to_table([record], "mean_delay")
        assert table.datasets == []

    def test_scale(self):
        table = records_to_table([make_record("bench", "DDM", pmauc=0.8)], "pmauc", scale=100.0)
        assert table.value("bench", "DDM") == pytest.approx(80.0)


class TestAnalyzeRecords:
    def _records(self, n_benchmarks=4, detectors=("DDM", "ADWIN", "RBM-IM")):
        rng = np.random.default_rng(0)
        records = []
        for b in range(n_benchmarks):
            for j, detector in enumerate(detectors):
                records.append(
                    make_record(
                        f"bench{b}",
                        detector,
                        pmauc=0.5 + 0.1 * j + 0.01 * float(rng.random()),
                    )
                )
        return records

    def test_full_analysis_runs_all_tests(self):
        analysis = analyze_records(
            self._records(), metrics=("pmauc",), control="RBM-IM"
        )
        item = analysis.metrics["pmauc"]
        assert item.friedman is not None
        assert item.bonferroni_dunn is not None
        assert set(item.bayesian) == {"DDM", "ADWIN"}
        assert item.ranks["RBM-IM"] == pytest.approx(1.0)

    def test_small_matrices_skip_with_notes_instead_of_raising(self):
        analysis = analyze_records(
            [make_record("bench", "DDM"), make_record("bench", "RBM-IM")],
            metrics=("pmauc",),
            control="RBM-IM",
        )
        item = analysis.metrics["pmauc"]
        assert item.friedman is None
        assert item.bonferroni_dunn is None
        assert any("Friedman test skipped" in note for note in item.notes)

    def test_missing_control_noted(self):
        analysis = analyze_records(
            self._records(detectors=("DDM", "ADWIN", "WSTD")),
            metrics=("pmauc",),
            control="RBM-IM",
        )
        item = analysis.metrics["pmauc"]
        assert item.bonferroni_dunn is None
        assert any("no complete results" in note for note in item.notes)

    def test_delay_metric_ranks_lower_as_better(self):
        records = []
        for b in range(3):
            fast = make_record(f"bench{b}", "FAST")
            fast["drift_report"]["mean_delay"] = 10.0
            slow = make_record(f"bench{b}", "SLOW")
            slow["drift_report"]["mean_delay"] = 500.0
            records.extend([fast, slow])
        analysis = analyze_records(records, metrics=("mean_delay",), control=None)
        ranks = analysis.metrics["mean_delay"].ranks
        assert ranks["FAST"] < ranks["SLOW"]

    def test_bayesian_test_respects_metric_direction(self):
        """For lower-is-better metrics, 'left' must still mean control-wins."""
        records = []
        for b in range(10):
            control = make_record(f"bench{b}", "CTRL")
            control["drift_report"]["mean_delay"] = 10.0 + b
            rival = make_record(f"bench{b}", "RIVAL")
            rival["drift_report"]["mean_delay"] = 500.0 + b
            records.extend([control, rival])
        analysis = analyze_records(records, metrics=("mean_delay",), control="CTRL")
        bayes = analysis.metrics["mean_delay"].bayesian["RIVAL"]
        # The control detects drifts far faster, so it is practically better.
        assert bayes.winner == "left"


class TestRenderReport:
    def test_report_contains_tables_stats_and_notes(self):
        records = [
            make_record(f"bench{b}", d, pmauc=0.5 + 0.1 * j)
            for b in range(4)
            for j, d in enumerate(("DDM", "ADWIN", "RBM-IM"))
        ]
        analysis = analyze_records(
            records, metrics=("pmauc", "detection_recall"), control="RBM-IM"
        )
        text = render_report(analysis)
        assert "== pmauc ==" in text
        assert "== detection_recall ==" in text
        assert "Friedman:" in text
        assert "Bonferroni-Dunn vs RBM-IM" in text
        assert "Bayesian signed" in text

    def test_empty_records_render_gracefully(self):
        analysis = analyze_records([], metrics=("pmauc",), control="RBM-IM")
        assert "(no completed results)" in render_report(analysis)

    def test_rendered_ranks_respect_metric_direction(self):
        """The printed ranks row must rank lower delays as better."""
        records = []
        for b in range(3):
            fast = make_record(f"bench{b}", "FAST")
            fast["drift_report"]["mean_delay"] = 10.0
            slow = make_record(f"bench{b}", "SLOW")
            slow["drift_report"]["mean_delay"] = 500.0
            records.extend([fast, slow])
        analysis = analyze_records(records, metrics=("mean_delay",), control=None)
        text = render_report(analysis)
        (ranks_line,) = [
            line for line in text.splitlines() if line.startswith("ranks")
        ]
        # Column order is FAST then SLOW: the fast detector must rank 1.
        assert ranks_line.split() == ["ranks", "1.00", "2.00"]
