"""Checkpointing & resume: survive a mid-run crash with bit-identical results.

This example runs RBM-IM through the prequential harness with a checkpoint
file, "kills" the run halfway through (by raising out of a checkpoint save,
the worst-case crash point), re-invokes the *same* configuration, and shows
that the resumed run finishes with exactly the metrics and detections an
uninterrupted run produces — while processing only the instances after the
checkpoint.

It then demonstrates the snapshot contract directly: cloning a live detector
through strict JSON (`snapshot()` / `from_snapshot`) and replaying the tail
of the stream bit-identically.

Run with::

    python examples/checkpoint_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import RBMIM, RBMIMConfig
from repro.core.jsonio import dumps_strict, loads_strict
from repro.detectors import DriftDetector
from repro.evaluation import PrequentialRunner, default_classifier_factory
from repro.evaluation.checkpoint import RunnerCheckpoint
from repro.streams import make_artificial_stream

N_INSTANCES = 6_000
CHUNK = 512


def make_parts():
    """Fresh (stream, detector) for one run — same seeds, same behaviour."""
    scenario = make_artificial_stream(
        family="rbf",
        n_classes=5,
        n_instances=N_INSTANCES,
        n_drifts=3,
        max_imbalance_ratio=50.0,
        seed=42,
    )
    detector = RBMIM(
        scenario.n_features,
        scenario.n_classes,
        RBMIMConfig(batch_size=50, seed=42),
    )
    return scenario, detector


def main() -> None:
    runner = PrequentialRunner(
        classifier_factory=default_classifier_factory,
        window_size=1000,
        pretrain_size=200,
        chunk_size=CHUNK,
    )

    # ------------------------------------------------ reference: no crash
    scenario, detector = make_parts()
    reference = runner.run(scenario, detector, n_instances=N_INSTANCES)
    print(f"uninterrupted: pmAUC={reference.pmauc:.4f} "
          f"pmG-mean={reference.pmgm:.4f} detections={reference.detections}")

    with tempfile.TemporaryDirectory() as scratch:
        checkpoint_path = Path(scratch) / "checkpoint.json"

        # -------------------------------------- crash mid-run, then resume
        class Crash(RuntimeError):
            pass

        original_save = RunnerCheckpoint.save

        def crashing_save(self: RunnerCheckpoint, path) -> None:
            original_save(self, path)
            if self.produced >= N_INSTANCES // 2:
                raise Crash  # stand-in for SIGKILL / OOM / power loss

        RunnerCheckpoint.save = crashing_save  # type: ignore[method-assign]
        try:
            scenario, detector = make_parts()
            runner.run(
                scenario,
                detector,
                n_instances=N_INSTANCES,
                checkpoint_path=checkpoint_path,
                checkpoint_every=CHUNK,
            )
        except Crash:
            survivor = RunnerCheckpoint.load(checkpoint_path)
            assert survivor is not None
            print(f"\n'crashed' at instance {survivor.produced}; "
                  f"checkpoint survived at {checkpoint_path.name}")
        finally:
            RunnerCheckpoint.save = original_save  # type: ignore[method-assign]

        # Re-invoke the identical configuration: the runner finds a matching
        # checkpoint at checkpoint_path and resumes mid-stream.
        scenario, detector = make_parts()
        resumed = runner.run(
            scenario,
            detector,
            n_instances=N_INSTANCES,
            checkpoint_path=checkpoint_path,
            checkpoint_every=CHUNK,
        )
        print(f"resumed:       pmAUC={resumed.pmauc:.4f} "
              f"pmG-mean={resumed.pmgm:.4f} detections={resumed.detections}")
        assert resumed.pmauc == reference.pmauc
        assert resumed.pmgm == reference.pmgm
        assert resumed.detections == reference.detections
        assert resumed.detected_classes == reference.detected_classes
        print("resume is bit-identical to the uninterrupted run")

    # ------------------------------------- the snapshot contract, directly
    scenario, detector = make_parts()
    stream = scenario.stream
    x, y = stream.generate_batch(2_000)
    predictions = y.copy()  # pretend-perfect classifier, for brevity
    detector.step_batch(x, y, predictions)

    # snapshot() -> strict JSON -> from_snapshot() is a faithful clone ...
    payload = dumps_strict(detector.snapshot())
    clone = DriftDetector.from_snapshot(loads_strict(payload))
    # ... so the original and the clone replay the tail identically.
    x, y = stream.generate_batch(1_000)
    flags = detector.step_batch(x, y, y)
    clone_flags = clone.step_batch(x, y, y)
    assert (flags == clone_flags).all()
    assert detector.detections == clone.detections
    print(f"\nJSON-cloned detector replayed 1000 instances bit-identically "
          f"({len(payload)} snapshot bytes, detections at "
          f"{clone.detections})")


if __name__ == "__main__":
    main()
