"""Run a miniature version of the paper's full protocol, end to end.

The same machinery scales to the complete reproduction
(``ProtocolSpec.paper()``: 36 benchmarks x 6 detectors x 5 seeds); this
example shrinks the axes so it finishes in about a minute on a laptop,
then demonstrates the three pipeline stages:

1. ``run``    — execute every pending cell into the results store
   (kill and re-run this script: completed cells are skipped);
2. ``status`` — coverage accounting;
3. ``report`` — tables, average ranks, and significance tests.

Equivalent CLI session::

    python -m repro.protocol spec --preset paper > spec.json   # then edit
    python -m repro.protocol run    --spec spec.json --store results/
    python -m repro.protocol status --spec spec.json --store results/
    python -m repro.protocol report --spec spec.json --store results/
"""

from repro.protocol import (
    ProtocolPipeline,
    ProtocolSpec,
    analyze_records,
    render_report,
)

spec = ProtocolSpec(
    name="mini-paper",
    families=("rbf", "hyperplane"),
    class_counts=(5,),
    scenarios=(1, 3),
    detectors=("DDM", "ADWIN", "PerfSim", "RBM-IM"),
    seeds=(0, 1),
    n_instances=2_000,
    n_drifts=2,
    max_imbalance_ratio=50.0,
    window_size=500,
    pretrain_size=200,
    chunk_size=256,
    drift_tolerance=700,
)

pipeline = ProtocolPipeline(spec, "protocol_results")
print(f"{len(spec)} cells, {len(pipeline.pending())} pending")

summary = pipeline.run(backend="process")
print(summary.describe())
print(pipeline.status().describe())

records = pipeline.completed_records()
analysis = analyze_records(
    records, metrics=("pmauc", "detection_recall"), control="RBM-IM"
)
print()
print(render_report(analysis))
