"""Compose a custom benchmark scenario with the schedule DSL.

The nine built-in scenario families in ``repro.streams.scenarios`` are all
thin wrappers over the same primitive: a declarative
:class:`~repro.streams.schedule.Schedule` of :class:`Segment` objects
executed by :class:`ScheduledStream`.  This example builds a scenario none of
the presets cover — a recurring concept with a local drift on the minority
classes, a mid-stream label-noise burst, a slow feature-space slide, and a
class that disappears near the end — prints its exact ground truth, and runs
a detector over it to show the alarms lining up with the schedule.

Run with::

    python examples/custom_scenario.py
"""

from __future__ import annotations

import numpy as np

from repro.detectors import FHDDM
from repro.evaluation import PrequentialRunner, default_classifier_factory
from repro.streams import DynamicImbalance, Schedule, ScheduledStream, Segment
from repro.streams.generators import RandomRBFGenerator

N_INSTANCES = 8_000


def main() -> None:
    # Each segment declares what is true for a span of the stream; anything
    # left out (concept, feature shift) is inherited from the segment before.
    schedule = Schedule.of(
        # Warm-up on concept 0.
        Segment(length=2_000, concept=0),
        # Sudden global drift to concept 1...
        Segment(length=1_500, concept=1),
        # ...which recurs back to concept 0 through a gradual 400-instance
        # mixture window.
        Segment(length=1_500, concept=0, transition="gradual", width=400),
        # Local drift: only the two smallest classes move to concept 2, and a
        # label-noise burst corrupts 15% of labels for 800 instances.
        Segment(length=800, concept=2, drifted_classes=(3, 4), label_noise=0.15),
        # Noise ends; the feature space starts sliding (virtual drift),
        # ramping to a 0.4-magnitude offset over 500 instances.
        Segment(length=1_200, feature_shift=0.4, width=500),
        # Finally the majority class disappears from the stream entirely.
        Segment(length=1_000, active_classes=(1, 2, 3, 4)),
    )

    def factory(concept: int) -> RandomRBFGenerator:
        return RandomRBFGenerator(
            n_classes=5, n_features=20, n_centroids=25, concept=concept, seed=7
        )

    stream = ScheduledStream(
        factory,
        schedule,
        # The profile is evaluated at the *emitted* position; segments could
        # also pin a static ratio via Segment(imbalance_ratio=...).
        imbalance=DynamicImbalance(5, min_ratio=2.0, max_ratio=40.0, period=4_000),
        seed=11,
        name="custom-scenario",
    )

    print(f"Stream: {stream.name} ({stream.n_classes} classes, "
          f"{stream.n_features} features, {schedule.total_length} scheduled)")
    print("Exact ground truth (emitted-instance coordinates):")
    for event in stream.events:
        classes = "all classes" if event.classes is None else f"classes {list(event.classes)}"
        print(f"  @{event.position:>5}  {event.kind:<8} {classes}")
    print(f"Real drift points: {stream.drift_points}\n")

    # Batch generation is bit-identical to per-instance iteration — fetch a
    # chunk to eyeball the skew, then restart before the prequential run.
    _, labels = stream.generate_batch(2_000)
    print("Class counts over the first 2000 instances:",
          np.bincount(labels, minlength=5).tolist())
    stream.restart()

    runner = PrequentialRunner(default_classifier_factory, pretrain_size=300)
    result = runner.run(stream, FHDDM(), n_instances=N_INSTANCES, chunk_size=512)
    print(f"\nFHDDM over {N_INSTANCES} instances: "
          f"pmAUC={result.pmauc:.3f}, pmGM={result.pmgm:.3f}")
    print(f"Alarms at: {result.detections}")
    print("(compare against the real drift points above; alarms near the "
          "blip-free noise burst or the virtual drift are scenario-dependent)")


if __name__ == "__main__":
    main()
