"""Cyber-security motivation scenario: evolving rare attacks in network traffic.

The paper motivates multi-class imbalanced drift detection with intrusion
detection: benign traffic dominates the stream, several attack families appear
with very different (and low) frequencies, and attackers *change their
behaviour over time* to evade detection — a local concept drift confined to
the attack classes, while benign traffic remains stationary.

This example synthesises such a stream (one benign class + three attack
families with a 200:1 overall imbalance), lets the attack classes drift one
after another, and compares how a standard detector (RDDM), an imbalance-aware
baseline (DDM-OCI), and RBM-IM drive the same cost-sensitive classifier.

Run with::

    python examples/cybersecurity_intrusion_stream.py
"""

from __future__ import annotations

from repro.core import RBMIM, RBMIMConfig
from repro.detectors import DDM_OCI, RDDM
from repro.evaluation import PrequentialRunner, default_classifier_factory
from repro.streams import ImbalancedStream, LocalDriftStream, StaticImbalance
from repro.streams.generators import RandomRBFGenerator
from repro.streams.scenarios import ScenarioStream

N_CLASSES = 4  # 0 = benign, 1..3 = attack families
N_FEATURES = 12
N_INSTANCES = 8_000
FIRST_DRIFT = 3_000
SECOND_DRIFT = 5_500


def build_intrusion_stream(seed: int = 17) -> ScenarioStream:
    """Benign-dominated traffic where attack families drift one by one."""

    def concept(index: int) -> RandomRBFGenerator:
        return RandomRBFGenerator(
            n_classes=N_CLASSES,
            n_features=N_FEATURES,
            n_centroids=16,
            concept=index,
            seed=seed,
        )

    # First drift: attack family 3 (the rarest) changes its signature.
    stage_one = LocalDriftStream(
        generator_factory=concept,
        old_concept=0,
        new_concept=4,
        drifted_classes=[3],
        position=FIRST_DRIFT,
        seed=seed + 1,
    )

    # Second drift: attack families 2 and 3 change together.
    def stage_one_factory(index: int):
        if index == 0:
            return LocalDriftStream(
                generator_factory=concept,
                old_concept=0,
                new_concept=4,
                drifted_classes=[3],
                position=FIRST_DRIFT,
                seed=seed + 1,
            )
        return concept(8)

    stage_two = LocalDriftStream(
        generator_factory=stage_one_factory,
        old_concept=0,
        new_concept=1,
        drifted_classes=[2, 3],
        position=SECOND_DRIFT,
        seed=seed + 2,
    )

    # Benign traffic outnumbers the rarest attack family ~200:1.
    skewed = ImbalancedStream(stage_two, StaticImbalance(N_CLASSES, 200.0), seed=seed)
    return ScenarioStream(
        stream=skewed,
        drift_points=[FIRST_DRIFT, SECOND_DRIFT],
        drifted_classes=[[3], [2, 3]],
        name="intrusion-detection",
        n_instances=N_INSTANCES,
    )


def main() -> None:
    scenario = build_intrusion_stream()
    print("Simulated intrusion-detection stream")
    print(f"  classes: benign + {N_CLASSES - 1} attack families, IR = 200")
    print(f"  attack behaviour changes at {scenario.drift_points} "
          f"(classes {scenario.drifted_classes})\n")

    runner = PrequentialRunner(default_classifier_factory, pretrain_size=300)
    detectors = {
        "RDDM (standard)": RDDM(),
        "DDM-OCI (imbalance-aware)": DDM_OCI(n_classes=N_CLASSES),
        "RBM-IM (this paper)": RBMIM(
            N_FEATURES, N_CLASSES, RBMIMConfig(batch_size=50, seed=17)
        ),
    }

    print(f"{'detector':28s} {'pmAUC':>7s} {'pmGM':>7s} {'#alarms':>8s}  alarm positions")
    for name, detector in detectors.items():
        scenario.stream.restart()
        result = runner.run(
            scenario, detector, n_instances=N_INSTANCES, detector_name=name
        )
        positions = ", ".join(str(p) for p in result.detections[:6])
        if len(result.detections) > 6:
            positions += ", ..."
        print(
            f"{name:28s} {result.pmauc:7.3f} {result.pmgm:7.3f} "
            f"{len(result.detections):8d}  [{positions}]"
        )

    print("\nInterpretation: the standard detector reacts only to changes in the")
    print("dominant benign class; the per-class detectors can also react when a")
    print("rare attack family changes its behaviour.")


if __name__ == "__main__":
    main()
