"""Local drift monitoring: which classes changed, and when?

Scenario 3 of the paper is the hardest setting: a real concept drift affects
only a subset of (minority) classes while the rest of the stream stays
stationary.  Standard detectors monitor a single global statistic and miss
such changes; RBM-IM tracks the reconstruction-error trend of every class
independently and reports *which* classes drifted.

This example feeds RBM-IM directly (without a classifier) with a stream in
which only one class changes its distribution halfway through, then prints
the per-class reconstruction-error trajectory and the attribution of each
alarm.

Run with::

    python examples/local_drift_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core import RBMIM, RBMIMConfig
from repro.streams import ImbalancedStream, LocalDriftStream, StaticImbalance
from repro.streams.generators import RandomRBFGenerator

N_CLASSES = 4
N_FEATURES = 8
DRIFT_POSITION = 3_000
N_INSTANCES = 6_000
DRIFTED_CLASS = 3


def build_stream() -> ImbalancedStream:
    """A 4-class stream where only class 3 (a minority class) drifts."""

    def concept(index: int) -> RandomRBFGenerator:
        return RandomRBFGenerator(
            n_classes=N_CLASSES,
            n_features=N_FEATURES,
            n_centroids=12,
            concept=index,
            seed=5,
        )

    local_drift = LocalDriftStream(
        generator_factory=concept,
        old_concept=0,
        new_concept=6,
        drifted_classes=[DRIFTED_CLASS],
        position=DRIFT_POSITION,
        seed=9,
    )
    return ImbalancedStream(local_drift, StaticImbalance(N_CLASSES, 10.0), seed=2)


def main() -> None:
    stream = build_stream()
    detector = RBMIM(N_FEATURES, N_CLASSES, RBMIMConfig(batch_size=25, seed=7))

    print(f"Monitoring {N_CLASSES} classes; real drift on class {DRIFTED_CLASS} "
          f"at instance {DRIFT_POSITION}.\n")

    # As in the paper, the detector trains itself on the first batch of the
    # stream before monitoring starts.
    warm_up = stream.take(200)
    detector.warm_start(
        np.vstack([inst.x for inst in warm_up]),
        np.asarray([inst.y for inst in warm_up]),
    )

    alarms: list[tuple[int, set[int]]] = []
    error_log: list[tuple[int, np.ndarray]] = []
    for position in range(len(warm_up), N_INSTANCES):
        instance = stream.next_instance()
        # The detector consumes raw labelled instances; the third argument
        # (the classifier's prediction) is irrelevant for RBM-IM.
        if detector.step(instance.x, instance.y, instance.y):
            alarms.append((position, set(detector.drifted_classes or set())))
        if position % 500 == 499:
            error_log.append((position + 1, detector.last_per_class_errors))

    print("Per-class reconstruction error over time (one row per 500 instances):")
    header = "  position " + "".join(f"  class_{k:>2d}" for k in range(N_CLASSES))
    print(header)
    for position, errors in error_log:
        row = f"  {position:8d} "
        row += "".join(
            "     -   " if np.isnan(value) else f"  {value:7.3f}" for value in errors
        )
        print(row)

    print("\nDrift alarms (position -> classes blamed):")
    if not alarms:
        print("  none")
    for position, classes in alarms:
        timing = "after" if position >= DRIFT_POSITION else "BEFORE"
        print(f"  {position:6d} -> {sorted(classes)}   ({timing} the injected drift)")
    print(
        "\nNote: under heavy class imbalance the alarm may be attributed to a "
        "neighbouring class\nwhose learned representation was disturbed by the "
        "drifted one; on balanced streams the\nattribution matches the drifted "
        "class exactly (see tests/core/test_rbmim_detector.py)."
    )


if __name__ == "__main__":
    main()
