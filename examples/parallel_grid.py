"""Fan a detector-comparison grid across CPU cores with ExperimentGrid.

Builds a (2 streams x 3 detectors x 2 seeds) cross-product, runs every cell
as an independent chunked prequential experiment on a process pool, and
prints the seed-averaged pmAUC table plus per-cell wall times.

Run with::

    PYTHONPATH=src python examples/parallel_grid.py
"""

from __future__ import annotations

from repro.classifiers import GaussianNaiveBayes
from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors import DDM_OCI, FHDDM
from repro.evaluation import ExperimentGrid
from repro.streams import make_artificial_stream

N_INSTANCES = 4_000


def rbf_stream(seed: int):
    return make_artificial_stream(
        "rbf", n_classes=5, n_instances=N_INSTANCES,
        max_imbalance_ratio=25.0, seed=seed,
    )


def randomtree_stream(seed: int):
    return make_artificial_stream(
        "randomtree", n_classes=5, n_instances=N_INSTANCES,
        max_imbalance_ratio=25.0, seed=seed,
    )


def nb_classifier(n_features: int, n_classes: int):
    return GaussianNaiveBayes(n_features, n_classes)


def make_fhddm(n_features: int, n_classes: int):
    return FHDDM()


def make_ddm_oci(n_features: int, n_classes: int):
    return DDM_OCI(n_classes=n_classes)


def make_rbm_im(n_features: int, n_classes: int):
    return RBMIM(n_features, n_classes, RBMIMConfig(batch_size=50, seed=11))


def main() -> None:
    grid = ExperimentGrid(
        streams={"RBF5": rbf_stream, "RandomTree5": randomtree_stream},
        detectors={
            "FHDDM": make_fhddm,
            "DDM-OCI": make_ddm_oci,
            "RBM-IM": make_rbm_im,
        },
        seeds=[0, 1],
        classifier_factory=nb_classifier,
        pretrain_size=200,
        chunk_size=512,  # vectorized stream fetch inside every worker
    )
    print(f"running {len(grid)} cells on a process pool...")
    result = grid.run(backend="process")

    print()
    print(result.table("pmauc", scale=100.0).to_text())
    print()
    for cell_result in result.cells:
        cell = cell_result.cell
        status = "ok" if cell_result.ok else "FAILED"
        print(
            f"  {cell.stream:12s} {cell.detector:8s} seed={cell.seed}  "
            f"{cell_result.wall_time:5.1f}s  {status}"
        )
    if result.failures:
        raise SystemExit(f"{len(result.failures)} cells failed")


if __name__ == "__main__":
    main()
