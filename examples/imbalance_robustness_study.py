"""Imbalance-robustness study: how detectors cope as the skew grows.

Experiment 3 of the paper (Fig. 9) sweeps the maximum multi-class imbalance
ratio and shows that standard detectors collapse, the skew-insensitive
baselines survive moderate ratios, and RBM-IM stays robust.  This example runs
a scaled-down version of that sweep on a single artificial stream family and
prints the pmAUC series per detector, plus the Friedman ranks over the sweep.

Run with::

    python examples/imbalance_robustness_study.py
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import GaussianNaiveBayes
from repro.core import RBMIM, RBMIMConfig
from repro.detectors import DDM_OCI, FHDDM, PerfSim, WSTD
from repro.evaluation import compare_detectors, format_series_table, friedman_test
from repro.streams import make_artificial_stream

IMBALANCE_RATIOS = [25.0, 100.0, 300.0, 500.0]
N_INSTANCES = 3_000


def detector_factories():
    return {
        "WSTD": lambda f, c: WSTD(),
        "FHDDM": lambda f, c: FHDDM(),
        "PerfSim": lambda f, c: PerfSim(n_classes=c, batch_size=500),
        "DDM-OCI": lambda f, c: DDM_OCI(n_classes=c),
        "RBM-IM": lambda f, c: RBMIM(f, c, RBMIMConfig(batch_size=25, seed=3)),
    }


def classifier_factory(n_features: int, n_classes: int) -> GaussianNaiveBayes:
    return GaussianNaiveBayes(n_features, n_classes)


def main() -> None:
    series: dict[str, list[float]] = {name: [] for name in detector_factories()}
    for ratio in IMBALANCE_RATIOS:
        scenario = make_artificial_stream(
            family="rbf",
            n_classes=5,
            n_instances=N_INSTANCES,
            max_imbalance_ratio=ratio,
            seed=11,
        )
        results = compare_detectors(
            scenario,
            detector_factories=detector_factories(),
            classifier_factory=classifier_factory,
            n_instances=N_INSTANCES,
            pretrain_size=200,
        )
        for name, result in results.items():
            series[name].append(100.0 * result.pmauc)
        print(f"finished imbalance ratio {ratio:.0f}")

    print("\npmAUC [%] as the maximum imbalance ratio grows:")
    print(format_series_table("imbalance_ratio", [int(r) for r in IMBALANCE_RATIOS], series))

    matrix = np.column_stack([series[name] for name in series])
    friedman = friedman_test(matrix)
    print("\nFriedman test over the sweep:")
    print(f"  chi-square = {friedman.statistic:.3f}, p = {friedman.p_value:.4f}")
    for name, rank in zip(series, friedman.average_ranks):
        print(f"  {name:10s} average rank = {rank:.2f}")


if __name__ == "__main__":
    main()
