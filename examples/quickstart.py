"""Quickstart: monitor a drifting imbalanced stream with RBM-IM.

This example builds a multi-class imbalanced stream with three sudden concept
drifts (Scenario 1 of the paper), pairs the paper's cost-sensitive perceptron
tree with two drift detectors — RBM-IM and the classic FHDDM — and runs both
through the prequential (test-then-train) harness.  It prints the prequential
multi-class AUC / G-mean of each configuration, where each detector fired, and
how those alarms line up with the ground-truth drift positions.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import RBMIM, RBMIMConfig
from repro.detectors import FHDDM
from repro.evaluation import PrequentialRunner, default_classifier_factory
from repro.streams import make_artificial_stream

N_INSTANCES = 6_000


def main() -> None:
    # An RBF stream with 5 classes, 3 sudden drifts, and an imbalance ratio
    # oscillating up to 50:1 between the biggest and smallest class.
    scenario = make_artificial_stream(
        family="rbf",
        n_classes=5,
        n_instances=N_INSTANCES,
        n_drifts=3,
        max_imbalance_ratio=50.0,
        seed=42,
    )
    print(f"Stream: {scenario.name} ({scenario.n_classes} classes, "
          f"{scenario.n_features} features)")
    print(f"Ground-truth drift positions: {scenario.drift_points}\n")

    runner = PrequentialRunner(
        classifier_factory=default_classifier_factory,
        window_size=1000,
        pretrain_size=200,
    )

    detectors = {
        "RBM-IM": RBMIM(
            scenario.n_features,
            scenario.n_classes,
            RBMIMConfig(batch_size=50, seed=42),
        ),
        "FHDDM": FHDDM(window_size=100),
    }

    for name, detector in detectors.items():
        scenario.stream.restart()
        result = runner.run(scenario, detector, n_instances=N_INSTANCES,
                            detector_name=name)
        report = result.drift_report
        print(f"--- {name} ---")
        print(f"  pmAUC = {result.pmauc:.3f}   pmGM = {result.pmgm:.3f}")
        print(f"  alarms at: {result.detections}")
        if report is not None:
            print(f"  detected {report.n_detected}/{report.n_true_drifts} drifts, "
                  f"{report.n_false_alarms} false alarms, "
                  f"mean delay = {report.mean_delay:.0f} instances")
        print(f"  detector time = {result.detector_time:.2f}s, "
              f"classifier time = {result.classifier_time:.2f}s\n")


if __name__ == "__main__":
    main()
