"""STAGGER concepts generator (Schlimmer & Granger, 1986).

Three symbolic attributes — size {small, medium, large}, colour {red, green,
blue}, shape {square, circular, triangular} — one-hot encoded into nine binary
features.  Three classic boolean concepts are provided; a multi-class variant
assigns labels by counting how many of the three concept predicates hold.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import DataStream, Instance, StreamSchema

__all__ = ["StaggerGenerator"]

_SIZES = ("small", "medium", "large")
_COLOURS = ("red", "green", "blue")
_SHAPES = ("square", "circular", "triangular")


class StaggerGenerator(DataStream):
    """STAGGER boolean-concept stream over one-hot symbolic features.

    Parameters
    ----------
    concept:
        0: ``size=small and colour=red``;
        1: ``colour=green or shape=circular``;
        2: ``size=medium or size=large``.
    multi_class:
        When True the label counts how many of the three classic predicates
        hold (4 classes); otherwise the label is the selected concept's truth
        value (2 classes).
    """

    def __init__(
        self,
        concept: int = 0,
        multi_class: bool = False,
        noise: float = 0.0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if not 0 <= concept < 3:
            raise ValueError(f"concept must be in [0, 3), got {concept}")
        n_classes = 4 if multi_class else 2
        schema = StreamSchema(
            n_features=9,
            n_classes=n_classes,
            feature_names=tuple(
                f"{group}_{value}"
                for group, values in (
                    ("size", _SIZES),
                    ("colour", _COLOURS),
                    ("shape", _SHAPES),
                )
                for value in values
            ),
            name=name or "stagger",
        )
        super().__init__(schema, seed)
        self._concept = concept
        self._multi_class = multi_class
        self._noise = noise

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        if not 0 <= concept < 3:
            raise ValueError(f"concept must be in [0, 3), got {concept}")
        self._concept = concept

    @staticmethod
    def _predicates(size: int, colour: int, shape: int) -> tuple[bool, bool, bool]:
        return (
            size == 0 and colour == 0,
            colour == 1 or shape == 1,
            size in (1, 2),
        )

    def _generate(self) -> Instance:
        size = int(self._rng.integers(3))
        colour = int(self._rng.integers(3))
        shape = int(self._rng.integers(3))
        x = np.zeros(9)
        x[size] = 1.0
        x[3 + colour] = 1.0
        x[6 + shape] = 1.0
        predicates = self._predicates(size, colour, shape)
        if self._multi_class:
            label = int(sum(predicates))
        else:
            label = int(predicates[self._concept])
        if self._noise > 0.0 and self._rng.random() < self._noise:
            label = int(self._rng.integers(self.n_classes))
        return Instance(x=x, y=label)
