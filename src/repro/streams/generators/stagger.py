"""STAGGER concepts generator (Schlimmer & Granger, 1986).

Three symbolic attributes — size {small, medium, large}, colour {red, green,
blue}, shape {square, circular, triangular} — one-hot encoded into nine binary
features.  Three classic boolean concepts are provided; a multi-class variant
assigns labels by counting how many of the three concept predicates hold.
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["StaggerGenerator"]

_SIZES = ("small", "medium", "large")
_COLOURS = ("red", "green", "blue")
_SHAPES = ("square", "circular", "triangular")


class StaggerGenerator(DataStream):
    """STAGGER boolean-concept stream over one-hot symbolic features.

    Parameters
    ----------
    concept:
        0: ``size=small and colour=red``;
        1: ``colour=green or shape=circular``;
        2: ``size=medium or size=large``.
    multi_class:
        When True the label counts how many of the three classic predicates
        hold (4 classes); otherwise the label is the selected concept's truth
        value (2 classes).
    """

    def __init__(
        self,
        concept: int = 0,
        multi_class: bool = False,
        noise: float = 0.0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if not 0 <= concept < 3:
            raise ValueError(f"concept must be in [0, 3), got {concept}")
        n_classes = 4 if multi_class else 2
        schema = StreamSchema(
            n_features=9,
            n_classes=n_classes,
            feature_names=tuple(
                f"{group}_{value}"
                for group, values in (
                    ("size", _SIZES),
                    ("colour", _COLOURS),
                    ("shape", _SHAPES),
                )
                for value in values
            ),
            name=name or "stagger",
        )
        super().__init__(schema, seed)
        self._concept = concept
        self._multi_class = multi_class
        self._noise = noise

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        if not 0 <= concept < 3:
            raise ValueError(f"concept must be in [0, 3), got {concept}")
        self._concept = concept

    @staticmethod
    def _predicates(size: int, colour: int, shape: int) -> tuple[bool, bool, bool]:
        return (
            size == 0 and colour == 0,
            colour == 1 or shape == 1,
            size in (1, 2),
        )

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        noisy = self._noise > 0.0
        u = self._rng.random((n, 3 + (2 if noisy else 0)))
        size = vo.uniform_integers(u[:, 0], 3)
        colour = vo.uniform_integers(u[:, 1], 3)
        shape = vo.uniform_integers(u[:, 2], 3)
        features = np.zeros((n, 9))
        rows = np.arange(n)
        features[rows, size] = 1.0
        features[rows, 3 + colour] = 1.0
        features[rows, 6 + shape] = 1.0
        predicates = (
            (size == 0) & (colour == 0),
            (colour == 1) | (shape == 1),
            size >= 1,
        )
        if self._multi_class:
            labels = sum(p.astype(np.int64) for p in predicates)
        else:
            labels = predicates[self._concept].astype(np.int64)
        if noisy:
            flip = u[:, 3] < self._noise
            random_labels = vo.uniform_integers(u[:, 4], self.n_classes)
            labels = np.where(flip, random_labels, labels)
        return features, labels
