"""Waveform generator (Breiman et al., 1984; MOA WaveformGenerator).

Each instance is a random convex combination of two of three triangular base
waveforms sampled at 21 positions, plus Gaussian noise; the class identifies
the pair of waveforms combined.  Optionally 19 pure-noise attributes are
appended (the classic "waveform+noise" variant).
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["WaveformGenerator"]

_N_POSITIONS = 21


def _base_waveforms() -> np.ndarray:
    positions = np.arange(_N_POSITIONS, dtype=np.float64)
    h1 = np.maximum(6.0 - np.abs(positions - 7.0), 0.0)
    h2 = np.maximum(6.0 - np.abs(positions - 11.0), 0.0)
    h3 = np.maximum(6.0 - np.abs(positions - 15.0), 0.0)
    return np.vstack([h1, h2, h3])


class WaveformGenerator(DataStream):
    """Three-class waveform recognition stream.

    Parameters
    ----------
    add_noise_features:
        When True, append 19 standard-normal noise attributes (40 total).
    """

    _PAIRS = ((0, 1), (1, 2), (0, 2))

    def __init__(
        self,
        add_noise_features: bool = False,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        n_features = _N_POSITIONS + (19 if add_noise_features else 0)
        schema = StreamSchema(
            n_features=n_features, n_classes=3, name=name or "waveform"
        )
        super().__init__(schema, seed)
        self._add_noise = add_noise_features
        self._waves = _base_waveforms()
        self._pair_table = np.array(self._PAIRS, dtype=np.int64)

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        signal_cols = vo.n_normal_columns(_N_POSITIONS)
        extra_cols = vo.n_normal_columns(19) if self._add_noise else 0
        u = self._rng.random((n, 2 + signal_cols + extra_cols))
        labels = vo.uniform_integers(u[:, 0], 3)
        mix = u[:, 1][:, None]
        first = self._waves[self._pair_table[labels, 0]]
        second = self._waves[self._pair_table[labels, 1]]
        signal = mix * first + (1.0 - mix) * second
        signal = signal + vo.normals_from_uniform(
            u[:, 2 : 2 + signal_cols], _N_POSITIONS
        )
        if self._add_noise:
            noise = vo.normals_from_uniform(u[:, 2 + signal_cols :], 19)
            signal = np.concatenate([signal, noise], axis=1)
        return signal, labels
