"""Waveform generator (Breiman et al., 1984; MOA WaveformGenerator).

Each instance is a random convex combination of two of three triangular base
waveforms sampled at 21 positions, plus Gaussian noise; the class identifies
the pair of waveforms combined.  Optionally 19 pure-noise attributes are
appended (the classic "waveform+noise" variant).
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import DataStream, Instance, StreamSchema

__all__ = ["WaveformGenerator"]

_N_POSITIONS = 21


def _base_waveforms() -> np.ndarray:
    positions = np.arange(_N_POSITIONS, dtype=np.float64)
    h1 = np.maximum(6.0 - np.abs(positions - 7.0), 0.0)
    h2 = np.maximum(6.0 - np.abs(positions - 11.0), 0.0)
    h3 = np.maximum(6.0 - np.abs(positions - 15.0), 0.0)
    return np.vstack([h1, h2, h3])


class WaveformGenerator(DataStream):
    """Three-class waveform recognition stream.

    Parameters
    ----------
    add_noise_features:
        When True, append 19 standard-normal noise attributes (40 total).
    """

    _PAIRS = ((0, 1), (1, 2), (0, 2))

    def __init__(
        self,
        add_noise_features: bool = False,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        n_features = _N_POSITIONS + (19 if add_noise_features else 0)
        schema = StreamSchema(
            n_features=n_features, n_classes=3, name=name or "waveform"
        )
        super().__init__(schema, seed)
        self._add_noise = add_noise_features
        self._waves = _base_waveforms()

    def _generate(self) -> Instance:
        label = int(self._rng.integers(3))
        a, b = self._PAIRS[label]
        mix = float(self._rng.random())
        signal = mix * self._waves[a] + (1.0 - mix) * self._waves[b]
        signal = signal + self._rng.normal(0.0, 1.0, size=_N_POSITIONS)
        if self._add_noise:
            noise = self._rng.normal(0.0, 1.0, size=19)
            signal = np.concatenate([signal, noise])
        return Instance(x=signal, y=label)
