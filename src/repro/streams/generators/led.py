"""LED display generator (Breiman et al., 1984; MOA LEDGeneratorDrift).

The instance encodes the seven segments of an LED display showing a digit
0-9; the task is to predict the digit.  Noise flips each segment with a given
probability, and drift is modelled (as in MOA) by swapping the roles of a
number of attributes, which changes p(y|x) for every class simultaneously.
Extra irrelevant binary attributes can be appended.
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["LEDGenerator"]

_SEGMENTS = np.array(
    [
        [1, 1, 1, 0, 1, 1, 1],
        [0, 0, 1, 0, 0, 1, 0],
        [1, 0, 1, 1, 1, 0, 1],
        [1, 0, 1, 1, 0, 1, 1],
        [0, 1, 1, 1, 0, 1, 0],
        [1, 1, 0, 1, 0, 1, 1],
        [1, 1, 0, 1, 1, 1, 1],
        [1, 0, 1, 0, 0, 1, 0],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 0, 1, 1],
    ],
    dtype=np.float64,
)


class LEDGenerator(DataStream):
    """Seven-segment LED digit recognition stream.

    Parameters
    ----------
    noise_percentage:
        Probability of inverting each relevant segment.
    n_irrelevant:
        Number of additional random binary attributes appended to the
        instance.
    n_drift_attributes:
        Number of attribute positions swapped relative to the canonical
        layout — MOA's mechanism for injecting drift into LED streams.
    """

    def __init__(
        self,
        noise_percentage: float = 0.1,
        n_irrelevant: int = 17,
        n_drift_attributes: int = 0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if not 0.0 <= noise_percentage <= 1.0:
            raise ValueError("noise_percentage must be in [0, 1]")
        n_features = 7 + n_irrelevant
        if not 0 <= n_drift_attributes <= n_features:
            raise ValueError("n_drift_attributes must be in [0, n_features]")
        schema = StreamSchema(
            n_features=n_features, n_classes=10, name=name or "led"
        )
        super().__init__(schema, seed)
        self._noise = noise_percentage
        self._n_irrelevant = n_irrelevant
        self._permutation = np.arange(n_features)
        self.set_drift_attributes(n_drift_attributes)

    def set_drift_attributes(self, n_drift_attributes: int) -> None:
        """Swap ``n_drift_attributes`` positions, changing feature semantics."""
        if not 0 <= n_drift_attributes <= self.n_features:
            raise ValueError("n_drift_attributes must be in [0, n_features]")
        self._n_drift = n_drift_attributes
        permutation = np.arange(self.n_features)
        if n_drift_attributes > 1:
            swap_rng = np.random.default_rng(31_000 + n_drift_attributes)
            chosen = swap_rng.choice(
                self.n_features, size=n_drift_attributes, replace=False
            )
            permutation[chosen] = np.roll(permutation[chosen], 1)
        self._permutation = permutation

    @property
    def n_drift_attributes(self) -> int:
        return self._n_drift

    def _snapshot_extra(self) -> dict:
        return {"n_drift": self._n_drift}

    def _restore_extra(self, extra: dict) -> None:
        self.set_drift_attributes(int(extra["n_drift"]))

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        u = self._rng.random((n, 8 + self._n_irrelevant))
        digits = vo.uniform_integers(u[:, 0], 10)
        segments = _SEGMENTS[digits]
        flips = u[:, 1:8] < self._noise
        segments = np.where(flips, 1.0 - segments, segments)
        irrelevant = np.floor(u[:, 8:] * 2.0)
        features = np.concatenate([segments, irrelevant], axis=1)[:, self._permutation]
        return features, digits
