"""Synthetic data-stream generators.

These are pure Python/NumPy re-implementations of the MOA generators used in
the paper's evaluation (Agrawal, Hyperplane, RandomRBF, RandomTree) plus a set
of additional classic stream generators (SEA, Sine, STAGGER, LED, Waveform,
Mixed) that are useful for tests, examples, and ablations.

Every generator derives from :class:`repro.streams.base.DataStream`, exposes a
``concept`` parameter (or equivalent) so that the drift wrappers in
:mod:`repro.streams.drift` can switch between concepts, and is deterministic
for a fixed seed.
"""

from repro.streams.generators.agrawal import AgrawalGenerator
from repro.streams.generators.hyperplane import HyperplaneGenerator
from repro.streams.generators.led import LEDGenerator
from repro.streams.generators.mixed import MixedGenerator
from repro.streams.generators.random_tree import RandomTreeGenerator
from repro.streams.generators.rbf import RandomRBFGenerator
from repro.streams.generators.sea import SEAGenerator
from repro.streams.generators.sine import SineGenerator
from repro.streams.generators.stagger import StaggerGenerator
from repro.streams.generators.waveform import WaveformGenerator

__all__ = [
    "AgrawalGenerator",
    "HyperplaneGenerator",
    "LEDGenerator",
    "MixedGenerator",
    "RandomRBFGenerator",
    "RandomTreeGenerator",
    "SEAGenerator",
    "SineGenerator",
    "StaggerGenerator",
    "WaveformGenerator",
]
