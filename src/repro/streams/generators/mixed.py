"""MIXED generator (Gama et al., 2004).

Two boolean and two numeric attributes; the positive concept holds when at
least two of three conditions are met: ``v``, ``w``, and
``x2 < 0.5 + 0.3 sin(3*pi*x1)``.  Concept 1 reverses the labels.  This small
generator is mainly used in unit tests and examples of abrupt drift.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import DataStream, StreamSchema

__all__ = ["MixedGenerator"]


class MixedGenerator(DataStream):
    """MIXED abrupt-drift benchmark stream (two concepts, binary labels)."""

    def __init__(
        self,
        concept: int = 0,
        noise: float = 0.0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if concept not in (0, 1):
            raise ValueError("MIXED has exactly two concepts: 0 and 1")
        schema = StreamSchema(n_features=4, n_classes=2, name=name or "mixed")
        super().__init__(schema, seed)
        self._concept = concept
        self._noise = noise

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        if concept not in (0, 1):
            raise ValueError("MIXED has exactly two concepts: 0 and 1")
        self._concept = concept

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        noisy = self._noise > 0.0
        u = self._rng.random((n, 4 + (1 if noisy else 0)))
        v = np.floor(u[:, 0] * 2.0)
        w = np.floor(u[:, 1] * 2.0)
        x1 = u[:, 2]
        x2 = u[:, 3]
        conditions = (
            (v == 1.0).astype(np.int64)
            + (w == 1.0).astype(np.int64)
            + (x2 < 0.5 + 0.3 * np.sin(3.0 * np.pi * x1)).astype(np.int64)
        )
        labels = (conditions >= 2).astype(np.int64)
        if self._concept == 1:
            labels = 1 - labels
        if noisy:
            flip = u[:, 4] < self._noise
            labels = np.where(flip, 1 - labels, labels)
        features = np.stack([v, w, x1, x2], axis=1)
        return features, labels
