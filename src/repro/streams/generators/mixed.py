"""MIXED generator (Gama et al., 2004).

Two boolean and two numeric attributes; the positive concept holds when at
least two of three conditions are met: ``v``, ``w``, and
``x2 < 0.5 + 0.3 sin(3*pi*x1)``.  Concept 1 reverses the labels.  This small
generator is mainly used in unit tests and examples of abrupt drift.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import DataStream, Instance, StreamSchema

__all__ = ["MixedGenerator"]


class MixedGenerator(DataStream):
    """MIXED abrupt-drift benchmark stream (two concepts, binary labels)."""

    def __init__(
        self,
        concept: int = 0,
        noise: float = 0.0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if concept not in (0, 1):
            raise ValueError("MIXED has exactly two concepts: 0 and 1")
        schema = StreamSchema(n_features=4, n_classes=2, name=name or "mixed")
        super().__init__(schema, seed)
        self._concept = concept
        self._noise = noise

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        if concept not in (0, 1):
            raise ValueError("MIXED has exactly two concepts: 0 and 1")
        self._concept = concept

    def _generate(self) -> Instance:
        v = float(self._rng.integers(2))
        w = float(self._rng.integers(2))
        x1 = float(self._rng.random())
        x2 = float(self._rng.random())
        conditions = [
            v == 1.0,
            w == 1.0,
            x2 < 0.5 + 0.3 * np.sin(3.0 * np.pi * x1),
        ]
        label = int(sum(conditions) >= 2)
        if self._concept == 1:
            label = 1 - label
        if self._noise > 0.0 and self._rng.random() < self._noise:
            label = 1 - label
        return Instance(x=np.array([v, w, x1, x2]), y=label)
