"""Random decision-tree generator.

A random decision tree over numeric features is built first; instances are
then sampled uniformly from the feature space and labelled by routing them
through the tree.  Switching ``concept`` rebuilds the tree, giving a sudden
real drift with completely new decision boundaries — the behaviour the paper
relies on for the RandomTree5/10/20 streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["RandomTreeGenerator"]


@dataclass
class _Node:
    """Internal node (split) or leaf (label) of the generating tree."""

    feature: int = -1
    threshold: float = 0.0
    label: int = -1
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.label >= 0


class RandomTreeGenerator(DataStream):
    """Stream labelled by a randomly generated decision tree.

    Parameters
    ----------
    n_classes, n_features:
        Shape of the problem.
    max_depth:
        Depth of the generating tree.
    leaf_fraction:
        Probability of turning an internal node into a leaf early (before
        ``max_depth``), controlling boundary complexity.
    noise:
        Probability of replacing the tree label with a random class.
    concept:
        Index selecting the generating tree; a new concept is a new tree.
    """

    def __init__(
        self,
        n_classes: int = 5,
        n_features: int = 20,
        max_depth: int = 6,
        leaf_fraction: float = 0.15,
        noise: float = 0.0,
        concept: int = 0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        schema = StreamSchema(
            n_features=n_features,
            n_classes=n_classes,
            name=name or f"randomtree{n_classes}",
        )
        super().__init__(schema, seed)
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self._max_depth = max_depth
        self._leaf_fraction = leaf_fraction
        self._noise = noise
        self._concept = concept
        self._root = self._build_tree(concept)

    def _build_tree(self, concept: int) -> _Node:
        tree_rng = np.random.default_rng(23_000 + concept)
        label_cycle = iter([])

        def next_label() -> int:
            nonlocal label_cycle
            try:
                return next(label_cycle)
            except StopIteration:
                # Cycle through all classes first so each appears in the tree,
                # then continue with uniformly random labels.
                label_cycle = iter(tree_rng.permutation(self.n_classes).tolist())
                return next(label_cycle)

        def build(depth: int, low: np.ndarray, high: np.ndarray) -> _Node:
            early_leaf = depth > 1 and tree_rng.random() < self._leaf_fraction
            if depth >= self._max_depth or early_leaf:
                return _Node(label=next_label())
            feature = int(tree_rng.integers(self.n_features))
            threshold = float(tree_rng.uniform(low[feature], high[feature]))
            node = _Node(feature=feature, threshold=threshold)
            left_high = high.copy()
            left_high[feature] = threshold
            right_low = low.copy()
            right_low[feature] = threshold
            node.left = build(depth + 1, low, left_high)
            node.right = build(depth + 1, right_low, high)
            return node

        low = np.zeros(self.n_features)
        high = np.ones(self.n_features)
        return build(0, low, high)

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        """Rebuild the generating tree (sudden real drift on all classes)."""
        self._concept = concept
        self._root = self._build_tree(concept)

    def _classify(self, x: np.ndarray) -> int:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.label

    def _classify_batch(self, features: np.ndarray) -> np.ndarray:
        """Route a whole batch through the tree with index masks per node."""
        labels = np.empty(features.shape[0], dtype=np.int64)
        stack: list[tuple[_Node, np.ndarray]] = [
            (self._root, np.arange(features.shape[0]))
        ]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                labels[idx] = node.label
                continue
            go_left = features[idx, node.feature] <= node.threshold
            assert node.left is not None and node.right is not None
            stack.append((node.left, idx[go_left]))
            stack.append((node.right, idx[~go_left]))
        return labels

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        noisy = self._noise > 0.0
        u = self._rng.random((n, self.n_features + (2 if noisy else 0)))
        features = u[:, : self.n_features].copy()
        labels = self._classify_batch(features)
        if noisy:
            flip = u[:, self.n_features] < self._noise
            random_labels = vo.uniform_integers(
                u[:, self.n_features + 1], self.n_classes
            )
            labels = np.where(flip, random_labels, labels)
        return features, labels
