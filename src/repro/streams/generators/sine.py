"""Sine generator (Gama et al., 2004 drift benchmarks).

Two uniform features in [0, 1]; the label depends on whether the point lies
above or below a sine curve.  Four classic concepts are provided (SINE1,
SINE2 and their reversed variants) and a multi-class extension is obtained by
measuring the signed distance to the curve and slicing it into bands.
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["SineGenerator"]


class SineGenerator(DataStream):
    """Sine-curve classification stream.

    Parameters
    ----------
    n_classes:
        Number of bands on the signed distance to the curve (2 reproduces the
        classic generator).
    concept:
        0: ``sin(2*pi*x1)`` curve; 1: ``0.5 + 0.3 sin(3*pi*x1)`` curve;
        2 and 3 are the label-reversed variants of 0 and 1.
    noise:
        Label flip probability.
    """

    def __init__(
        self,
        n_classes: int = 2,
        concept: int = 0,
        noise: float = 0.0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if not 0 <= concept < 4:
            raise ValueError(f"concept must be in [0, 4), got {concept}")
        schema = StreamSchema(n_features=2, n_classes=n_classes, name=name or "sine")
        super().__init__(schema, seed)
        self._concept = concept
        self._noise = noise

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        if not 0 <= concept < 4:
            raise ValueError(f"concept must be in [0, 4), got {concept}")
        self._concept = concept

    def _curve(self, x1: np.ndarray) -> np.ndarray:
        if self._concept % 2 == 0:
            return 0.5 + 0.4 * np.sin(2.0 * np.pi * x1)
        return 0.5 + 0.3 * np.sin(3.0 * np.pi * x1)

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        noisy = self._noise > 0.0
        u = self._rng.random((n, 2 + (2 if noisy else 0)))
        features = u[:, :2].copy()
        distance = features[:, 1] - self._curve(features[:, 0])  # roughly [-1, 1]
        if self._concept >= 2:
            distance = -distance
        score = np.clip((distance + 1.0) / 2.0, 0.0, 1.0 - 1e-9)
        labels = (score * self.n_classes).astype(np.int64)
        if noisy:
            flip = u[:, 2] < self._noise
            random_labels = vo.uniform_integers(u[:, 3], self.n_classes)
            labels = np.where(flip, random_labels, labels)
        return features, labels
