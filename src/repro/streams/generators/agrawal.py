"""Multi-class Agrawal generator.

The classic Agrawal generator produces loan-application records (salary,
commission, age, education level, car maker, zip code, house value, years the
house has been owned, loan amount) and labels them with one of ten predefined
binary decision functions.  The paper uses multi-class variants (Aggrawal5,
Aggrawal10, Aggrawal20) with 20/40/80 features and 5/10/20 classes, so this
implementation generalises the original generator in two ways:

* the feature block is replicated as many times as needed to reach the
  requested dimensionality, each block drawn independently;
* the label is produced by binning a continuous *risk score* computed from the
  classic decision-function ingredients into ``n_classes`` quantile bins, which
  yields a genuinely multi-class concept.  Switching ``concept`` changes the
  weighting of the score ingredients, which moves the decision boundaries the
  same way switching Agrawal functions does in MOA.
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["AgrawalGenerator"]

_BASE_BLOCK_FEATURES = 9
_N_CONCEPTS = 10


class AgrawalGenerator(DataStream):
    """Multi-class generalisation of the Agrawal loan-application generator.

    Parameters
    ----------
    n_classes:
        Number of classes to produce (>= 2).
    n_features:
        Total number of numeric features.  The canonical 9-feature block is
        tiled (and truncated) to reach this width.
    concept:
        Concept index in ``[0, 10)``.  Each concept uses a different weighting
        of the score ingredients, changing p(y|x).
    perturbation:
        Fraction of feature noise added to each instance (as in MOA).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_classes: int = 5,
        n_features: int = 20,
        concept: int = 0,
        perturbation: float = 0.05,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if not 0 <= concept < _N_CONCEPTS:
            raise ValueError(f"concept must be in [0, {_N_CONCEPTS}), got {concept}")
        if not 0.0 <= perturbation <= 1.0:
            raise ValueError("perturbation must be in [0, 1]")
        schema = StreamSchema(
            n_features=n_features,
            n_classes=n_classes,
            name=name or f"agrawal{n_classes}",
        )
        super().__init__(schema, seed)
        self._concept = concept
        self._perturbation = perturbation
        self._init_concept(concept)

    def _init_concept(self, concept: int) -> None:
        # Per-concept ingredient weights: deterministic, independent of the
        # stream seed so that the same concept index always means the same
        # concept (required for drift wrappers to be meaningful).
        concept_rng = np.random.default_rng(1_000 + concept)
        self._weights = concept_rng.uniform(-1.0, 1.0, size=6)
        # Bin edges are placed at the empirical quantiles of the score under
        # this concept so every class is reachable regardless of the weights.
        sample_scores = np.array(
            [self._score(self._sample_block(concept_rng)) for _ in range(2_000)]
        )
        quantiles = np.linspace(0.0, 1.0, self.n_classes + 1)[1:-1]
        self._bin_edges = np.quantile(sample_scores, quantiles)

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        """Switch to a different labelling concept (keeps feature distribution)."""
        if not 0 <= concept < _N_CONCEPTS:
            raise ValueError(f"concept must be in [0, {_N_CONCEPTS}), got {concept}")
        self._concept = concept
        self._init_concept(concept)

    def _sample_block(self, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = self._rng if rng is None else rng
        salary = rng.uniform(20_000, 150_000)
        commission = 0.0 if salary >= 75_000 else rng.uniform(10_000, 75_000)
        age = rng.integers(20, 81)
        elevel = rng.integers(0, 5)
        car = rng.integers(1, 21)
        zipcode = rng.integers(0, 9)
        hvalue = (9 - zipcode) * 100_000 * rng.uniform(0.5, 1.5)
        hyears = rng.integers(1, 31)
        loan = rng.uniform(0, 500_000)
        return np.array(
            [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan],
            dtype=np.float64,
        )

    def _score(self, block: np.ndarray) -> float:
        salary, commission, age, elevel, _car, _zip, hvalue, hyears, loan = block
        ingredients = np.array(
            [
                salary / 150_000.0,
                commission / 75_000.0,
                age / 80.0,
                elevel / 4.0,
                (hvalue / 1_350_000.0) - (loan / 500_000.0),
                hyears / 30.0,
            ]
        )
        raw = float(self._weights @ ingredients)
        return 1.0 / (1.0 + np.exp(-3.0 * raw))

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        n_features = self.n_features
        n_blocks = int(np.ceil(n_features / _BASE_BLOCK_FEATURES))
        block_cols = _BASE_BLOCK_FEATURES * n_blocks
        perturb_cols = vo.n_normal_columns(n_features) if self._perturbation > 0.0 else 0
        u = self._rng.random((n, block_cols + perturb_cols))
        raw = u[:, :block_cols].reshape(n, n_blocks, _BASE_BLOCK_FEATURES)

        salary = vo.scale_uniform(raw[..., 0], 20_000, 150_000)
        # The commission uniform is always consumed (fixed draw budget per
        # instance); high earners have it zeroed, preserving the original
        # conditional distribution.
        commission = np.where(
            salary >= 75_000, 0.0, vo.scale_uniform(raw[..., 1], 10_000, 75_000)
        )
        age = vo.uniform_integers(raw[..., 2], 20, 81).astype(np.float64)
        elevel = vo.uniform_integers(raw[..., 3], 0, 5).astype(np.float64)
        car = vo.uniform_integers(raw[..., 4], 1, 21).astype(np.float64)
        zipcode = vo.uniform_integers(raw[..., 5], 0, 9).astype(np.float64)
        hvalue = (9.0 - zipcode) * 100_000 * vo.scale_uniform(raw[..., 6], 0.5, 1.5)
        hyears = vo.uniform_integers(raw[..., 7], 1, 31).astype(np.float64)
        loan = vo.scale_uniform(raw[..., 8], 0.0, 500_000)

        blocks = np.stack(
            [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan],
            axis=-1,
        )  # (n, n_blocks, 9)
        features = blocks.reshape(n, block_cols)[:, :n_features].copy()

        ingredients = np.stack(
            [
                salary[:, 0] / 150_000.0,
                commission[:, 0] / 75_000.0,
                age[:, 0] / 80.0,
                elevel[:, 0] / 4.0,
                (hvalue[:, 0] / 1_350_000.0) - (loan[:, 0] / 500_000.0),
                hyears[:, 0] / 30.0,
            ],
            axis=1,
        )
        raw_scores = np.sum(ingredients * self._weights, axis=1)
        scores = 1.0 / (1.0 + np.exp(-3.0 * raw_scores))
        labels = np.searchsorted(self._bin_edges, scores).astype(np.int64)

        if self._perturbation > 0.0:
            noise = vo.normals_from_uniform(u[:, block_cols:], n_features)
            features = features * (1.0 + noise * self._perturbation)
        return features, labels
