"""SEA concepts generator (Street & Kim, 2001), multi-class extension.

The original SEA generator draws three uniform features in [0, 10] and labels
an instance positive when ``x1 + x2 <= theta`` for a per-concept threshold
``theta``.  The multi-class extension used here slices ``x1 + x2`` into
``n_classes`` bands whose boundaries shift with the concept index, preserving
the original generator's structure while supporting more than two classes.
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["SEAGenerator"]

_CONCEPT_OFFSETS = (0.0, 1.0, -1.0, 2.0)


class SEAGenerator(DataStream):
    """SEA concepts stream with a configurable number of classes.

    Parameters
    ----------
    n_classes:
        Number of label bands on ``x1 + x2``.
    concept:
        Concept index in ``[0, 4)``; each concept shifts the band boundaries.
    noise:
        Probability of label flip to a random class.
    n_features:
        Total number of features; only the first two are relevant, the rest
        are uniform noise (as in the original generator's third feature).
    """

    def __init__(
        self,
        n_classes: int = 2,
        concept: int = 0,
        noise: float = 0.1,
        n_features: int = 3,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if n_features < 2:
            raise ValueError("SEA requires at least 2 features")
        if not 0 <= concept < len(_CONCEPT_OFFSETS):
            raise ValueError(
                f"concept must be in [0, {len(_CONCEPT_OFFSETS)}), got {concept}"
            )
        schema = StreamSchema(
            n_features=n_features, n_classes=n_classes, name=name or "sea"
        )
        super().__init__(schema, seed)
        self._concept = concept
        self._noise = noise
        self._recompute_edges()

    def _recompute_edges(self) -> None:
        offset = _CONCEPT_OFFSETS[self._concept]
        # x1 + x2 ranges over [0, 20]; distribute band edges evenly and shift.
        edges = np.linspace(0.0, 20.0, self.n_classes + 1)[1:-1] + offset
        self._edges = edges

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        if not 0 <= concept < len(_CONCEPT_OFFSETS):
            raise ValueError(
                f"concept must be in [0, {len(_CONCEPT_OFFSETS)}), got {concept}"
            )
        self._concept = concept
        self._recompute_edges()

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        n_features = self.n_features
        noisy = self._noise > 0.0
        u = self._rng.random((n, n_features + (2 if noisy else 0)))
        features = vo.scale_uniform(u[:, :n_features], 0.0, 10.0)
        labels = np.searchsorted(self._edges, features[:, 0] + features[:, 1])
        labels = labels.astype(np.int64)
        if noisy:
            flip = u[:, n_features] < self._noise
            random_labels = vo.uniform_integers(u[:, n_features + 1], self.n_classes)
            labels = np.where(flip, random_labels, labels)
        return features, labels
