"""Rotating hyperplane generator (multi-class).

The hyperplane generator labels points in the unit hypercube by which side of
a moving hyperplane they fall on.  The multi-class variant used in the paper
(Hyperplane5/10/20) is obtained by slicing the signed distance to the
hyperplane into ``n_classes`` bands.  Incremental/gradual drift is produced by
letting the hyperplane weights move continuously (``mag_change``); the drift
wrappers can additionally switch whole concepts by re-randomising the weights.
"""

from __future__ import annotations

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["HyperplaneGenerator"]


class HyperplaneGenerator(DataStream):
    """Multi-class rotating hyperplane stream.

    Parameters
    ----------
    n_classes:
        Number of label bands.
    n_features:
        Dimensionality of the unit hypercube.
    mag_change:
        Magnitude of per-instance weight drift (0 = stationary concept).
    noise:
        Probability of flipping the label to a uniformly random class.
    sigma_direction_change:
        Probability of reversing the drift direction of each weight after an
        instance (as in MOA's ``sigmaPercentage``).
    concept:
        Seed offset for the initial hyperplane weights; switching concepts
        re-randomises the weight vector.
    """

    def __init__(
        self,
        n_classes: int = 5,
        n_features: int = 20,
        mag_change: float = 0.0,
        noise: float = 0.05,
        sigma_direction_change: float = 0.1,
        concept: int = 0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        schema = StreamSchema(
            n_features=n_features,
            n_classes=n_classes,
            name=name or f"hyperplane{n_classes}",
        )
        super().__init__(schema, seed)
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self._mag_change = mag_change
        self._noise = noise
        self._sigma = sigma_direction_change
        self._concept = concept
        self._init_concept(concept)

    def _init_concept(self, concept: int) -> None:
        concept_rng = np.random.default_rng(7_000 + concept)
        self._weights = concept_rng.uniform(-1.0, 1.0, size=self.n_features)
        self._directions = concept_rng.choice([-1.0, 1.0], size=self.n_features)

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        """Switch to a freshly randomised hyperplane (sudden real drift)."""
        self._concept = concept
        self._init_concept(concept)

    def _snapshot_extra(self) -> dict:
        # The hyperplane drifts during generation, so the evolved weights
        # (not just the concept they started from) are part of the state.
        return {"weights": self._weights, "directions": self._directions}

    def _restore_extra(self, extra: dict) -> None:
        self._weights = extra["weights"]
        self._directions = extra["directions"]

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        n_features = self.n_features
        noisy = self._noise > 0.0
        drifting = self._mag_change > 0.0
        noise_cols = 2 if noisy else 0
        drift_cols = n_features if drifting else 0
        u = self._rng.random((n, n_features + noise_cols + drift_cols))
        features = u[:, :n_features].copy()

        if drifting:
            # The hyperplane moves after every instance and the per-weight
            # drift direction can flip; unroll the recurrence with cumulative
            # products/sums so instance i sees the weights as of step i.
            flips = u[:, n_features + noise_cols :] < self._sigma
            signs = np.where(flips, -1.0, 1.0)
            cumulative_signs = np.cumprod(signs, axis=0)
            directions = self._directions * np.vstack(
                [np.ones(n_features), cumulative_signs[:-1]]
            )
            # cumsum seeded with the current weights is a sequential left
            # fold, so the trajectory (and its float rounding) is identical
            # to n per-instance `weights += mag * direction` updates.
            trajectory = np.cumsum(
                np.vstack([self._weights[None, :], self._mag_change * directions]),
                axis=0,
            )
            weights = trajectory[:-1]
            self._weights = trajectory[-1]
            self._directions = self._directions * cumulative_signs[-1]
            norms = np.sum(np.abs(weights), axis=1) + 1e-12
            margins = np.sum(weights * (features - 0.5), axis=1) / norms
        else:
            # Explicit elementwise-multiply-and-reduce rather than a matmul:
            # the reduction pattern (and hence rounding) is then independent
            # of the batch size, keeping batch(n) == n x batch(1) bitwise.
            norm = np.sum(np.abs(self._weights)) + 1e-12
            margins = np.sum((features - 0.5) * self._weights, axis=1) / norm

        # Signed, weight-normalised distance from the hyperplane through the
        # centre of the hypercube, mapped to [0, 1].
        score = np.clip(0.5 + margins, 0.0, 1.0 - 1e-9)
        labels = (score * self.n_classes).astype(np.int64)
        if noisy:
            flip = u[:, n_features] < self._noise
            random_labels = vo.uniform_integers(u[:, n_features + 1], self.n_classes)
            labels = np.where(flip, random_labels, labels)
        return features, labels
