"""Rotating hyperplane generator (multi-class).

The hyperplane generator labels points in the unit hypercube by which side of
a moving hyperplane they fall on.  The multi-class variant used in the paper
(Hyperplane5/10/20) is obtained by slicing the signed distance to the
hyperplane into ``n_classes`` bands.  Incremental/gradual drift is produced by
letting the hyperplane weights move continuously (``mag_change``); the drift
wrappers can additionally switch whole concepts by re-randomising the weights.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import DataStream, Instance, StreamSchema

__all__ = ["HyperplaneGenerator"]


class HyperplaneGenerator(DataStream):
    """Multi-class rotating hyperplane stream.

    Parameters
    ----------
    n_classes:
        Number of label bands.
    n_features:
        Dimensionality of the unit hypercube.
    mag_change:
        Magnitude of per-instance weight drift (0 = stationary concept).
    noise:
        Probability of flipping the label to a uniformly random class.
    sigma_direction_change:
        Probability of reversing the drift direction of each weight after an
        instance (as in MOA's ``sigmaPercentage``).
    concept:
        Seed offset for the initial hyperplane weights; switching concepts
        re-randomises the weight vector.
    """

    def __init__(
        self,
        n_classes: int = 5,
        n_features: int = 20,
        mag_change: float = 0.0,
        noise: float = 0.05,
        sigma_direction_change: float = 0.1,
        concept: int = 0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        schema = StreamSchema(
            n_features=n_features,
            n_classes=n_classes,
            name=name or f"hyperplane{n_classes}",
        )
        super().__init__(schema, seed)
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self._mag_change = mag_change
        self._noise = noise
        self._sigma = sigma_direction_change
        self._concept = concept
        self._init_concept(concept)

    def _init_concept(self, concept: int) -> None:
        concept_rng = np.random.default_rng(7_000 + concept)
        self._weights = concept_rng.uniform(-1.0, 1.0, size=self.n_features)
        self._directions = concept_rng.choice([-1.0, 1.0], size=self.n_features)

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        """Switch to a freshly randomised hyperplane (sudden real drift)."""
        self._concept = concept
        self._init_concept(concept)

    def _generate(self) -> Instance:
        x = self._rng.uniform(0.0, 1.0, size=self.n_features)
        # Signed, weight-normalised distance from the hyperplane through the
        # centre of the hypercube, mapped to [0, 1].
        norm = np.sum(np.abs(self._weights)) + 1e-12
        margin = float(self._weights @ (x - 0.5)) / norm
        score = 0.5 + margin  # in [0, 1] approximately
        score = float(np.clip(score, 0.0, 1.0 - 1e-9))
        label = int(score * self.n_classes)
        if self._noise > 0.0 and self._rng.random() < self._noise:
            label = int(self._rng.integers(self.n_classes))
        # Incremental concept drift: move the hyperplane.
        if self._mag_change > 0.0:
            self._weights += self._directions * self._mag_change
            flips = self._rng.random(self.n_features) < self._sigma
            self._directions[flips] *= -1.0
        return Instance(x=x, y=label)
