"""Random RBF (radial basis function) generator.

Instances are drawn from a mixture of Gaussian centroids, each centroid being
assigned to a class.  This is the classic MOA RandomRBF generator; the paper
uses RBF5/RBF10/RBF20 with sudden drifts, which correspond to replacing the
set of centroids (a new ``concept``).  Optionally the centroids can move with
constant speed to model incremental drift (the MOA "RandomRBFDrift" variant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streams import vector_ops as vo
from repro.streams.base import DataStream, StreamSchema

__all__ = ["RandomRBFGenerator"]


@dataclass
class _Centroid:
    centre: np.ndarray
    class_label: int
    std_dev: float
    weight: float
    direction: np.ndarray


class RandomRBFGenerator(DataStream):
    """Stream generated from randomly placed class-labelled Gaussian centroids.

    Parameters
    ----------
    n_classes, n_features:
        Shape of the problem.
    n_centroids:
        Number of Gaussian centroids; each is assigned a class label so that
        every class owns at least one centroid.
    centroid_speed:
        Per-instance displacement of each centroid along a random unit vector
        (0 = stationary concept; >0 = incremental drift).
    concept:
        Index controlling the centroid layout; switching concepts replaces all
        centroids (sudden real drift).
    """

    def __init__(
        self,
        n_classes: int = 5,
        n_features: int = 20,
        n_centroids: int = 50,
        centroid_speed: float = 0.0,
        concept: int = 0,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        if n_centroids < n_classes:
            raise ValueError("n_centroids must be >= n_classes")
        schema = StreamSchema(
            n_features=n_features,
            n_classes=n_classes,
            name=name or f"rbf{n_classes}",
        )
        super().__init__(schema, seed)
        self._n_centroids = n_centroids
        self._centroid_speed = centroid_speed
        self._concept = concept
        self._centroids: list[_Centroid] = []
        self._init_concept(concept)

    def _init_concept(self, concept: int) -> None:
        concept_rng = np.random.default_rng(11_000 + concept)
        self._centroids = []
        for idx in range(self._n_centroids):
            centre = concept_rng.uniform(0.0, 1.0, size=self.n_features)
            # Guarantee every class has at least one centroid.
            label = idx % self.n_classes if idx < self.n_classes else int(
                concept_rng.integers(self.n_classes)
            )
            std_dev = concept_rng.uniform(0.02, 0.12)
            weight = concept_rng.uniform(0.2, 1.0)
            direction = concept_rng.normal(size=self.n_features)
            direction /= np.linalg.norm(direction) + 1e-12
            self._centroids.append(
                _Centroid(centre, label, std_dev, weight, direction)
            )
        weights = np.array([c.weight for c in self._centroids])
        self._probs = weights / weights.sum()
        self._refresh_centroid_arrays()

    def _refresh_centroid_arrays(self) -> None:
        """Dense views of the centroid list used by the vectorized batch path."""
        self._centres = np.stack([c.centre for c in self._centroids])
        self._std_devs = np.array([c.std_dev for c in self._centroids])
        self._labels = np.array(
            [c.class_label for c in self._centroids], dtype=np.int64
        )

    @property
    def concept(self) -> int:
        return self._concept

    def set_concept(self, concept: int) -> None:
        """Replace every centroid — a sudden real drift on all classes."""
        self._concept = concept
        self._init_concept(concept)

    def _snapshot_extra(self) -> dict:
        # Centroids move during generation when centroid_speed > 0; their
        # std-devs/labels/weights stay concept-derived and are rebuilt by
        # set_concept on restore.
        return {"centres": self._centres}

    def _restore_extra(self, extra: dict) -> None:
        centres = extra["centres"]
        for i, centroid in enumerate(self._centroids):
            centroid.centre = centres[i].copy()
        self._refresh_centroid_arrays()

    def centroids_of_class(self, label: int) -> list[np.ndarray]:
        """Return the centres currently assigned to ``label`` (for inspection)."""
        return [c.centre.copy() for c in self._centroids if c.class_label == label]

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        n_features = self.n_features
        normal_cols = vo.n_normal_columns(n_features)
        u = self._rng.random((n, 1 + normal_cols))
        idx = vo.categorical_from_uniform(u[:, 0], self._probs)
        offsets = vo.normals_from_uniform(u[:, 1:], n_features)
        labels = self._labels[idx]
        if self._centroid_speed > 0.0:
            # Incremental drift moves the sampled centroid after every draw,
            # a sequential recurrence; iterate, but reuse the pre-drawn
            # uniform block so the RNG consumption stays batch-invariant.
            features = np.empty((n, n_features))
            for i in range(n):
                centroid = self._centroids[int(idx[i])]
                features[i] = np.clip(
                    centroid.centre + offsets[i] * centroid.std_dev, 0.0, 1.0
                )
                centroid.centre = np.clip(
                    centroid.centre + centroid.direction * self._centroid_speed,
                    0.0,
                    1.0,
                )
            self._refresh_centroid_arrays()
        else:
            features = np.clip(
                self._centres[idx] + offsets * self._std_devs[idx, None], 0.0, 1.0
            )
        return features, labels
