"""Surrogates for the paper's 12 real-world benchmark streams.

The evaluation in Table III uses 12 real-world datasets (Activity-Raw,
Connect4, Covertype, Crimes, DJ30, EEG, Electricity, Gas, Olympic, Poker,
IntelSensors, Tags) that are not redistributable and not available offline.
Per the reproduction's substitution rule we build *seeded synthetic
surrogates* whose metadata matches Table I: number of features, number of
classes, maximum imbalance ratio, and whether the stream is known to drift.
Instance counts are scaled down (configurable) so the full benchmark suite
runs on a laptop.

The surrogate for each dataset is a RandomRBF-based stream (feature/label
structure with localised class regions resembles most tabular sensor/activity
data) executed by the schedule engine with the appropriate drift schedule and
a dynamic imbalance profile reaching the dataset's reported maximum IR.  The
engine places drifts at *emitted* stream positions, so the declared drift
points are exact (the retired wrapper composition re-sampled on top of the
drift schedule and let drifts surface earlier than declared).  What matters
for the reproduction is that the surrogates exercise the identical code path
and difficulty axes (many classes, heavy skew, drift or stationarity);
absolute metric values differ from the paper, relative detector comparisons
should not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streams.base import DataStream
from repro.streams.generators import RandomRBFGenerator
from repro.streams.imbalance import (
    DynamicImbalance,
    ImbalanceProfile,
    StaticImbalance,
)
from repro.streams.scenarios import ScenarioStream
from repro.streams.schedule import Schedule, ScheduledStream, Segment

__all__ = [
    "RealWorldSpec",
    "REAL_WORLD_SPECS",
    "real_world_stream",
    "real_world_names",
]


@dataclass(frozen=True)
class RealWorldSpec:
    """Metadata of one real-world benchmark, copied from Table I."""

    name: str
    instances: int
    features: int
    classes: int
    imbalance_ratio: float
    drift: str  # "yes", "unknown"


#: Table I (top half) of the paper.
REAL_WORLD_SPECS: tuple[RealWorldSpec, ...] = (
    RealWorldSpec("Activity-Raw", 1_048_570, 3, 6, 128.93, "yes"),
    RealWorldSpec("Connect4", 67_557, 42, 3, 45.81, "unknown"),
    RealWorldSpec("Covertype", 581_012, 54, 7, 96.14, "unknown"),
    RealWorldSpec("Crimes", 878_049, 3, 39, 106.72, "unknown"),
    RealWorldSpec("DJ30", 138_166, 8, 30, 204.66, "yes"),
    RealWorldSpec("EEG", 14_980, 14, 2, 29.88, "yes"),
    RealWorldSpec("Electricity", 45_312, 8, 2, 17.54, "yes"),
    RealWorldSpec("Gas", 13_910, 128, 6, 138.03, "yes"),
    RealWorldSpec("Olympic", 271_116, 7, 4, 66.82, "unknown"),
    RealWorldSpec("Poker", 829_201, 10, 10, 144.00, "yes"),
    RealWorldSpec("IntelSensors", 2_219_804, 5, 57, 348.26, "yes"),
    RealWorldSpec("Tags", 164_860, 4, 11, 194.28, "unknown"),
)

_SPEC_INDEX = {spec.name.lower(): spec for spec in REAL_WORLD_SPECS}


def real_world_names() -> list[str]:
    """Names of all 12 real-world benchmarks, in Table I order."""
    return [spec.name for spec in REAL_WORLD_SPECS]


def _surrogate_generator(spec: RealWorldSpec, seed: int, concept: int) -> DataStream:
    n_centroids = max(spec.classes * 3, 30)
    return RandomRBFGenerator(
        n_classes=spec.classes,
        n_features=spec.features,
        n_centroids=n_centroids,
        concept=concept,
        seed=seed,
        name=spec.name.lower(),
    )


def real_world_stream(
    name: str,
    n_instances: int | None = None,
    max_instances: int = 30_000,
    seed: int = 0,
) -> ScenarioStream:
    """Build the surrogate stream for one of the Table I real-world datasets.

    Parameters
    ----------
    name:
        Dataset name (case-insensitive), e.g. ``"Covertype"``.
    n_instances:
        Evaluation length; defaults to ``min(spec.instances, max_instances)``.
    max_instances:
        Cap applied when ``n_instances`` is not given — keeps the full
        24-stream benchmark laptop-sized.
    seed:
        RNG seed, combined with a per-dataset offset for diversity.
    """
    spec = _SPEC_INDEX.get(name.lower())
    if spec is None:
        raise KeyError(
            f"unknown real-world dataset {name!r}; known: {real_world_names()}"
        )
    if n_instances is None:
        n_instances = min(spec.instances, max_instances)
    dataset_seed = seed + abs(hash(spec.name)) % 10_000

    profile: ImbalanceProfile
    if spec.drift == "yes":
        # Three evenly spaced sudden drifts, mirroring a drifting real stream.
        spacing = n_instances // 4
        schedule = Schedule.of(
            Segment(length=spacing, concept=0),
            Segment(length=spacing, concept=1),
            Segment(length=spacing, concept=2),
            Segment(length=max(1, n_instances - 3 * spacing), concept=3),
        )
        profile = DynamicImbalance(
            n_classes=spec.classes,
            min_ratio=max(1.0, spec.imbalance_ratio / 4.0),
            max_ratio=spec.imbalance_ratio,
            period=max(2, n_instances // 2),
        )
    else:
        schedule = Schedule.of(Segment(length=n_instances, concept=0))
        profile = StaticImbalance(spec.classes, spec.imbalance_ratio)

    stream = ScheduledStream(
        lambda concept: _surrogate_generator(spec, dataset_seed, concept),
        schedule,
        imbalance=profile,
        seed=dataset_seed + 2,
        name=spec.name.lower(),
    )
    return ScenarioStream(
        stream=stream,
        drift_points=stream.drift_points,
        drifted_classes=stream.drifted_classes,
        name=spec.name,
        n_instances=n_instances,
        profile=profile,
        metadata={
            "surrogate": True,
            "table_i": spec,
            "seed": seed,
        },
        events=stream.events,
    )
