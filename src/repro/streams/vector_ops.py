"""Vectorized random-variate helpers with a fixed per-instance draw budget.

Every batch-primitive generator in :mod:`repro.streams.generators` draws its
randomness as **one contiguous block of uniform doubles per instance**:
``rng.random((n, k))`` where ``k`` is a constant determined by the generator's
configuration.  NumPy's PCG64 bit generator fills arrays row-major from a
sequential double stream, so ``rng.random((n, k))`` consumes exactly the same
doubles as ``n`` successive ``rng.random((1, k))`` calls — which is what makes
``generate_batch(n)`` bit-identical to ``n`` calls of ``next_instance()``.

The helpers below turn columns of that uniform block into the variates the
generators need (bounded integers, scaled uniforms, Gaussians via Box–Muller,
categorical draws via inverse CDF) without consuming any additional
randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scale_uniform",
    "uniform_integers",
    "n_normal_columns",
    "normals_from_uniform",
    "categorical_from_uniform",
]


def scale_uniform(u: np.ndarray, low: float, high: float) -> np.ndarray:
    """Map uniforms in ``[0, 1)`` to ``[low, high)``."""
    return low + (high - low) * u


def uniform_integers(u: np.ndarray, low: int, high: int | None = None) -> np.ndarray:
    """Map uniforms in ``[0, 1)`` to integers in ``[low, high)``.

    With ``high`` omitted the range is ``[0, low)``, mirroring
    ``rng.integers``.  Uses the floor transform, which is deterministic given
    the uniform column (unlike rejection sampling) and therefore batch/instance
    consistent by construction.
    """
    if high is None:
        low, high = 0, low
    if high <= low:
        raise ValueError(f"empty integer range [{low}, {high})")
    values = low + np.floor(u * (high - low)).astype(np.int64)
    # u < 1 guarantees values < high mathematically; guard against float
    # rounding at the top of very wide ranges anyway.
    return np.minimum(values, high - 1)


def n_normal_columns(n_out: int) -> int:
    """Uniform columns needed to produce ``n_out`` Gaussians via Box–Muller."""
    if n_out < 0:
        raise ValueError("n_out must be >= 0")
    return 2 * ((n_out + 1) // 2)


def normals_from_uniform(u: np.ndarray, n_out: int) -> np.ndarray:
    """Turn ``(..., 2*ceil(n_out/2))`` uniforms into ``(..., n_out)`` Gaussians.

    Box–Muller on pairs of uniforms: entirely element-wise, so the mapping
    from uniform block to Gaussian block is identical whether the block holds
    one row or many.
    """
    expected = n_normal_columns(n_out)
    if u.shape[-1] != expected:
        raise ValueError(
            f"need {expected} uniform columns for {n_out} normals, got {u.shape[-1]}"
        )
    if n_out == 0:
        return u[..., :0]
    half = expected // 2
    u1 = u[..., :half]
    u2 = u[..., half:]
    # 1 - u1 is in (0, 1], so the log is finite.
    radius = np.sqrt(-2.0 * np.log1p(-u1))
    angle = 2.0 * np.pi * u2
    z = np.concatenate([radius * np.cos(angle), radius * np.sin(angle)], axis=-1)
    return z[..., :n_out]


def categorical_from_uniform(u: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """Draw category indices from uniforms via the inverse CDF.

    ``probabilities`` must sum to ~1; floating error at the top of the CDF is
    absorbed by clipping to the last category.
    """
    cdf = np.cumsum(np.asarray(probabilities, dtype=np.float64))
    idx = np.searchsorted(cdf, u, side="right")
    return np.minimum(idx, len(cdf) - 1).astype(np.int64)
