"""Multi-class imbalance control for data streams.

The paper's three scenarios (Section IV) all involve a *dynamic imbalance
ratio* and, in Scenarios 2-3, *changing class roles* (minority classes become
majority and vice versa).  This module provides:

* :class:`ImbalanceProfile` implementations that map a stream position ``t``
  to a vector of class priors — static skew, oscillating skew, and role
  switching;
* :class:`ImbalancedStream`, a wrapper that re-samples any base stream so the
  emitted class frequencies follow the requested priors.  Re-sampling uses a
  per-class buffer so no base instances are discarded unnecessarily.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.streams.base import DataStream, StreamSchema
from repro.streams.sampling import (
    ClassConditionalSampler,
    UniformReplayBuffer,
    inverse_cdf_classes,
)

__all__ = [
    "ImbalanceProfile",
    "StaticImbalance",
    "DynamicImbalance",
    "RoleSwitchingImbalance",
    "ImbalancedStream",
    "geometric_priors",
    "geometric_priors_batch",
]

_MAX_BUFFER_FILL_DRAWS = 20_000


def geometric_priors(n_classes: int, imbalance_ratio: float) -> np.ndarray:
    """Class priors decaying geometrically so that ``max/min == imbalance_ratio``.

    Class 0 is the largest (majority) class and class ``n_classes - 1`` the
    smallest.  ``imbalance_ratio=1`` yields a balanced distribution.
    """
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    if imbalance_ratio < 1.0:
        raise ValueError("imbalance_ratio must be >= 1")
    # np.power (not the scalar `**`) so the result is bit-identical to the
    # vectorized geometric_priors_batch, which uses the same ufunc loop.
    decay = np.power(imbalance_ratio, -1.0 / (n_classes - 1))
    priors = decay ** np.arange(n_classes, dtype=np.float64)
    return priors / priors.sum()


def geometric_priors_batch(n_classes: int, imbalance_ratios: np.ndarray) -> np.ndarray:
    """Vectorized :func:`geometric_priors`: one prior row per requested ratio.

    Element-wise identical to stacking ``geometric_priors(n_classes, r)`` for
    every ``r`` (same power and normalisation operations), so batch evaluation
    of position-dependent profiles stays bit-compatible with the scalar path.
    """
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    ratios = np.asarray(imbalance_ratios, dtype=np.float64)
    if np.any(ratios < 1.0):
        raise ValueError("imbalance_ratio must be >= 1")
    decay = ratios ** (-1.0 / (n_classes - 1))
    priors = decay[..., None] ** np.arange(n_classes, dtype=np.float64)
    return priors / priors.sum(axis=-1, keepdims=True)


class ImbalanceProfile(abc.ABC):
    """Maps a stream position to the target class-prior vector."""

    def __init__(self, n_classes: int) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_classes = n_classes

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @abc.abstractmethod
    def priors(self, position: int) -> np.ndarray:
        """Return the class priors in effect at ``position`` (sums to 1)."""

    def priors_batch(self, positions: np.ndarray) -> np.ndarray:
        """Prior rows for many positions at once: shape ``(len(positions), k)``.

        Must be element-wise identical to stacking :meth:`priors` per
        position — the schedule engine relies on this to keep batch and
        per-instance generation bit-identical.  The default loops; the
        built-in profiles override it with vectorized implementations.
        """
        positions = np.asarray(positions)
        return np.stack([self.priors(int(t)) for t in positions]) if positions.size else np.empty((0, self._n_classes))

    def imbalance_ratio(self, position: int) -> float:
        """Ratio between the largest and the smallest class prior."""
        priors = self.priors(position)
        return float(priors.max() / priors.min())


class StaticImbalance(ImbalanceProfile):
    """A fixed skew: the imbalance ratio never changes."""

    def __init__(self, n_classes: int, imbalance_ratio: float) -> None:
        super().__init__(n_classes)
        self._priors = geometric_priors(n_classes, imbalance_ratio)

    def priors(self, position: int) -> np.ndarray:
        return self._priors.copy()

    def priors_batch(self, positions: np.ndarray) -> np.ndarray:
        return np.broadcast_to(
            self._priors, (np.asarray(positions).shape[0], self._n_classes)
        ).copy()


class DynamicImbalance(ImbalanceProfile):
    """An imbalance ratio that oscillates between two extremes over time.

    The instantaneous ratio follows a raised cosine between ``min_ratio`` and
    ``max_ratio`` with the given ``period``, so the skew both increases and
    decreases during stream processing — the behaviour the paper requires of
    its artificial benchmarks.
    """

    def __init__(
        self,
        n_classes: int,
        min_ratio: float,
        max_ratio: float,
        period: int,
        phase: float = 0.0,
    ) -> None:
        super().__init__(n_classes)
        if min_ratio < 1.0 or max_ratio < min_ratio:
            raise ValueError("require 1 <= min_ratio <= max_ratio")
        if period <= 0:
            raise ValueError("period must be positive")
        self._min_ratio = min_ratio
        self._max_ratio = max_ratio
        self._period = period
        self._phase = phase

    def current_ratio(self, position: int) -> float:
        angle = 2.0 * np.pi * position / self._period + self._phase
        blend = 0.5 * (1.0 - np.cos(angle))
        return self._min_ratio + blend * (self._max_ratio - self._min_ratio)

    def priors(self, position: int) -> np.ndarray:
        return geometric_priors(self.n_classes, self.current_ratio(position))

    def priors_batch(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions)
        if positions.size == 0:
            return np.empty((0, self.n_classes))
        # Same element-wise operations (and order) as the scalar path, so the
        # rows are bit-identical to per-position `priors` calls.
        angle = 2.0 * np.pi * positions / self._period + self._phase
        blend = 0.5 * (1.0 - np.cos(angle))
        ratios = self._min_ratio + blend * (self._max_ratio - self._min_ratio)
        return geometric_priors_batch(self.n_classes, ratios)


class RoleSwitchingImbalance(ImbalanceProfile):
    """Dynamic skew whose class roles rotate every ``switch_period`` instances.

    On top of an oscillating imbalance ratio, the assignment of priors to
    classes is cyclically rotated, so the class that used to be the largest
    becomes progressively smaller and minority classes take over the majority
    role (Scenario 2/3 in the paper's taxonomy).
    """

    def __init__(
        self,
        n_classes: int,
        min_ratio: float,
        max_ratio: float,
        period: int,
        switch_period: int,
    ) -> None:
        super().__init__(n_classes)
        if switch_period <= 0:
            raise ValueError("switch_period must be positive")
        self._dynamic = DynamicImbalance(n_classes, min_ratio, max_ratio, period)
        self._switch_period = switch_period

    def role_rotation(self, position: int) -> int:
        """Number of positions the prior vector is rotated at ``position``."""
        return (position // self._switch_period) % self.n_classes

    def priors(self, position: int) -> np.ndarray:
        base = self._dynamic.priors(position)
        return np.roll(base, self.role_rotation(position))

    def priors_batch(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions)
        base = self._dynamic.priors_batch(positions)
        if base.shape[0] == 0:
            return base
        rotations = (positions // self._switch_period) % self.n_classes
        # Row-wise np.roll via a gather: rolled[i, j] = base[i, (j - r_i) % k].
        columns = np.arange(self.n_classes)
        gather = (columns[None, :] - rotations[:, None]) % self.n_classes
        return np.take_along_axis(base, gather, axis=1)


class ImbalancedStream(DataStream):
    """Re-sample a base stream to follow an :class:`ImbalanceProfile`.

    At every step the target class is drawn from the profile's current priors
    and an instance of that class is taken either from a per-class buffer of
    recently seen base instances or by drawing new base instances (buffering
    the ones of other classes).  Buffers are intentionally small and consumed
    newest-first so that emitted instances always reflect the *current* state
    of the base stream — crucial when the base stream drifts, otherwise rare
    classes would keep replaying stale pre-drift instances long after the
    drift.  If the base stream fails to produce the requested class within a
    bounded number of draws, the most available class is emitted instead —
    this keeps the wrapper robust to degenerate generators while preserving
    the requested skew in all practical cases.
    """

    def __init__(
        self,
        base: DataStream,
        profile: ImbalanceProfile,
        seed: int | None = None,
        max_buffer_per_class: int = 32,
    ) -> None:
        if profile.n_classes != base.n_classes:
            raise ValueError("profile and base stream disagree on n_classes")
        schema = StreamSchema(
            n_features=base.n_features,
            n_classes=base.n_classes,
            name=f"{base.name}-imbalanced",
        )
        super().__init__(schema, seed)
        self._base = base
        self._profile = profile
        # block_size=1 keeps the base stream's draw-on-demand RNG consumption
        # (and therefore every seeded realization) identical to a hand-rolled
        # per-instance rejection loop.
        self._sampler = ClassConditionalSampler(
            base,
            base.n_classes,
            max_buffer=max_buffer_per_class,
            max_draws=_MAX_BUFFER_FILL_DRAWS,
            block_size=1,
        )
        # Class-choice uniforms drawn for positions not yet emitted (a finite
        # base exhausted mid-batch).  Replayed before fresh RNG draws so batch
        # and per-instance reads consume the wrapper RNG identically no matter
        # where the truncation fell.
        self._uniforms = UniformReplayBuffer()

    @property
    def profile(self) -> ImbalanceProfile:
        return self._profile

    @property
    def drift_points(self) -> list[int]:
        """Propagate ground-truth drift positions from the wrapped stream."""
        return list(getattr(self._base, "drift_points", []))

    def set_concept(self, concept: int) -> None:
        """Forward a concept switch to the wrapped generator.

        Buffered instances belong to the previous concept and are discarded so
        the switch takes effect immediately in the emitted stream.  This lets
        drift wrappers (e.g. :class:`~repro.streams.drift.ConceptScheduleStream`)
        be applied *on top of* an imbalanced stream, so that drift positions
        are expressed in emitted-instance coordinates.
        """
        if not hasattr(self._base, "set_concept"):
            raise TypeError("wrapped stream does not support set_concept")
        self._base.set_concept(concept)
        self._sampler.clear_buffers()

    def restart(self) -> None:
        super().restart()
        self._sampler.restart()
        self._uniforms.clear()

    def _snapshot_extra(self) -> dict:
        # The sampler snapshot covers the wrapped base stream (they share the
        # object), so the base needs no separate entry.
        return {"sampler": self._sampler, "uniforms": self._uniforms}

    def _restore_extra(self, extra: dict) -> None:
        self._sampler.restore(extra["sampler"])
        self._uniforms = extra["uniforms"]

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        # One uniform per emitted instance, drawn as a block; the target class
        # comes from the inverse CDF of the position-dependent priors, so the
        # wrapper's RNG consumption is identical for any batch split.
        u = self._uniforms.take(n, self._rng)
        priors = self._profile.priors_batch(self._position + np.arange(n))
        wanted = inverse_cdf_classes(priors, u)
        features = np.empty((n, self.n_features))
        labels = np.empty(n, dtype=np.int64)
        for i in range(n):
            try:
                x, y = self._sampler.sample(int(wanted[i]))
            except StopIteration:
                # Base exhausted: emit the rows already produced and keep the
                # undecided uniforms for replay so the exhausted position's
                # class choice stays in force (terminal stream, exact parity
                # with the per-instance path).
                self._uniforms.stash(u[i:])
                return features[:i], labels[:i]
            features[i] = x
            labels[i] = y
        return features, labels
