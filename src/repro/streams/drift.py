"""Concept-drift composition and injection.

This module turns stationary generators into drifting streams.  It covers the
drift taxonomy from Section II of the paper:

* **speed** — sudden, gradual, and incremental drifts between two concepts
  (:class:`ConceptDriftStream`), plus multi-drift schedules
  (:class:`ConceptScheduleStream`) and recurring concepts
  (:class:`RecurringDriftStream`);
* **locality** — :class:`LocalDriftStream` restricts a real drift to a chosen
  subset of classes, which is the mechanism behind the paper's Experiment 2
  (Fig. 8): only instances of the drifted classes change their conditional
  distribution, all remaining classes keep the old concept.

All wrappers record the ground-truth drift positions in
:attr:`DriftingStream.drift_points` so the evaluation harness can compute
detection delays and false-alarm rates.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.streams.base import DataStream, Instance, StreamSchema

__all__ = [
    "DriftingStream",
    "ConceptDriftStream",
    "ConceptScheduleStream",
    "RecurringDriftStream",
    "LocalDriftStream",
    "sample_instance_of_class",
    "try_sample_instance_of_class",
]

_MAX_REJECTION_TRIES = 5_000


def try_sample_instance_of_class(
    stream: DataStream, label: int, max_tries: int = _MAX_REJECTION_TRIES
) -> Instance | None:
    """Rejection-sample an instance of class ``label``; ``None`` on failure.

    Failure means the class was not observed within ``max_tries`` draws (the
    generator may never produce it under the current concept) or the stream
    ran out.  Callers that need the stream to keep flowing — e.g. a local
    drift under extreme imbalance — pair this with a deterministic fallback
    instance instead of aborting the run; the draw budget consumed from
    ``stream`` is identical whether the sample succeeds or not at a given
    try, so batch and per-instance paths stay aligned.
    """
    for _ in range(max_tries):
        try:
            instance = stream.next_instance()
        except StopIteration:
            return None
        if instance.y == label:
            return instance
    return None


def sample_instance_of_class(
    stream: DataStream, label: int, max_tries: int = _MAX_REJECTION_TRIES
) -> Instance:
    """Rejection-sample an instance of class ``label`` from ``stream``.

    Raises
    ------
    RuntimeError
        If the class was not observed within ``max_tries`` draws (e.g. the
        generator never produces it under the current concept).  Use
        :func:`try_sample_instance_of_class` when a fallback is available.
    """
    instance = try_sample_instance_of_class(stream, label, max_tries)
    if instance is None:
        raise RuntimeError(
            f"could not sample an instance of class {label} from stream "
            f"'{stream.name}' within {max_tries} draws"
        )
    return instance


class DriftingStream(DataStream):
    """Base class for drift wrappers: tracks ground-truth drift positions."""

    def __init__(self, schema: StreamSchema, seed: int | None = None) -> None:
        super().__init__(schema, seed)
        self._drift_points: list[int] = []

    @property
    def drift_points(self) -> list[int]:
        """Instance indices at which a (real) drift starts."""
        return list(self._drift_points)


class ConceptDriftStream(DriftingStream):
    """Switch from one stream to another with sudden/gradual/incremental drift.

    Mirrors MOA's ``ConceptDriftStream``: before ``position`` all instances
    come from ``base``; after ``position + width`` all come from ``drift``;
    inside the transition window the probability of drawing from the new
    concept grows from 0 to 1.

    Parameters
    ----------
    base, drift:
        Old- and new-concept streams; they must share the same schema shape.
    position:
        Index of the first instance of the transition.
    width:
        Length of the transition window.  ``width=0`` (or ``kind='sudden'``)
        produces an abrupt switch.
    kind:
        ``'sudden'``, ``'gradual'`` (probabilistic oscillation, Eq. 5) or
        ``'incremental'`` (sigmoidal mixture progression, Eq. 3).
    """

    def __init__(
        self,
        base: DataStream,
        drift: DataStream,
        position: int,
        width: int = 1,
        kind: str = "sudden",
        seed: int | None = None,
    ) -> None:
        if base.n_features != drift.n_features or base.n_classes != drift.n_classes:
            raise ValueError("base and drift streams must share the same schema shape")
        if kind not in ("sudden", "gradual", "incremental"):
            raise ValueError(f"unknown drift kind: {kind!r}")
        if position < 0 or width < 0:
            raise ValueError("position and width must be non-negative")
        schema = StreamSchema(
            n_features=base.n_features,
            n_classes=base.n_classes,
            name=f"{base.name}->drift@{position}",
        )
        super().__init__(schema, seed)
        self._base = base
        self._drift = drift
        self._drift_position = position
        self._width = 0 if kind == "sudden" else max(1, width)
        self._kind = kind
        self._drift_points = [position]
        # Rows drawn from one source but not yet emitted (a finite *other*
        # source exhausted mid-batch); served before new draws so no data is
        # silently dropped.
        self._carry: dict[bool, tuple[np.ndarray, np.ndarray] | None] = {
            False: None,
            True: None,
        }
        # Concept-choice decisions drawn for positions not yet emitted (batch
        # truncated by an exhausted source).  Replayed before fresh RNG draws
        # so batch and per-instance paths stay bit-identical even on finite
        # sources: the position that selected the exhausted source keeps
        # selecting it, terminating the stream exactly where the per-instance
        # path raises StopIteration.
        self._pending_decisions: np.ndarray | None = None

    def restart(self) -> None:
        super().restart()
        self._base.restart()
        self._drift.restart()
        self._carry = {False: None, True: None}
        self._pending_decisions = None

    def _snapshot_extra(self) -> dict:
        return {
            "base": self._base,
            "drift": self._drift,
            "carry": self._carry,
            "pending_decisions": self._pending_decisions,
        }

    def _restore_extra(self, extra: dict) -> None:
        self._base.restore(extra["base"])
        self._drift.restore(extra["drift"])
        self._carry = extra["carry"]
        self._pending_decisions = extra["pending_decisions"]

    def _new_concept_probability(self, t: int) -> float:
        if t < self._drift_position:
            return 0.0
        if t >= self._drift_position + self._width:
            return 1.0
        progress = (t - self._drift_position) / self._width
        if self._kind == "incremental":
            # Smooth sigmoidal progression (MOA uses 1/(1+e^{-4(t-p)/w})).
            return float(1.0 / (1.0 + np.exp(-4.0 * (2.0 * progress - 1.0))))
        return float(progress)

    def _new_concept_probabilities(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_new_concept_probability` over many positions."""
        after = positions >= self._drift_position + self._width
        probabilities = after.astype(np.float64)
        if self._width > 0:
            inside = (positions >= self._drift_position) & ~after
            progress = (positions[inside] - self._drift_position) / self._width
            if self._kind == "incremental":
                probabilities[inside] = 1.0 / (
                    1.0 + np.exp(-4.0 * (2.0 * progress - 1.0))
                )
            else:
                probabilities[inside] = progress
        return probabilities

    def _take_from_source(self, from_new: bool, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Fetch ``count`` rows, serving carried-over rows before new draws."""
        source = self._drift if from_new else self._base
        carry = self._carry[from_new]
        if carry is None:
            return source.generate_batch(count) if count else source._empty_batch()
        carry_x, carry_y = carry
        if carry_y.shape[0] >= count:
            self._carry[from_new] = (
                (carry_x[count:], carry_y[count:])
                if carry_y.shape[0] > count
                else None
            )
            return carry_x[:count], carry_y[:count]
        self._carry[from_new] = None
        fresh_x, fresh_y = source.generate_batch(count - carry_y.shape[0])
        return np.vstack([carry_x, fresh_x]), np.concatenate([carry_y, fresh_y])

    def _stash_leftover(self, from_new: bool, features: np.ndarray, labels: np.ndarray, used: int) -> None:
        """Keep drawn-but-unemitted rows for the next call (never drop data)."""
        if labels.shape[0] > used:
            self._carry[from_new] = (features[used:], labels[used:])

    def _next_decisions(self, n: int) -> np.ndarray:
        """Concept choices for the next ``n`` positions: replay pending ones
        first, then draw fresh uniforms — the same consumption order as ``n``
        per-instance draws."""
        pending = self._pending_decisions
        if pending is None:
            head = np.empty(0, dtype=bool)
        else:
            take = min(n, pending.shape[0])
            head = pending[:take]
            self._pending_decisions = pending[take:] if take < pending.shape[0] else None
        fresh_count = n - head.shape[0]
        if fresh_count == 0:
            return head
        positions = self._position + head.shape[0] + np.arange(fresh_count)
        fresh = self._rng.random(fresh_count) < self._new_concept_probabilities(
            positions
        )
        return np.concatenate([head, fresh])

    def _generate(self) -> Instance:
        use_new = bool(self._next_decisions(1)[0])
        features, labels = self._take_from_source(use_new, 1)
        if labels.shape[0] == 0:
            # The selected source is exhausted; keep the decision pending so
            # the exhausted choice stays terminal (as for the batch path).
            self._pending_decisions = np.concatenate(
                [np.array([use_new]), self._pending_decisions]
            ) if self._pending_decisions is not None else np.array([use_new])
            raise StopIteration(f"stream '{self.name}' exhausted")
        return Instance(x=features[0], y=int(labels[0]))

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        use_new = self._next_decisions(n)
        n_new = int(use_new.sum())
        n_old = n - n_new
        old_x, old_y = self._take_from_source(False, n_old)
        new_x, new_y = self._take_from_source(True, n_new)
        # A finite source may come up short; emit the longest prefix of rows
        # whose source instance actually arrived and carry the rest over so
        # nothing already drawn is lost.
        ordinal_new = np.cumsum(use_new) - use_new
        ordinal_old = np.cumsum(~use_new) - ~use_new
        valid = np.where(
            use_new, ordinal_new < new_y.shape[0], ordinal_old < old_y.shape[0]
        )
        keep = n if valid.all() else int(np.argmin(valid))
        if keep < n:
            # Undecided tail: replayed by the next call so the exhausted
            # selection at position `keep` stays in force (terminal stream).
            self._pending_decisions = use_new[keep:]
        use_new = use_new[:keep]
        kept_new = int(use_new.sum())
        kept_old = keep - kept_new
        self._stash_leftover(True, new_x, new_y, kept_new)
        self._stash_leftover(False, old_x, old_y, kept_old)
        features = np.empty((keep, self.n_features))
        labels = np.empty(keep, dtype=np.int64)
        features[use_new] = new_x[:kept_new]
        labels[use_new] = new_y[:kept_new]
        features[~use_new] = old_x[:kept_old]
        labels[~use_new] = old_y[:kept_old]
        return features, labels


class ConceptScheduleStream(DriftingStream):
    """Apply a schedule of concept switches to a single re-configurable generator.

    The wrapped generator must expose ``set_concept(int)`` (all generators in
    :mod:`repro.streams.generators` do).  At each scheduled position the
    concept index is switched, producing a sudden real drift over all classes.
    """

    def __init__(
        self,
        generator: DataStream,
        schedule: Sequence[tuple[int, int]],
        seed: int | None = None,
    ) -> None:
        if not hasattr(generator, "set_concept"):
            raise TypeError("generator must expose set_concept(int)")
        schema = StreamSchema(
            n_features=generator.n_features,
            n_classes=generator.n_classes,
            name=f"{generator.name}-scheduled",
        )
        super().__init__(schema, seed)
        self._generator = generator
        self._schedule = sorted((int(p), int(c)) for p, c in schedule)
        if any(p < 0 for p, _ in self._schedule):
            raise ValueError("schedule positions must be non-negative")
        self._drift_points = [p for p, _ in self._schedule if p > 0]
        self._next_switch = 0

    def restart(self) -> None:
        super().restart()
        self._generator.restart()
        self._next_switch = 0

    def _snapshot_extra(self) -> dict:
        return {"generator": self._generator, "next_switch": self._next_switch}

    def _restore_extra(self, extra: dict) -> None:
        self._generator.restore(extra["generator"])
        self._next_switch = int(extra["next_switch"])

    def _apply_due_switches(self, position: int) -> None:
        while (
            self._next_switch < len(self._schedule)
            and self._schedule[self._next_switch][0] <= position
        ):
            _, concept = self._schedule[self._next_switch]
            self._generator.set_concept(concept)
            self._next_switch += 1

    def _generate(self) -> Instance:
        self._apply_due_switches(self._position)
        return self._generator.next_instance()

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        produced = 0
        while produced < n:
            position = self._position + produced
            self._apply_due_switches(position)
            if self._next_switch < len(self._schedule):
                segment = min(n - produced, self._schedule[self._next_switch][0] - position)
            else:
                segment = n - produced
            segment_x, segment_y = self._generator.generate_batch(segment)
            if segment_y.shape[0] == 0:
                break
            features.append(segment_x)
            labels.append(segment_y)
            produced += int(segment_y.shape[0])
            if segment_y.shape[0] < segment:
                break
        if not features:
            return self._empty_batch()
        return np.vstack(features), np.concatenate(labels)


class RecurringDriftStream(DriftingStream):
    """Cycle through a fixed list of concepts every ``period`` instances."""

    def __init__(
        self,
        generator: DataStream,
        concepts: Sequence[int],
        period: int,
        seed: int | None = None,
    ) -> None:
        if not hasattr(generator, "set_concept"):
            raise TypeError("generator must expose set_concept(int)")
        if period <= 0:
            raise ValueError("period must be positive")
        if not concepts:
            raise ValueError("concepts must be non-empty")
        schema = StreamSchema(
            n_features=generator.n_features,
            n_classes=generator.n_classes,
            name=f"{generator.name}-recurring",
        )
        super().__init__(schema, seed)
        self._generator = generator
        self._concepts = list(concepts)
        self._period = period
        self._current_index = -1

    @property
    def drift_points(self) -> list[int]:
        """Cycle boundaries whose first new-concept instance was emitted.

        A boundary at ``b`` means the instance at index ``b`` is the first of
        the next concept; it belongs to the ground truth only once that
        instance has actually been emitted (``b < position``, strictly).  The
        set is derived from :attr:`position` alone, so it is bit-identical
        between per-instance iteration and any chunking of ``generate_batch``
        — including chunks that cross a cycle boundary mid-batch.
        """
        return list(range(self._period, self._position, self._period))

    def restart(self) -> None:
        super().restart()
        self._generator.restart()
        self._current_index = -1

    def _snapshot_extra(self) -> dict:
        return {
            "generator": self._generator,
            "current_index": self._current_index,
        }

    def _restore_extra(self, extra: dict) -> None:
        self._generator.restore(extra["generator"])
        self._current_index = int(extra["current_index"])

    def _generate(self) -> Instance:
        index = (self._position // self._period) % len(self._concepts)
        if index != self._current_index:
            self._generator.set_concept(self._concepts[index])
            self._current_index = index
        return self._generator.next_instance()

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        produced = 0
        while produced < n:
            position = self._position + produced
            index = (position // self._period) % len(self._concepts)
            if index != self._current_index:
                self._generator.set_concept(self._concepts[index])
                self._current_index = index
            boundary = (position // self._period + 1) * self._period
            segment = min(n - produced, boundary - position)
            segment_x, segment_y = self._generator.generate_batch(segment)
            if segment_y.shape[0] == 0:
                break
            features.append(segment_x)
            labels.append(segment_y)
            produced += int(segment_y.shape[0])
            if segment_y.shape[0] < segment:
                break
        if not features:
            return self._empty_batch()
        return np.vstack(features), np.concatenate(labels)


class LocalDriftStream(DriftingStream):
    """Inject a real concept drift into only a subset of classes.

    Two copies of the generator are kept: one on the old concept and one on
    the new concept.  The class label of each emitted instance is decided by
    the old-concept prior (so class frequencies are unaffected), and the
    feature vector is then drawn conditionally:

    * classes in ``drifted_classes`` switch to the new concept after the drift
      point (progressively inside the transition window);
    * all other classes keep drawing from the old concept.

    This matches the paper's Scenario 3 / Experiment 2 construction where only
    ``k`` of ``M`` classes undergo a real drift.
    """

    def __init__(
        self,
        generator_factory: Callable[[int], DataStream],
        old_concept: int,
        new_concept: int,
        drifted_classes: Sequence[int],
        position: int,
        width: int = 1,
        seed: int | None = None,
    ) -> None:
        old_stream = generator_factory(old_concept)
        new_stream = generator_factory(new_concept)
        if (
            old_stream.n_features != new_stream.n_features
            or old_stream.n_classes != new_stream.n_classes
        ):
            raise ValueError("factory must produce streams with identical schema shape")
        drifted = sorted(set(int(c) for c in drifted_classes))
        if not drifted:
            raise ValueError("drifted_classes must not be empty")
        if any(c < 0 or c >= old_stream.n_classes for c in drifted):
            raise ValueError("drifted_classes out of range")
        if position < 0 or width < 0:
            raise ValueError("position and width must be non-negative")
        schema = StreamSchema(
            n_features=old_stream.n_features,
            n_classes=old_stream.n_classes,
            name=f"{old_stream.name}-local-drift",
        )
        super().__init__(schema, seed)
        self._old = old_stream
        self._new = new_stream
        self._drifted = drifted
        self._drift_position = position
        self._width = max(1, width)
        self._drift_points = [position]

    @property
    def drifted_classes(self) -> list[int]:
        return list(self._drifted)

    def restart(self) -> None:
        super().restart()
        self._old.restart()
        self._new.restart()

    def _snapshot_extra(self) -> dict:
        return {"old": self._old, "new": self._new}

    def _restore_extra(self, extra: dict) -> None:
        self._old.restore(extra["old"])
        self._new.restore(extra["new"])

    def _new_concept_probability(self, t: int) -> float:
        if t < self._drift_position:
            return 0.0
        if t >= self._drift_position + self._width:
            return 1.0
        return (t - self._drift_position) / self._width

    def _generate(self) -> Instance:
        anchor = self._old.next_instance()
        label = anchor.y
        if label not in self._drifted:
            return anchor
        probability = self._new_concept_probability(self._position)
        if probability <= 0.0 or self._rng.random() >= probability:
            return anchor
        replacement = try_sample_instance_of_class(self._new, label)
        # The new concept may not produce this class at all (extreme cases,
        # e.g. the smallest class at IR~100); deterministically reuse the
        # old-concept instance rather than abort the run — the identical
        # fallback the batch path takes.
        return anchor if replacement is None else replacement

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        features, labels = self._old.generate_batch(n)
        positions = self._position + np.arange(labels.shape[0])
        # Only rows of drifted classes consult the wrapper RNG / new concept,
        # in row order — the same consumption as the per-instance path.
        for i in np.flatnonzero(np.isin(labels, self._drifted)):
            probability = self._new_concept_probability(int(positions[i]))
            if probability <= 0.0 or self._rng.random() >= probability:
                continue
            replacement = try_sample_instance_of_class(self._new, int(labels[i]))
            if replacement is None:
                # Same deterministic fallback as the scalar path: keep the
                # old-concept row.
                continue
            features[i] = replacement.x
        return features, labels
