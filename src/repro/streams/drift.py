"""Concept-drift composition and injection.

This module turns stationary generators into drifting streams.  It covers the
drift taxonomy from Section II of the paper:

* **speed** — sudden, gradual, and incremental drifts between two concepts
  (:class:`ConceptDriftStream`), plus multi-drift schedules
  (:class:`ConceptScheduleStream`) and recurring concepts
  (:class:`RecurringDriftStream`);
* **locality** — :class:`LocalDriftStream` restricts a real drift to a chosen
  subset of classes, which is the mechanism behind the paper's Experiment 2
  (Fig. 8): only instances of the drifted classes change their conditional
  distribution, all remaining classes keep the old concept.

All wrappers record the ground-truth drift positions in
:attr:`DriftingStream.drift_points` so the evaluation harness can compute
detection delays and false-alarm rates.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.streams.base import DataStream, Instance, StreamSchema

__all__ = [
    "DriftingStream",
    "ConceptDriftStream",
    "ConceptScheduleStream",
    "RecurringDriftStream",
    "LocalDriftStream",
    "sample_instance_of_class",
]

_MAX_REJECTION_TRIES = 5_000


def sample_instance_of_class(
    stream: DataStream, label: int, max_tries: int = _MAX_REJECTION_TRIES
) -> Instance:
    """Rejection-sample an instance of class ``label`` from ``stream``.

    Raises
    ------
    RuntimeError
        If the class was not observed within ``max_tries`` draws (e.g. the
        generator never produces it under the current concept).
    """
    for _ in range(max_tries):
        instance = stream.next_instance()
        if instance.y == label:
            return instance
    raise RuntimeError(
        f"could not sample an instance of class {label} from stream "
        f"'{stream.name}' within {max_tries} draws"
    )


class DriftingStream(DataStream):
    """Base class for drift wrappers: tracks ground-truth drift positions."""

    def __init__(self, schema: StreamSchema, seed: int | None = None) -> None:
        super().__init__(schema, seed)
        self._drift_points: list[int] = []

    @property
    def drift_points(self) -> list[int]:
        """Instance indices at which a (real) drift starts."""
        return list(self._drift_points)


class ConceptDriftStream(DriftingStream):
    """Switch from one stream to another with sudden/gradual/incremental drift.

    Mirrors MOA's ``ConceptDriftStream``: before ``position`` all instances
    come from ``base``; after ``position + width`` all come from ``drift``;
    inside the transition window the probability of drawing from the new
    concept grows from 0 to 1.

    Parameters
    ----------
    base, drift:
        Old- and new-concept streams; they must share the same schema shape.
    position:
        Index of the first instance of the transition.
    width:
        Length of the transition window.  ``width=0`` (or ``kind='sudden'``)
        produces an abrupt switch.
    kind:
        ``'sudden'``, ``'gradual'`` (probabilistic oscillation, Eq. 5) or
        ``'incremental'`` (sigmoidal mixture progression, Eq. 3).
    """

    def __init__(
        self,
        base: DataStream,
        drift: DataStream,
        position: int,
        width: int = 1,
        kind: str = "sudden",
        seed: int | None = None,
    ) -> None:
        if base.n_features != drift.n_features or base.n_classes != drift.n_classes:
            raise ValueError("base and drift streams must share the same schema shape")
        if kind not in ("sudden", "gradual", "incremental"):
            raise ValueError(f"unknown drift kind: {kind!r}")
        if position < 0 or width < 0:
            raise ValueError("position and width must be non-negative")
        schema = StreamSchema(
            n_features=base.n_features,
            n_classes=base.n_classes,
            name=f"{base.name}->drift@{position}",
        )
        super().__init__(schema, seed)
        self._base = base
        self._drift = drift
        self._drift_position = position
        self._width = 0 if kind == "sudden" else max(1, width)
        self._kind = kind
        self._drift_points = [position]

    def restart(self) -> None:
        super().restart()
        self._base.restart()
        self._drift.restart()

    def _new_concept_probability(self, t: int) -> float:
        if t < self._drift_position:
            return 0.0
        if t >= self._drift_position + self._width:
            return 1.0
        progress = (t - self._drift_position) / self._width
        if self._kind == "incremental":
            # Smooth sigmoidal progression (MOA uses 1/(1+e^{-4(t-p)/w})).
            return float(1.0 / (1.0 + np.exp(-4.0 * (2.0 * progress - 1.0))))
        return float(progress)

    def _generate(self) -> Instance:
        probability = self._new_concept_probability(self._position)
        use_new = self._rng.random() < probability
        source = self._drift if use_new else self._base
        return source.next_instance()


class ConceptScheduleStream(DriftingStream):
    """Apply a schedule of concept switches to a single re-configurable generator.

    The wrapped generator must expose ``set_concept(int)`` (all generators in
    :mod:`repro.streams.generators` do).  At each scheduled position the
    concept index is switched, producing a sudden real drift over all classes.
    """

    def __init__(
        self,
        generator: DataStream,
        schedule: Sequence[tuple[int, int]],
        seed: int | None = None,
    ) -> None:
        if not hasattr(generator, "set_concept"):
            raise TypeError("generator must expose set_concept(int)")
        schema = StreamSchema(
            n_features=generator.n_features,
            n_classes=generator.n_classes,
            name=f"{generator.name}-scheduled",
        )
        super().__init__(schema, seed)
        self._generator = generator
        self._schedule = sorted((int(p), int(c)) for p, c in schedule)
        if any(p < 0 for p, _ in self._schedule):
            raise ValueError("schedule positions must be non-negative")
        self._drift_points = [p for p, _ in self._schedule if p > 0]
        self._next_switch = 0

    def restart(self) -> None:
        super().restart()
        self._generator.restart()
        self._next_switch = 0

    def _generate(self) -> Instance:
        while (
            self._next_switch < len(self._schedule)
            and self._schedule[self._next_switch][0] <= self._position
        ):
            _, concept = self._schedule[self._next_switch]
            self._generator.set_concept(concept)
            self._next_switch += 1
        return self._generator.next_instance()


class RecurringDriftStream(DriftingStream):
    """Cycle through a fixed list of concepts every ``period`` instances."""

    def __init__(
        self,
        generator: DataStream,
        concepts: Sequence[int],
        period: int,
        seed: int | None = None,
    ) -> None:
        if not hasattr(generator, "set_concept"):
            raise TypeError("generator must expose set_concept(int)")
        if period <= 0:
            raise ValueError("period must be positive")
        if not concepts:
            raise ValueError("concepts must be non-empty")
        schema = StreamSchema(
            n_features=generator.n_features,
            n_classes=generator.n_classes,
            name=f"{generator.name}-recurring",
        )
        super().__init__(schema, seed)
        self._generator = generator
        self._concepts = list(concepts)
        self._period = period
        self._current_index = -1

    @property
    def drift_points(self) -> list[int]:
        emitted = self._position
        return [p for p in range(self._period, emitted + 1, self._period)]

    def restart(self) -> None:
        super().restart()
        self._generator.restart()
        self._current_index = -1

    def _generate(self) -> Instance:
        index = (self._position // self._period) % len(self._concepts)
        if index != self._current_index:
            self._generator.set_concept(self._concepts[index])
            self._current_index = index
        return self._generator.next_instance()


class LocalDriftStream(DriftingStream):
    """Inject a real concept drift into only a subset of classes.

    Two copies of the generator are kept: one on the old concept and one on
    the new concept.  The class label of each emitted instance is decided by
    the old-concept prior (so class frequencies are unaffected), and the
    feature vector is then drawn conditionally:

    * classes in ``drifted_classes`` switch to the new concept after the drift
      point (progressively inside the transition window);
    * all other classes keep drawing from the old concept.

    This matches the paper's Scenario 3 / Experiment 2 construction where only
    ``k`` of ``M`` classes undergo a real drift.
    """

    def __init__(
        self,
        generator_factory: Callable[[int], DataStream],
        old_concept: int,
        new_concept: int,
        drifted_classes: Sequence[int],
        position: int,
        width: int = 1,
        seed: int | None = None,
    ) -> None:
        old_stream = generator_factory(old_concept)
        new_stream = generator_factory(new_concept)
        if (
            old_stream.n_features != new_stream.n_features
            or old_stream.n_classes != new_stream.n_classes
        ):
            raise ValueError("factory must produce streams with identical schema shape")
        drifted = sorted(set(int(c) for c in drifted_classes))
        if not drifted:
            raise ValueError("drifted_classes must not be empty")
        if any(c < 0 or c >= old_stream.n_classes for c in drifted):
            raise ValueError("drifted_classes out of range")
        if position < 0 or width < 0:
            raise ValueError("position and width must be non-negative")
        schema = StreamSchema(
            n_features=old_stream.n_features,
            n_classes=old_stream.n_classes,
            name=f"{old_stream.name}-local-drift",
        )
        super().__init__(schema, seed)
        self._old = old_stream
        self._new = new_stream
        self._drifted = drifted
        self._drift_position = position
        self._width = max(1, width)
        self._drift_points = [position]

    @property
    def drifted_classes(self) -> list[int]:
        return list(self._drifted)

    def restart(self) -> None:
        super().restart()
        self._old.restart()
        self._new.restart()

    def _new_concept_probability(self, t: int) -> float:
        if t < self._drift_position:
            return 0.0
        if t >= self._drift_position + self._width:
            return 1.0
        return (t - self._drift_position) / self._width

    def _generate(self) -> Instance:
        anchor = self._old.next_instance()
        label = anchor.y
        if label not in self._drifted:
            return anchor
        probability = self._new_concept_probability(self._position)
        if probability <= 0.0 or self._rng.random() >= probability:
            return anchor
        try:
            return sample_instance_of_class(self._new, label)
        except RuntimeError:
            # The new concept may not produce this class at all (extreme
            # cases); fall back to the old-concept instance rather than hang.
            return anchor
