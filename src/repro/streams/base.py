"""Core data-stream abstractions.

The paper evaluates drift detectors on MOA data streams.  This module provides
the equivalent substrate: an :class:`Instance` record, a :class:`StreamSchema`
describing the feature space, and the :class:`DataStream` base class that every
generator, drift wrapper, and imbalance wrapper in :mod:`repro.streams` builds
on.  Streams are plain Python iterators over :class:`Instance` objects and are
fully reproducible through an explicit seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Instance",
    "StreamSchema",
    "DataStream",
    "ListStream",
    "take",
    "stream_to_arrays",
]


@dataclass(frozen=True)
class Instance:
    """A single labelled observation drawn from a data stream.

    Attributes
    ----------
    x:
        Feature vector as a 1-D ``float64`` NumPy array.
    y:
        Integer class label in ``[0, n_classes)``.
    weight:
        Optional instance weight (used by cost-sensitive learners).
    """

    x: np.ndarray
    y: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=np.float64))
        object.__setattr__(self, "y", int(self.y))

    @property
    def n_features(self) -> int:
        """Number of features in the instance."""
        return int(self.x.shape[0])


@dataclass(frozen=True)
class StreamSchema:
    """Static description of a stream's feature and label space."""

    n_features: int
    n_classes: int
    feature_names: tuple[str, ...] = field(default_factory=tuple)
    class_names: tuple[str, ...] = field(default_factory=tuple)
    name: str = "stream"

    def __post_init__(self) -> None:
        if self.n_features <= 0:
            raise ValueError(f"n_features must be positive, got {self.n_features}")
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        if not self.feature_names:
            object.__setattr__(
                self,
                "feature_names",
                tuple(f"x{i}" for i in range(self.n_features)),
            )
        if not self.class_names:
            object.__setattr__(
                self,
                "class_names",
                tuple(f"class_{k}" for k in range(self.n_classes)),
            )
        if len(self.feature_names) != self.n_features:
            raise ValueError("feature_names length does not match n_features")
        if len(self.class_names) != self.n_classes:
            raise ValueError("class_names length does not match n_classes")


class DataStream(abc.ABC):
    """Base class for all data streams.

    A stream exposes its :class:`StreamSchema` and yields :class:`Instance`
    objects through :meth:`__iter__` / :meth:`next_instance`.  Implementations
    must be deterministic for a given ``seed`` so that every experiment in the
    benchmark harness is reproducible.
    """

    def __init__(self, schema: StreamSchema, seed: int | None = None) -> None:
        self._schema = schema
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._position = 0

    @property
    def schema(self) -> StreamSchema:
        """Schema describing features and classes of the stream."""
        return self._schema

    @property
    def n_features(self) -> int:
        return self._schema.n_features

    @property
    def n_classes(self) -> int:
        return self._schema.n_classes

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def position(self) -> int:
        """Number of instances emitted so far."""
        return self._position

    @property
    def seed(self) -> int | None:
        return self._seed

    def restart(self) -> None:
        """Reset the stream to its initial state (same seed, position zero)."""
        self._rng = np.random.default_rng(self._seed)
        self._position = 0

    @abc.abstractmethod
    def _generate(self) -> Instance:
        """Produce the next raw instance.  Subclasses implement this."""

    def next_instance(self) -> Instance:
        """Return the next instance and advance the stream position."""
        instance = self._generate()
        self._position += 1
        return instance

    def __iter__(self) -> Iterator[Instance]:
        while True:
            yield self.next_instance()

    def take(self, n: int) -> list[Instance]:
        """Collect the next ``n`` instances into a list."""
        return [self.next_instance() for _ in range(n)]


class ListStream(DataStream):
    """A finite stream backed by an in-memory list of instances.

    Useful for tests and for replaying previously materialised streams.  The
    stream raises :class:`StopIteration` once exhausted.
    """

    def __init__(
        self,
        instances: Sequence[Instance],
        schema: StreamSchema | None = None,
        name: str = "list-stream",
    ) -> None:
        if not instances:
            raise ValueError("ListStream requires at least one instance")
        if schema is None:
            n_features = instances[0].n_features
            n_classes = max(inst.y for inst in instances) + 1
            schema = StreamSchema(
                n_features=n_features, n_classes=max(2, n_classes), name=name
            )
        super().__init__(schema, seed=None)
        self._instances = list(instances)
        self._cursor = 0

    def restart(self) -> None:
        super().restart()
        self._cursor = 0

    def _generate(self) -> Instance:
        if self._cursor >= len(self._instances):
            raise StopIteration("ListStream exhausted")
        instance = self._instances[self._cursor]
        self._cursor += 1
        return instance

    def __len__(self) -> int:
        return len(self._instances)


def take(stream: Iterable[Instance], n: int) -> list[Instance]:
    """Take up to ``n`` instances from any iterable of instances."""
    out: list[Instance] = []
    for instance in stream:
        out.append(instance)
        if len(out) >= n:
            break
    return out


def stream_to_arrays(instances: Sequence[Instance]) -> tuple[np.ndarray, np.ndarray]:
    """Stack a sequence of instances into ``(X, y)`` NumPy arrays."""
    if not instances:
        raise ValueError("cannot convert an empty instance sequence")
    features = np.vstack([inst.x for inst in instances])
    labels = np.asarray([inst.y for inst in instances], dtype=np.int64)
    return features, labels
