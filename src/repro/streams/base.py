"""Core data-stream abstractions.

The paper evaluates drift detectors on MOA data streams.  This module provides
the equivalent substrate: an :class:`Instance` record, a :class:`StreamSchema`
describing the feature space, and the :class:`DataStream` base class that every
generator, drift wrapper, and imbalance wrapper in :mod:`repro.streams` builds
on.

Streams are **batch-first**: the primitive operation is
:meth:`DataStream.generate_batch`, which produces ``(X, y)`` NumPy arrays for
``n`` instances in one call, and the per-instance iterator protocol
(:meth:`DataStream.next_instance` / ``__iter__``) is a thin shim over the
batch path.  A subclass implements exactly one of

* ``_generate()`` — the legacy instance-primitive hook; ``generate_batch``
  then falls back to a per-instance loop, or
* ``_generate_batch(n)`` — the vectorized batch-primitive hook; the instance
  shim draws batches of size one.

Because every vectorized generator draws its randomness as one contiguous
block of uniform doubles per instance (see :mod:`repro.streams.vector_ops`),
``generate_batch(n)`` consumes the underlying bit stream exactly like ``n``
calls of ``next_instance()``: seeded outputs are bit-identical between the two
paths.  Streams remain fully reproducible through an explicit seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = [
    "Instance",
    "StreamSchema",
    "DataStream",
    "ListStream",
    "take",
    "stream_to_arrays",
]


@dataclass(frozen=True)
class Instance:
    """A single labelled observation drawn from a data stream.

    Attributes
    ----------
    x:
        Feature vector as a 1-D ``float64`` NumPy array.
    y:
        Integer class label in ``[0, n_classes)``.
    weight:
        Optional instance weight (used by cost-sensitive learners).
    """

    x: np.ndarray
    y: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=np.float64))
        object.__setattr__(self, "y", int(self.y))

    @property
    def n_features(self) -> int:
        """Number of features in the instance."""
        return int(self.x.shape[0])


@dataclass(frozen=True)
class StreamSchema:
    """Static description of a stream's feature and label space."""

    n_features: int
    n_classes: int
    feature_names: tuple[str, ...] = field(default_factory=tuple)
    class_names: tuple[str, ...] = field(default_factory=tuple)
    name: str = "stream"

    def __post_init__(self) -> None:
        if self.n_features <= 0:
            raise ValueError(f"n_features must be positive, got {self.n_features}")
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        if not self.feature_names:
            object.__setattr__(
                self,
                "feature_names",
                tuple(f"x{i}" for i in range(self.n_features)),
            )
        if not self.class_names:
            object.__setattr__(
                self,
                "class_names",
                tuple(f"class_{k}" for k in range(self.n_classes)),
            )
        if len(self.feature_names) != self.n_features:
            raise ValueError("feature_names length does not match n_features")
        if len(self.class_names) != self.n_classes:
            raise ValueError("class_names length does not match n_classes")


class DataStream(Snapshotable, abc.ABC):
    """Base class for all data streams.

    A stream exposes its :class:`StreamSchema` and emits instances either in
    bulk through :meth:`generate_batch` (the fast path) or one at a time
    through :meth:`next_instance` / ``__iter__``.  Implementations must be
    deterministic for a given ``seed`` so that every experiment in the
    benchmark harness is reproducible, and the two paths must agree: a batch
    of ``n`` is bit-identical to ``n`` single draws from the same state.

    Streams are **restore-in-place** snapshotables: constructor inputs
    (schemas, concept factories, schedules) are not serialised, so a
    snapshot must be loaded with :meth:`~repro.core.snapshot.Snapshotable.restore`
    into an identically configured instance — after which the restored
    stream emits the bit-identical tail.  The base state is the generator
    bit-state plus position (plus the active concept for generators with
    ``set_concept``); wrappers contribute their cursors, carries, and
    pending-uniform buffers through :meth:`_snapshot_extra`.
    """

    SNAPSHOT_SELF_CONTAINED = False

    def __init__(self, schema: StreamSchema, seed: int | None = None) -> None:
        if (
            type(self)._generate is DataStream._generate
            and type(self)._generate_batch is DataStream._generate_batch
        ):
            raise TypeError(
                f"{type(self).__name__} must implement _generate() or "
                "_generate_batch(n)"
            )
        self._schema = schema
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._position = 0

    @property
    def schema(self) -> StreamSchema:
        """Schema describing features and classes of the stream."""
        return self._schema

    @property
    def n_features(self) -> int:
        return self._schema.n_features

    @property
    def n_classes(self) -> int:
        return self._schema.n_classes

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def position(self) -> int:
        """Number of instances emitted so far."""
        return self._position

    @property
    def seed(self) -> int | None:
        return self._seed

    def restart(self) -> None:
        """Reset the stream to its initial state (same seed, position zero)."""
        self._rng = np.random.default_rng(self._seed)
        self._position = 0

    # ------------------------------------------------------------- snapshots
    def _snapshot_state(self) -> dict:
        state: dict = {"rng": self._rng, "position": self._position}
        if hasattr(self, "set_concept") and hasattr(self, "_concept"):
            state["concept"] = self._concept
        extra = self._snapshot_extra()
        if extra:
            state["extra"] = extra
        return state

    def _restore_state(self, state: dict) -> None:
        if "concept" in state and state["concept"] != getattr(
            self, "_concept", None
        ):
            self.set_concept(int(state["concept"]))
        self._rng = state["rng"]
        self._position = int(state["position"])
        self._restore_extra(state.get("extra", {}))

    def _snapshot_extra(self) -> dict:
        """Subclass hook: extra mutable state beyond rng/position/concept."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Subclass hook: apply the state captured by :meth:`_snapshot_extra`."""

    # ------------------------------------------------------------ primitives
    def _generate(self) -> Instance:
        """Produce the next raw instance (instance-primitive hook).

        The default implementation adapts the batch-primitive hook; streams
        that implement ``_generate_batch`` inherit it unchanged.  Raises
        :class:`StopIteration` when the stream is exhausted.
        """
        features, labels = self._generate_batch(1)
        if labels.shape[0] == 0:
            raise StopIteration(f"stream '{self.name}' exhausted")
        return Instance(x=features[0], y=int(labels[0]))

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Produce up to ``n`` raw instances as ``(X, y)`` (batch hook).

        Batch-primitive subclasses override this with a vectorized
        implementation.  The hook must not advance :attr:`position` (the
        public wrappers do) but may read it, e.g. for position-dependent
        schedules.  Returning fewer than ``n`` rows signals exhaustion.
        """
        raise NotImplementedError  # pragma: no cover - dispatch short-circuits

    # --------------------------------------------------------------- reading
    def next_instance(self) -> Instance:
        """Return the next instance and advance the stream position."""
        instance = self._generate()
        self._position += 1
        return instance

    def generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the next ``n`` instances as ``(X, y)`` arrays.

        ``X`` has shape ``(m, n_features)`` and ``y`` shape ``(m,)`` with
        ``m <= n``; ``m < n`` only when a finite stream is exhausted.  For a
        fixed seed the emitted values are bit-identical to ``n`` consecutive
        :meth:`next_instance` calls.
        """
        n = int(n)
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n == 0:
            return self._empty_batch()
        if type(self)._generate_batch is DataStream._generate_batch:
            # Instance-primitive stream: fall back to a per-instance loop so
            # position-dependent logic in `_generate` keeps working.
            xs: list[np.ndarray] = []
            ys: list[int] = []
            for _ in range(n):
                try:
                    instance = self.next_instance()
                except StopIteration:
                    break
                xs.append(instance.x)
                ys.append(instance.y)
            if not xs:
                return self._empty_batch()
            return np.vstack(xs), np.asarray(ys, dtype=np.int64)
        features, labels = self._generate_batch(n)
        self._position += int(labels.shape[0])
        return features, labels

    def _empty_batch(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.empty((0, self.n_features), dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )

    def __iter__(self) -> Iterator[Instance]:
        # PEP 479: a StopIteration escaping a generator body becomes a
        # RuntimeError, so exhaustion must be converted into a plain return.
        while True:
            try:
                instance = self.next_instance()
            except StopIteration:
                return
            yield instance

    def take(self, n: int) -> list[Instance]:
        """Collect up to ``n`` instances into a list.

        A finite stream that runs out mid-way returns the remaining instances
        instead of raising.
        """
        out: list[Instance] = []
        for _ in range(n):
            try:
                out.append(self.next_instance())
            except StopIteration:
                break
        return out


class ListStream(DataStream):
    """A finite stream backed by an in-memory list of instances.

    Useful for tests and for replaying previously materialised streams.
    :meth:`next_instance` raises :class:`StopIteration` once exhausted;
    :meth:`generate_batch` and iteration terminate cleanly instead.
    """

    def __init__(
        self,
        instances: Sequence[Instance],
        schema: StreamSchema | None = None,
        name: str = "list-stream",
    ) -> None:
        if not instances:
            raise ValueError("ListStream requires at least one instance")
        if schema is None:
            n_features = instances[0].n_features
            n_classes = max(inst.y for inst in instances) + 1
            schema = StreamSchema(
                n_features=n_features, n_classes=max(2, n_classes), name=name
            )
        super().__init__(schema, seed=None)
        self._instances = list(instances)
        self._features = np.vstack([inst.x for inst in self._instances])
        self._labels = np.asarray([inst.y for inst in self._instances], dtype=np.int64)
        self._cursor = 0

    def restart(self) -> None:
        super().restart()
        self._cursor = 0

    def _snapshot_extra(self) -> dict:
        return {"cursor": self._cursor}

    def _restore_extra(self, extra: dict) -> None:
        self._cursor = int(extra["cursor"])

    def _generate(self) -> Instance:
        if self._cursor >= len(self._instances):
            raise StopIteration("ListStream exhausted")
        instance = self._instances[self._cursor]
        self._cursor += 1
        return instance

    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        end = min(self._cursor + n, len(self._instances))
        features = self._features[self._cursor : end].copy()
        labels = self._labels[self._cursor : end].copy()
        self._cursor = end
        return features, labels

    def __len__(self) -> int:
        return len(self._instances)


def take(stream: Iterable[Instance], n: int) -> list[Instance]:
    """Take up to ``n`` instances from any iterable of instances."""
    out: list[Instance] = []
    for instance in stream:
        out.append(instance)
        if len(out) >= n:
            break
    return out


def stream_to_arrays(instances: Sequence[Instance]) -> tuple[np.ndarray, np.ndarray]:
    """Stack a sequence of instances into ``(X, y)`` NumPy arrays."""
    if not instances:
        raise ValueError("cannot convert an empty instance sequence")
    features = np.vstack([inst.x for inst in instances])
    labels = np.asarray([inst.y for inst in instances], dtype=np.int64)
    return features, labels
