"""Data-stream substrate: instances, generators, drift and imbalance wrappers."""

from repro.streams.base import (
    DataStream,
    Instance,
    ListStream,
    StreamSchema,
    stream_to_arrays,
    take,
)
from repro.streams.drift import (
    ConceptDriftStream,
    ConceptScheduleStream,
    DriftingStream,
    LocalDriftStream,
    RecurringDriftStream,
)
from repro.streams.imbalance import (
    DynamicImbalance,
    ImbalancedStream,
    ImbalanceProfile,
    RoleSwitchingImbalance,
    StaticImbalance,
    geometric_priors,
)
from repro.streams.real_world import (
    REAL_WORLD_SPECS,
    RealWorldSpec,
    real_world_names,
    real_world_stream,
)
from repro.streams.scenarios import (
    ARTIFICIAL_FAMILIES,
    ScenarioStream,
    make_artificial_stream,
    make_generator,
    scenario_global_drift,
    scenario_local_drift,
    scenario_role_switching,
)

__all__ = [
    "DataStream",
    "Instance",
    "ListStream",
    "StreamSchema",
    "stream_to_arrays",
    "take",
    "ConceptDriftStream",
    "ConceptScheduleStream",
    "DriftingStream",
    "LocalDriftStream",
    "RecurringDriftStream",
    "DynamicImbalance",
    "ImbalancedStream",
    "ImbalanceProfile",
    "RoleSwitchingImbalance",
    "StaticImbalance",
    "geometric_priors",
    "REAL_WORLD_SPECS",
    "RealWorldSpec",
    "real_world_names",
    "real_world_stream",
    "ARTIFICIAL_FAMILIES",
    "ScenarioStream",
    "make_artificial_stream",
    "make_generator",
    "scenario_global_drift",
    "scenario_local_drift",
    "scenario_role_switching",
]
