"""Shared parity-critical sampling plumbing for the re-sampling streams.

Two wrappers re-sample a base stream class-conditionally — the imbalance
wrapper (:class:`~repro.streams.imbalance.ImbalancedStream`) and the
schedule engine (:class:`~repro.streams.schedule.ScheduledStream`).  Both
depend on the same two subtle invariants for the repo's chunk-exactness
contract, so the machinery lives here exactly once:

* **uniform replay** — uniforms drawn for positions that could not be
  emitted (a finite source exhausted mid-batch) must be replayed before any
  fresh RNG draw, otherwise the batch path's RNG consumption diverges from
  per-instance iteration at the truncation point;
* **deterministic fallback order** — when the requested class cannot be
  produced, the fallback chain (per-class buffer, newest first → fullest
  buffer → raw source row) must be identical however the stream is read.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from repro.core.snapshot import Snapshotable
from repro.streams.base import DataStream

__all__ = [
    "UniformReplayBuffer",
    "ClassConditionalSampler",
    "inverse_cdf_classes",
]


def inverse_cdf_classes(
    priors: np.ndarray, u: np.ndarray, top: "np.ndarray | int | None" = None
) -> np.ndarray:
    """Row-wise inverse-CDF class choice from prior rows and one uniform each.

    Equivalent to ``searchsorted(cumsum(priors[i]), u[i], side="right")`` per
    row, clipped to ``top`` (default: the last class) so floating error at
    the top of the CDF cannot select past it.  ``top`` may be per-row — e.g.
    the largest *active* class of a segment, so the clip can never resurrect
    a masked-out class.  Both re-sampling engines must share this exact
    operation order: a single ULP of divergence in the CDF comparison would
    silently break batch/instance bit-parity.
    """
    cdf = np.cumsum(priors, axis=1)
    if top is None:
        top = priors.shape[1] - 1
    return np.minimum((cdf <= u[:, None]).sum(axis=1), top)


class UniformReplayBuffer(Snapshotable):
    """Uniform draws with exact replay of rows returned to the buffer.

    ``take(n, rng)`` serves pending (previously stashed) rows first and only
    then draws fresh uniforms — the same consumption order as ``n``
    per-instance draws.  ``stash(rows)`` returns the undecided tail of a
    truncated batch for replay by the next call.
    """

    def __init__(self, columns: int | None = None) -> None:
        self._columns = columns
        self._pending: np.ndarray | None = None

    def _empty(self) -> np.ndarray:
        shape = (0,) if self._columns is None else (0, self._columns)
        return np.empty(shape)

    def take(self, n: int, rng: np.random.Generator) -> np.ndarray:
        pending = self._pending
        if pending is None:
            head = self._empty()
        else:
            used = min(n, pending.shape[0])
            head = pending[:used]
            self._pending = pending[used:] if used < pending.shape[0] else None
        fresh = n - head.shape[0]
        if fresh == 0:
            return head
        draw = rng.random(fresh if self._columns is None else (fresh, self._columns))
        return np.concatenate([head, draw])

    def stash(self, unused: np.ndarray) -> None:
        self._pending = unused if unused.shape[0] else None

    def clear(self) -> None:
        self._pending = None


class ClassConditionalSampler(Snapshotable):
    """Class-conditional rejection sampler over one source stream.

    Draws source rows in blocks of ``block_size`` (``1`` reproduces the
    draw-on-demand consumption of a per-instance loop; larger blocks are
    cheaper for batch execution — block boundaries depend only on the
    cumulative number of rows requested, never on chunking), buffers rows of
    other classes per class, and serves requests newest-first so emitted
    instances track the current state of the source.  When the requested
    class does not appear within ``max_draws`` the sampler falls back
    deterministically: pop the fullest buffer, else emit the next source row
    as-is — the stream never aborts mid-run.  :class:`StopIteration` is
    raised only when the source is exhausted *and* every buffer is empty.
    """

    __slots__ = (
        "stream", "buffers", "max_draws", "block_size", "_block_x",
        "_block_y", "_cursor",
    )

    def __init__(
        self,
        stream: DataStream,
        n_classes: int,
        max_buffer: int,
        max_draws: int,
        block_size: int = 1,
    ) -> None:
        self.stream = stream
        self.buffers: list[Deque[tuple[np.ndarray, int]]] = [
            deque(maxlen=max_buffer) for _ in range(n_classes)
        ]
        self.max_draws = max_draws
        self.block_size = block_size
        self._block_x: np.ndarray | None = None
        self._block_y: np.ndarray | None = None
        self._cursor = 0

    # The wrapped stream holds un-serialisable factories, so the sampler is
    # restore-in-place like the streams themselves.
    SNAPSHOT_SELF_CONTAINED = False

    def _snapshot_state(self) -> dict:
        return {
            "stream": self.stream,
            "buffers": self.buffers,
            "block_x": self._block_x,
            "block_y": self._block_y,
            "cursor": self._cursor,
        }

    def _restore_state(self, state: dict) -> None:
        self.stream.restore(state["stream"])
        self.buffers = state["buffers"]
        self._block_x = state["block_x"]
        self._block_y = state["block_y"]
        self._cursor = int(state["cursor"])

    def restart(self) -> None:
        self.stream.restart()
        self.clear_buffers()

    def clear_buffers(self) -> None:
        """Drop buffered rows (and any prefetched block) from a stale concept."""
        for buffer in self.buffers:
            buffer.clear()
        self._block_x = None
        self._block_y = None
        self._cursor = 0

    def _next_row(self) -> tuple[np.ndarray, int]:
        if self._block_y is None or self._cursor >= self._block_y.shape[0]:
            block_x, block_y = self.stream.generate_batch(self.block_size)
            if block_y.shape[0] == 0:
                raise StopIteration(f"source '{self.stream.name}' exhausted")
            self._block_x, self._block_y, self._cursor = block_x, block_y, 0
        row = self._block_x[self._cursor], int(self._block_y[self._cursor])
        self._cursor += 1
        return row

    def sample(
        self, wanted: int, allowed: "tuple[int, ...] | None" = None
    ) -> tuple[np.ndarray, int]:
        """One ``(x, y)`` of (ideally) class ``wanted``.

        With ``allowed`` given (class arrival/removal), every fallback is
        restricted to the allowed classes so a removed class can never be
        re-emitted past its declared ground-truth change point.
        """
        buffer = self.buffers[wanted]
        if buffer:
            return buffer.pop()
        exhausted = False
        for _ in range(self.max_draws):
            try:
                x, y = self._next_row()
            except StopIteration:
                exhausted = True
                break
            if y == wanted:
                return x, y
            self.buffers[y].append((x, y))
        # Deterministic fallback: fullest (allowed) buffer first — ties break
        # toward the lowest class index — then the raw source.
        candidates = (
            range(len(self.buffers)) if allowed is None else allowed
        )
        best, best_size = -1, 0
        for c in candidates:
            if len(self.buffers[c]) > best_size:
                best, best_size = c, len(self.buffers[c])
        if best_size:
            return self.buffers[best].pop()
        if exhausted:
            raise StopIteration(f"source '{self.stream.name}' exhausted")
        if allowed is None:
            return self._next_row()
        # Last resort for a masked segment: keep drawing until an allowed row
        # appears.  The budget floor is deliberately generous and independent
        # of the (tunable) per-request ``max_draws``: only a source that
        # cannot produce *any* allowed class should fail — loudly, rather
        # than silently violating the declared class-removal ground truth.
        budget = max(self.max_draws, 10_000)
        for _ in range(budget):
            try:
                x, y = self._next_row()
            except StopIteration as exc:
                raise StopIteration(
                    f"source '{self.stream.name}' exhausted"
                ) from exc
            if y in allowed:
                return x, y
            self.buffers[y].append((x, y))
        raise RuntimeError(
            f"source '{self.stream.name}' produced none of the active "
            f"classes {allowed} within {budget} draws"
        )
