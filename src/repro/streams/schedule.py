"""Declarative drift/imbalance schedule DSL and its batch-first engine.

The paper evaluates RBM-IM on three hand-built scenario templates; the
roadmap demands "as many scenarios as you can imagine".  This module turns
scenario construction into *data*: a :class:`Schedule` is a sequence of
:class:`Segment` objects, each declaring — for a span of the stream — the
generator concept in force, how the stream transitions into it (sudden /
gradual / incremental, optionally restricted to a subset of classes for
local drift), the imbalance behaviour (profile-driven, per-segment static
ratio, role rotation), which classes are active (class arrival/removal),
the label-noise rate, and a deterministic feature-drift offset.

:class:`ScheduledStream` executes a schedule as one seeded, batch-first
stream.  Two invariants make it fit the repo's chunk-exactness contract:

* **fixed draw budget** — the engine consumes exactly four uniform doubles
  of its own RNG per emitted instance (class choice, concept choice, noise
  flip, noise target), drawn as one contiguous ``(n, 4)`` block, so
  ``generate_batch(n)`` consumes the bit stream exactly like ``n`` calls of
  ``next_instance()``;
* **emitted-coordinate ground truth** — every scheduled change happens at an
  *emitted* stream position (the engine re-samples class-conditionally from
  per-concept sources instead of wrapping re-samplers around drift
  wrappers), so the :class:`DriftEvent` list is exact by construction: the
  instance at ``event.position`` is the first one generated under the new
  configuration.

The last segment is open-ended: its configuration continues indefinitely, so
a scheduled stream never exhausts (evaluation harnesses choose the length).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.streams.base import DataStream, StreamSchema
from repro.streams.drift import DriftingStream
from repro.streams.imbalance import ImbalanceProfile, geometric_priors_batch
from repro.streams.sampling import (
    ClassConditionalSampler,
    UniformReplayBuffer,
    inverse_cdf_classes,
)

__all__ = [
    "DRIFT_KINDS",
    "TRANSITIONS",
    "DriftEvent",
    "Segment",
    "Schedule",
    "ScheduledStream",
]

#: Ground-truth event kinds a schedule can emit.
DRIFT_KINDS = ("real", "blip", "virtual", "noise", "prior")

#: Supported transition speeds into a segment's concept.
TRANSITIONS = ("sudden", "gradual", "incremental")


@dataclass(frozen=True)
class DriftEvent:
    """One exact ground-truth change point of a scheduled stream.

    Attributes
    ----------
    position:
        Emitted-instance index of the first instance generated under the new
        configuration.
    kind:
        ``"real"`` — concept change (true concept drift); ``"blip"`` —
        transient concept excursion that detectors should *not* flag as a
        sustained drift; ``"virtual"`` — deterministic feature-space shift
        with unchanged concept; ``"noise"`` — label-noise rate change;
        ``"prior"`` — class arrival/removal (prior drift).
    classes:
        Classes affected (``None`` = all classes).
    """

    position: int
    kind: str
    classes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.position < 0:
            raise ValueError("event position must be non-negative")


@dataclass(frozen=True)
class Segment:
    """One span of a scheduled stream.

    Parameters
    ----------
    length:
        Number of instances in the segment (the final segment of a schedule
        is open-ended and its configuration persists past its length).
    concept:
        Generator concept in force; ``None`` inherits the previous segment's
        concept (the first segment defaults to concept 0).
    transition:
        How the stream moves from the previous concept into this one:
        ``"sudden"`` (abrupt), ``"gradual"`` (probabilistic oscillation), or
        ``"incremental"`` (sigmoidal mixture progression) over ``width``
        instances.  Ignored when the concept does not change.
    width:
        Transition window length (0 = abrupt).  Also the ramp length of a
        ``feature_shift`` change.
    drifted_classes:
        Restrict the concept change to these classes (local drift): other
        classes keep drawing from the previous concept for the whole
        segment.  ``None`` = all classes drift.
    imbalance_ratio:
        Per-segment static imbalance ratio override; ``None`` uses the
        schedule-level profile (or balanced priors when none is set).
    rotation:
        Rotate the prior vector by this many positions (declarative role
        switching on top of whatever profile is active).  ``None`` leaves the
        profile's own behaviour untouched.
    active_classes:
        Classes that may be emitted in this segment (class arrival/removal);
        priors of inactive classes are zeroed and the rest renormalised.
        ``None`` = all classes active.
    label_noise:
        Probability of flipping an emitted label to a different (active)
        class, uniformly.
    feature_shift:
        Deterministic feature-space offset magnitude (virtual drift) reached
        ``width`` instances into the segment; ``None`` inherits the previous
        segment's magnitude.
    blip:
        Mark this segment's concept change (and the change back out of it)
        as a transient blip: excluded from the *real* drift ground truth so
        detections near it score as false alarms.
    """

    length: int
    concept: int | None = None
    transition: str = "sudden"
    width: int = 0
    drifted_classes: tuple[int, ...] | None = None
    imbalance_ratio: float | None = None
    rotation: int | None = None
    active_classes: tuple[int, ...] | None = None
    label_noise: float = 0.0
    feature_shift: float | None = None
    blip: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"segment length must be positive, got {self.length}")
        if self.transition not in TRANSITIONS:
            raise ValueError(
                f"unknown transition {self.transition!r}; expected one of {TRANSITIONS}"
            )
        if self.width < 0:
            raise ValueError("width must be non-negative")
        if not 0.0 <= self.label_noise <= 1.0:
            raise ValueError("label_noise must be in [0, 1]")
        if self.imbalance_ratio is not None and self.imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1")
        for name in ("drifted_classes", "active_classes"):
            value = getattr(self, name)
            if value is not None:
                value = tuple(sorted(set(int(c) for c in value)))
                if not value:
                    raise ValueError(f"{name} must not be empty when given")
                object.__setattr__(self, name, value)


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of :class:`Segment`\\ s plus derived ground truth."""

    segments: tuple[Segment, ...]

    def __post_init__(self) -> None:
        segments = tuple(self.segments)
        if not segments:
            raise ValueError("a schedule needs at least one segment")
        object.__setattr__(self, "segments", segments)

    # ------------------------------------------------------------ constructors
    @classmethod
    def of(cls, *segments: Segment) -> "Schedule":
        return cls(segments=tuple(segments))

    @classmethod
    def concept_sweep(
        cls,
        n_segments: int,
        segment_length: int,
        transition: str = "sudden",
        width: int = 0,
        start_concept: int = 0,
    ) -> "Schedule":
        """Concepts ``start, start+1, ...`` switched every ``segment_length``."""
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        return cls.of(
            *(
                Segment(
                    length=segment_length,
                    concept=start_concept + i,
                    transition=transition,
                    width=width if i else 0,
                )
                for i in range(n_segments)
            )
        )

    @classmethod
    def recurring(
        cls, concepts: Sequence[int], period: int, n_periods: int
    ) -> "Schedule":
        """Cycle through ``concepts`` every ``period`` instances, ``n_periods`` times."""
        if not concepts:
            raise ValueError("concepts must be non-empty")
        if period <= 0 or n_periods <= 0:
            raise ValueError("period and n_periods must be positive")
        return cls.of(
            *(
                Segment(length=period, concept=int(concepts[i % len(concepts)]))
                for i in range(n_periods)
            )
        )

    # --------------------------------------------------------------- geometry
    @property
    def total_length(self) -> int:
        """Sum of segment lengths (the last segment extends past this)."""
        return sum(segment.length for segment in self.segments)

    def starts(self) -> list[int]:
        """Emitted-instance index at which each segment begins."""
        positions, cursor = [], 0
        for segment in self.segments:
            positions.append(cursor)
            cursor += segment.length
        return positions

    def resolved_concepts(self) -> list[int]:
        """Per-segment concept with ``None`` inheritance applied (first = 0)."""
        concepts, current = [], 0
        for segment in self.segments:
            if segment.concept is not None:
                current = int(segment.concept)
            concepts.append(current)
        return concepts

    def resolved_shifts(self) -> list[float]:
        """Per-segment feature-shift magnitude with ``None`` inheritance."""
        shifts, current = [], 0.0
        for segment in self.segments:
            if segment.feature_shift is not None:
                current = float(segment.feature_shift)
            shifts.append(current)
        return shifts

    # ----------------------------------------------------------- ground truth
    def events(self, n_classes: int | None = None) -> list[DriftEvent]:
        """Every exact ground-truth change point, in stream order.

        ``n_classes`` is only needed to name the affected classes of a class
        arrival/removal when one side of the change is "all classes".
        """
        events: list[DriftEvent] = []
        starts = self.starts()
        concepts = self.resolved_concepts()
        shifts = self.resolved_shifts()
        for i in range(1, len(self.segments)):
            segment, previous = self.segments[i], self.segments[i - 1]
            position = starts[i]
            if concepts[i] != concepts[i - 1]:
                kind = "blip" if (segment.blip or previous.blip) else "real"
                events.append(
                    DriftEvent(position, kind, classes=segment.drifted_classes)
                )
            if shifts[i] != shifts[i - 1]:
                events.append(DriftEvent(position, "virtual"))
            if segment.label_noise != previous.label_noise:
                events.append(DriftEvent(position, "noise"))
            if segment.active_classes != previous.active_classes:
                if n_classes is None:
                    changed = None
                else:
                    everyone = tuple(range(n_classes))
                    before = previous.active_classes or everyone
                    after = segment.active_classes or everyone
                    changed = tuple(sorted(set(before) ^ set(after)))
                events.append(DriftEvent(position, "prior", classes=changed))
        return events

    def drift_points(self) -> list[int]:
        """Positions of the *real* (sustained, non-blip) concept drifts."""
        return [event.position for event in self.events() if event.kind == "real"]


class ScheduledStream(DriftingStream):
    """Execute a :class:`Schedule` as one seeded batch-first stream.

    Parameters
    ----------
    generator_factory:
        ``concept -> DataStream`` building one source stream per concept
        (created lazily, cached; every generator in
        :mod:`repro.streams.generators` qualifies via e.g.
        ``lambda c: RandomRBFGenerator(concept=c, seed=...)``).
    schedule:
        The declarative schedule to execute.
    imbalance:
        Schedule-level :class:`~repro.streams.imbalance.ImbalanceProfile`
        evaluated at the *emitted* position; segments may override it with a
        static ``imbalance_ratio``.  ``None`` = balanced priors.
    seed:
        Engine RNG seed (class choice, concept mixing, label noise).  The
        feature-drift direction is derived from it deterministically.
    """

    def __init__(
        self,
        generator_factory: Callable[[int], DataStream],
        schedule: Schedule,
        imbalance: ImbalanceProfile | None = None,
        seed: int | None = None,
        max_buffer_per_class: int = 32,
        max_tries_per_draw: int = 4_096,
        source_block_size: int = 64,
        name: str | None = None,
    ) -> None:
        self._factory = generator_factory
        first_concept = schedule.resolved_concepts()[0]
        probe = generator_factory(first_concept)
        if imbalance is not None and imbalance.n_classes != probe.n_classes:
            raise ValueError("imbalance profile and generator disagree on n_classes")
        for segment in schedule.segments:
            for classes in (segment.drifted_classes, segment.active_classes):
                if classes is not None and any(
                    c < 0 or c >= probe.n_classes for c in classes
                ):
                    raise ValueError(f"segment classes {classes} out of range")
        schema = StreamSchema(
            n_features=probe.n_features,
            n_classes=probe.n_classes,
            name=name or f"{probe.name}-scheduled",
        )
        super().__init__(schema, seed)
        self._schedule = schedule
        self._imbalance = imbalance
        self._max_buffer = max_buffer_per_class
        self._max_tries = max_tries_per_draw
        self._block_size = source_block_size
        self._samplers: dict[int, ClassConditionalSampler] = {
            first_concept: self._make_sampler(probe)
        }
        self._starts = np.asarray(schedule.starts(), dtype=np.int64)
        self._boundaries = self._starts[1:] if len(self._starts) > 1 else np.empty(0, np.int64)
        self._boundaries = np.append(self._boundaries, schedule.total_length)
        self._concepts = schedule.resolved_concepts()
        self._shifts = schedule.resolved_shifts()
        self._events = schedule.events(probe.n_classes)
        self._drift_points = [e.position for e in self._events if e.kind == "real"]
        # Unit direction of the deterministic feature drift; its own RNG so
        # the per-instance draw budget of the engine RNG stays fixed.
        direction_rng = np.random.default_rng(
            77_003 if seed is None else 77_003 + seed
        )
        direction = direction_rng.normal(size=probe.n_features)
        self._shift_direction = direction / (np.linalg.norm(direction) + 1e-12)
        # Uniform rows drawn for positions not yet emitted (finite source
        # exhausted mid-batch); replayed before fresh draws for exact parity.
        self._uniforms = UniformReplayBuffer(columns=4)

    # ------------------------------------------------------------- properties
    @property
    def schedule(self) -> Schedule:
        return self._schedule

    @property
    def events(self) -> list[DriftEvent]:
        """Exact ground truth of the whole schedule (known upfront)."""
        return list(self._events)

    @property
    def drifted_classes(self) -> list[list[int] | None]:
        """Affected classes of each *real* drift, aligned with drift_points."""
        return [
            list(e.classes) if e.classes is not None else None
            for e in self._events
            if e.kind == "real"
        ]

    def restart(self) -> None:
        super().restart()
        for sampler in self._samplers.values():
            sampler.restart()
        self._uniforms.clear()

    def _snapshot_extra(self) -> dict:
        return {"samplers": self._samplers, "uniforms": self._uniforms}

    def _restore_extra(self, extra: dict) -> None:
        snapshotted = {int(concept) for concept in extra["samplers"]}
        for concept in [c for c in self._samplers if c not in snapshotted]:
            # Samplers the snapshot never reached (restoring to an earlier
            # point) would otherwise keep their advanced source RNGs.
            del self._samplers[concept]
        for concept, sampler_state in extra["samplers"].items():
            # Samplers are created lazily per concept; instantiate any the
            # restoring instance has not reached yet, then restore in place.
            self._sampler(int(concept)).restore(sampler_state)
        self._uniforms = extra["uniforms"]

    # --------------------------------------------------------------- plumbing
    def _make_sampler(self, stream: DataStream) -> ClassConditionalSampler:
        return ClassConditionalSampler(
            stream,
            stream.n_classes,
            max_buffer=self._max_buffer,
            max_draws=self._max_tries,
            block_size=self._block_size,
        )

    def _sampler(self, concept: int) -> ClassConditionalSampler:
        sampler = self._samplers.get(concept)
        if sampler is None:
            sampler = self._make_sampler(self._factory(concept))
            self._samplers[concept] = sampler
        return sampler

    def _segment_indices(self, positions: np.ndarray) -> np.ndarray:
        """Segment index per position; the last segment is open-ended."""
        return np.minimum(
            np.searchsorted(self._boundaries, positions, side="right"),
            len(self._schedule.segments) - 1,
        )

    def _transition_probabilities(
        self, index: int, offsets: np.ndarray
    ) -> np.ndarray:
        """P(new concept) at the given offsets into segment ``index``."""
        segment = self._schedule.segments[index]
        if (
            index == 0
            or self._concepts[index] == self._concepts[index - 1]
            or segment.transition == "sudden"
            or segment.width == 0
        ):
            return np.ones(offsets.shape[0])
        progress = np.minimum(offsets / segment.width, 1.0)
        if segment.transition == "incremental":
            inside = progress < 1.0
            probabilities = np.ones(offsets.shape[0])
            probabilities[inside] = 1.0 / (
                1.0 + np.exp(-4.0 * (2.0 * progress[inside] - 1.0))
            )
            return probabilities
        return progress  # gradual: linear oscillation probability

    def _segment_priors(
        self, index: int, positions: np.ndarray
    ) -> np.ndarray:
        """Target-class prior rows for positions inside segment ``index``."""
        segment = self._schedule.segments[index]
        k = self.n_classes
        if segment.imbalance_ratio is not None:
            priors = geometric_priors_batch(
                k, np.full(positions.shape[0], segment.imbalance_ratio)
            )
        elif self._imbalance is not None:
            priors = self._imbalance.priors_batch(positions)
        else:
            priors = np.full((positions.shape[0], k), 1.0 / k)
        if segment.rotation is not None:
            rotation = segment.rotation % k
            if rotation:
                priors = np.roll(priors, rotation, axis=1)
        if segment.active_classes is not None:
            mask = np.zeros(k)
            mask[list(segment.active_classes)] = 1.0
            priors = priors * mask
            priors = priors / priors.sum(axis=1, keepdims=True)
        return priors

    def _shift_magnitudes(self, index: int, offsets: np.ndarray) -> np.ndarray:
        """Feature-drift magnitude at the given offsets into segment ``index``."""
        target = self._shifts[index]
        previous = self._shifts[index - 1] if index else 0.0
        if target == previous:
            return np.full(offsets.shape[0], target)
        segment = self._schedule.segments[index]
        if segment.width == 0:
            return np.full(offsets.shape[0], target)
        progress = np.minimum(offsets / segment.width, 1.0)
        return previous + (target - previous) * progress

    # -------------------------------------------------------------- execution
    def _generate_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        if n == 0:
            return self._empty_batch()
        k = self.n_classes
        segments = self._schedule.segments
        positions = self._position + np.arange(n)
        u = self._uniforms.take(n, self._rng)
        segment_index = self._segment_indices(positions)

        # Vectorized per-run of constant segment: priors, transition
        # probability, feature-shift magnitude, and the top class the
        # inverse-CDF clip may land on (the largest *active* class, so the
        # floating-point clip can never resurrect a removed class).
        priors = np.empty((n, k))
        p_new = np.empty(n)
        magnitudes = np.empty(n)
        top_class = np.empty(n, dtype=np.int64)
        run_edges = np.flatnonzero(np.diff(segment_index)) + 1
        run_starts = np.concatenate([[0], run_edges, [n]])
        for r in range(run_starts.shape[0] - 1):
            lo, hi = int(run_starts[r]), int(run_starts[r + 1])
            index = int(segment_index[lo])
            offsets = positions[lo:hi] - int(self._starts[index])
            priors[lo:hi] = self._segment_priors(index, positions[lo:hi])
            p_new[lo:hi] = self._transition_probabilities(index, offsets)
            magnitudes[lo:hi] = self._shift_magnitudes(index, offsets)
            active = segments[index].active_classes
            top_class[lo:hi] = k - 1 if active is None else max(active)

        # Target class per instance (row-wise inverse CDF).
        wanted = inverse_cdf_classes(priors, u[:, 0], top=top_class)

        # Concept per instance: mix old/new during transitions; local drifts
        # keep non-drifted classes on the old concept for the whole segment.
        use_new = u[:, 1] < p_new
        for r in range(run_starts.shape[0] - 1):
            lo, hi = int(run_starts[r]), int(run_starts[r + 1])
            index = int(segment_index[lo])
            drifted = segments[index].drifted_classes
            if index and drifted is not None and self._concepts[index] != self._concepts[index - 1]:
                use_new[lo:hi] &= np.isin(wanted[lo:hi], drifted)

        features = np.empty((n, self.n_features))
        labels = np.empty(n, dtype=np.int64)
        for i in range(n):
            index = int(segment_index[i])
            concept = self._concepts[index]
            if not use_new[i] and index:
                concept = self._concepts[index - 1]
            try:
                x, y = self._sampler(concept).sample(
                    int(wanted[i]), allowed=segments[index].active_classes
                )
            except StopIteration:
                # Finite source ran dry: emit what was produced and replay the
                # undecided uniform rows next call (terminal, chunk-exact).
                # The emitted prefix still goes through noise/shift below.
                self._uniforms.stash(u[i:])
                n = i
                features, labels = features[:n], labels[:n]
                u, segment_index, magnitudes = u[:n], segment_index[:n], magnitudes[:n]
                break
            features[i] = x
            labels[i] = y

        # Label noise: flip to a uniformly chosen *other* active class.
        noise = np.array([segments[j].label_noise for j in segment_index])
        for i in np.flatnonzero(u[:, 2] < noise):
            active = segments[int(segment_index[i])].active_classes
            pool = list(active) if active is not None else list(range(k))
            if labels[i] in pool:
                pool.remove(int(labels[i]))
            if pool:
                labels[i] = pool[int(u[i, 3] * len(pool))]

        # Deterministic feature drift (virtual drift).
        shifted = magnitudes != 0.0
        if shifted.any():
            features[shifted] += (
                magnitudes[shifted, None] * self._shift_direction[None, :]
            )
        return features, labels
