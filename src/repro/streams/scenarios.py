"""Benchmark scenario builders from the paper's taxonomy (Section IV).

Three scenarios of increasing difficulty are defined:

* **Scenario 1** — global real concept drift + dynamic imbalance ratio, class
  roles fixed;
* **Scenario 2** — Scenario 1 plus changing class roles (minority becomes
  majority and vice versa);
* **Scenario 3** — local concept drift (only a chosen subset of classes is
  affected) + dynamic imbalance ratio + changing class roles.

Each builder returns a :class:`ScenarioStream` bundling the composed stream,
the ground-truth drift positions, and the classes affected by each drift —
everything the evaluation harness needs to score detectors.

The module also provides :func:`make_artificial_stream`, the factory behind
the paper's 12 artificial benchmarks (Aggrawal/Hyperplane/RBF/RandomTree ×
{5, 10, 20} classes) with the drift speeds listed in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.streams.base import DataStream
from repro.streams.drift import (
    ConceptScheduleStream,
    LocalDriftStream,
)
from repro.streams.generators import (
    AgrawalGenerator,
    HyperplaneGenerator,
    RandomRBFGenerator,
    RandomTreeGenerator,
)
from repro.streams.imbalance import (
    DynamicImbalance,
    ImbalancedStream,
    ImbalanceProfile,
    RoleSwitchingImbalance,
    StaticImbalance,
)

__all__ = [
    "ScenarioStream",
    "ARTIFICIAL_FAMILIES",
    "make_generator",
    "make_artificial_stream",
    "scenario_global_drift",
    "scenario_role_switching",
    "scenario_local_drift",
]

#: Family name -> (generator class, drift speed reported in Table I).
ARTIFICIAL_FAMILIES: dict[str, tuple[type, str]] = {
    "agrawal": (AgrawalGenerator, "incremental"),
    "hyperplane": (HyperplaneGenerator, "gradual"),
    "rbf": (RandomRBFGenerator, "sudden"),
    "randomtree": (RandomTreeGenerator, "sudden"),
}


@dataclass
class ScenarioStream:
    """A composed benchmark stream plus its ground truth.

    Attributes
    ----------
    stream:
        The stream to iterate over in the prequential harness.
    drift_points:
        Instance indices at which real drifts start.
    drifted_classes:
        For each drift point, the classes affected (``None`` = all classes).
    name:
        Human-readable benchmark name.
    n_instances:
        Recommended evaluation length.
    """

    stream: DataStream
    drift_points: list[int]
    drifted_classes: list[list[int] | None]
    name: str
    n_instances: int
    profile: ImbalanceProfile | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_classes(self) -> int:
        return self.stream.n_classes

    @property
    def n_features(self) -> int:
        return self.stream.n_features


def make_generator(
    family: str, n_classes: int, n_features: int, concept: int, seed: int | None
) -> DataStream:
    """Instantiate one of the paper's artificial generators on a given concept."""
    key = family.lower()
    if key not in ARTIFICIAL_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; expected one of {sorted(ARTIFICIAL_FAMILIES)}"
        )
    generator_cls, drift_speed = ARTIFICIAL_FAMILIES[key]
    kwargs = dict(
        n_classes=n_classes, n_features=n_features, concept=concept, seed=seed
    )
    if generator_cls is HyperplaneGenerator and drift_speed == "gradual":
        kwargs["mag_change"] = 0.0
    return generator_cls(**kwargs)


def _drift_schedule(n_instances: int, n_drifts: int) -> list[int]:
    """Evenly spaced drift positions, never at the very start or end."""
    if n_drifts <= 0:
        return []
    spacing = n_instances // (n_drifts + 1)
    return [spacing * (i + 1) for i in range(n_drifts)]


def make_artificial_stream(
    family: str,
    n_classes: int,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    drift_width: int | None = None,
    seed: int = 0,
) -> ScenarioStream:
    """Build one of the paper's artificial benchmarks (Table I, bottom half).

    The stream has ``2 * n_classes`` features (matching the paper's 20/40/80
    features for 5/10/20 classes), evenly spaced global concept drifts of the
    family's characteristic speed, and a dynamic imbalance ratio oscillating
    between 1/4 of the maximum and the maximum.
    """
    n_features = 4 * n_classes
    generator = make_generator(family, n_classes, n_features, concept=0, seed=seed)
    positions = _drift_schedule(n_instances, n_drifts)
    schedule = [(0, 0)] + [(pos, i + 1) for i, pos in enumerate(positions)]
    _, speed = ARTIFICIAL_FAMILIES[family.lower()]
    if drift_width is None:
        drift_width = 1 if speed == "sudden" else max(1, n_instances // 20)
    profile = DynamicImbalance(
        n_classes=n_classes,
        min_ratio=max(1.0, max_imbalance_ratio / 4.0),
        max_ratio=max_imbalance_ratio,
        period=max(2, n_instances // 2),
    )
    # Imbalance is applied first and the drift schedule on top, so drift
    # positions are expressed in emitted-instance coordinates.
    imbalanced = ImbalancedStream(generator, profile, seed=seed + 2)
    stream = ConceptScheduleStream(imbalanced, schedule, seed=seed + 1)
    name = f"{family.capitalize()}{n_classes}"
    return ScenarioStream(
        stream=stream,
        drift_points=list(positions),
        drifted_classes=[None] * len(positions),
        name=name,
        n_instances=n_instances,
        profile=profile,
        metadata={"family": family, "drift_speed": speed, "seed": seed},
    )


def scenario_global_drift(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 1: global drift + dynamic IR, static class roles."""
    scenario = make_artificial_stream(
        family=family,
        n_classes=n_classes,
        n_instances=n_instances,
        n_drifts=n_drifts,
        max_imbalance_ratio=max_imbalance_ratio,
        seed=seed,
    )
    scenario.name = f"scenario1-{scenario.name}"
    scenario.metadata["scenario"] = 1
    return scenario


def scenario_role_switching(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 2: global drift + dynamic IR + class-role switching."""
    n_features = 4 * n_classes
    generator = make_generator(family, n_classes, n_features, concept=0, seed=seed)
    positions = _drift_schedule(n_instances, n_drifts)
    schedule = [(0, 0)] + [(pos, i + 1) for i, pos in enumerate(positions)]
    profile = RoleSwitchingImbalance(
        n_classes=n_classes,
        min_ratio=max(1.0, max_imbalance_ratio / 4.0),
        max_ratio=max_imbalance_ratio,
        period=max(2, n_instances // 2),
        switch_period=max(1, n_instances // (n_drifts + 1)),
    )
    imbalanced = ImbalancedStream(generator, profile, seed=seed + 2)
    stream = ConceptScheduleStream(imbalanced, schedule, seed=seed + 1)
    return ScenarioStream(
        stream=stream,
        drift_points=list(positions),
        drifted_classes=[None] * len(positions),
        name=f"scenario2-{family.capitalize()}{n_classes}",
        n_instances=n_instances,
        profile=profile,
        metadata={"family": family, "scenario": 2, "seed": seed},
    )


def scenario_local_drift(
    family: str = "rbf",
    n_classes: int = 5,
    n_drifted_classes: int = 1,
    n_instances: int = 20_000,
    max_imbalance_ratio: float = 100.0,
    role_switching: bool = True,
    drift_position: int | None = None,
    drift_width: int = 1,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 3: local drift on the smallest classes + dynamic IR (+ roles).

    Following the paper's drift-injection protocol for Experiment 2, the drift
    affects the ``n_drifted_classes`` *smallest* classes (largest class index
    under the geometric prior used by the imbalance profiles).
    """
    if not 1 <= n_drifted_classes <= n_classes:
        raise ValueError("n_drifted_classes must be in [1, n_classes]")
    n_features = 4 * n_classes
    if drift_position is None:
        drift_position = n_instances // 2

    def factory(concept: int) -> DataStream:
        return make_generator(family, n_classes, n_features, concept, seed)

    # Smallest classes have the highest indices under geometric_priors.
    drifted = list(range(n_classes - n_drifted_classes, n_classes))
    local = LocalDriftStream(
        generator_factory=factory,
        old_concept=0,
        new_concept=1,
        drifted_classes=drifted,
        position=drift_position,
        width=drift_width,
        seed=seed + 1,
    )
    profile: ImbalanceProfile
    if role_switching:
        profile = RoleSwitchingImbalance(
            n_classes=n_classes,
            min_ratio=max(1.0, max_imbalance_ratio / 4.0),
            max_ratio=max_imbalance_ratio,
            period=max(2, n_instances // 2),
            switch_period=max(1, n_instances // 3),
        )
    else:
        profile = StaticImbalance(n_classes, max_imbalance_ratio)
    stream = ImbalancedStream(local, profile, seed=seed + 2)
    return ScenarioStream(
        stream=stream,
        drift_points=[drift_position],
        drifted_classes=[drifted],
        name=f"scenario3-{family.capitalize()}{n_classes}-k{n_drifted_classes}",
        n_instances=n_instances,
        profile=profile,
        metadata={
            "family": family,
            "scenario": 3,
            "n_drifted_classes": n_drifted_classes,
            "seed": seed,
        },
    )
