"""Benchmark scenario builders: the paper's taxonomy plus six new families.

The paper (Section IV) defines three scenarios of increasing difficulty;
this module grows the taxonomy to nine families, all expressed as
declarative :class:`~repro.streams.schedule.Schedule`\\ s and executed by the
:class:`~repro.streams.schedule.ScheduledStream` engine (batch-first, seeded,
exact emitted-coordinate ground truth):

* **Scenario 1** — global real concept drift + dynamic imbalance ratio, class
  roles fixed;
* **Scenario 2** — Scenario 1 plus changing class roles (minority becomes
  majority and vice versa);
* **Scenario 3** — local concept drift (only a chosen subset of classes is
  affected) + dynamic imbalance ratio + changing class roles;
* **Scenario 4** — recurring drift: concepts reappear cyclically while class
  roles keep switching;
* **Scenario 5** — gradual mixture drift under *extreme* static imbalance;
* **Scenario 6** — class arrival/removal: the smallest class joins the stream
  mid-run and the majority class later disappears (prior drift);
* **Scenario 7** — feature drift only (virtual drift): a deterministic
  feature-space shift with unchanged concept;
* **Scenario 8** — label-noise burst: a bounded interval of uniformly flipped
  labels on an otherwise stationary stream;
* **Scenario 9** — adversarial blip: a short transient concept excursion that
  detectors should *not* flag (alarms score as false positives).

Each builder returns a :class:`ScenarioStream` bundling the composed stream,
the ground-truth drift positions, and the classes affected by each drift —
everything the evaluation harness needs to score detectors.

The module also provides :func:`make_artificial_stream`, the factory behind
the paper's 12 artificial benchmarks (Aggrawal/Hyperplane/RBF/RandomTree ×
{5, 10, 20} classes) with the drift speeds listed in Table I, and the
:data:`SCENARIO_BUILDERS` registry consumed by :mod:`repro.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.streams.base import DataStream
from repro.streams.imbalance import (
    DynamicImbalance,
    ImbalanceProfile,
    RoleSwitchingImbalance,
    StaticImbalance,
)
from repro.streams.generators import (
    AgrawalGenerator,
    HyperplaneGenerator,
    RandomRBFGenerator,
    RandomTreeGenerator,
)
from repro.streams.schedule import DriftEvent, Schedule, ScheduledStream, Segment

__all__ = [
    "ScenarioStream",
    "ARTIFICIAL_FAMILIES",
    "SCENARIO_BUILDERS",
    "make_generator",
    "make_artificial_stream",
    "build_scenario_stream",
    "scenario_global_drift",
    "scenario_role_switching",
    "scenario_local_drift",
    "scenario_recurring_drift",
    "scenario_gradual_mixture",
    "scenario_class_arrival",
    "scenario_feature_drift",
    "scenario_label_noise",
    "scenario_blip",
]

#: Family name -> (generator class, drift speed reported in Table I).
ARTIFICIAL_FAMILIES: dict[str, tuple[type, str]] = {
    "agrawal": (AgrawalGenerator, "incremental"),
    "hyperplane": (HyperplaneGenerator, "gradual"),
    "rbf": (RandomRBFGenerator, "sudden"),
    "randomtree": (RandomTreeGenerator, "sudden"),
}


@dataclass
class ScenarioStream:
    """A composed benchmark stream plus its ground truth.

    Attributes
    ----------
    stream:
        The stream to iterate over in the prequential harness.
    drift_points:
        Instance indices at which the scenario's ground-truth changes start
        (real drifts for scenarios 1-5, prior/virtual/noise changes for
        scenarios 6-8, empty for the blip stressor).
    drifted_classes:
        For each drift point, the classes affected (``None`` = all classes).
    name:
        Human-readable benchmark name.
    n_instances:
        Recommended evaluation length.
    events:
        Full typed ground truth (:class:`~repro.streams.schedule.DriftEvent`
        list) when the stream was built by the schedule engine.
    """

    stream: DataStream
    drift_points: list[int]
    drifted_classes: list[list[int] | None]
    name: str
    n_instances: int
    profile: ImbalanceProfile | None = None
    metadata: dict = field(default_factory=dict)
    events: list[DriftEvent] = field(default_factory=list)

    @property
    def n_classes(self) -> int:
        return self.stream.n_classes

    @property
    def n_features(self) -> int:
        return self.stream.n_features


def make_generator(
    family: str, n_classes: int, n_features: int, concept: int, seed: int | None
) -> DataStream:
    """Instantiate one of the paper's artificial generators on a given concept."""
    key = family.lower()
    if key not in ARTIFICIAL_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; expected one of {sorted(ARTIFICIAL_FAMILIES)}"
        )
    generator_cls, drift_speed = ARTIFICIAL_FAMILIES[key]
    kwargs = dict(
        n_classes=n_classes, n_features=n_features, concept=concept, seed=seed
    )
    if generator_cls is HyperplaneGenerator and drift_speed == "gradual":
        kwargs["mag_change"] = 0.0
    return generator_cls(**kwargs)


def _drift_schedule(n_instances: int, n_drifts: int) -> list[int]:
    """Evenly spaced drift positions, never at the very start or end."""
    if n_drifts <= 0:
        return []
    spacing = n_instances // (n_drifts + 1)
    return [spacing * (i + 1) for i in range(n_drifts)]


def _family_factory(
    family: str, n_classes: int, seed: int
) -> Callable[[int], DataStream]:
    """Concept factory for one artificial family (4 features per class)."""
    n_features = 4 * n_classes

    def factory(concept: int) -> DataStream:
        return make_generator(family, n_classes, n_features, concept, seed)

    return factory


def _sweep_segments(
    n_instances: int, positions: list[int], transition: str, width: int
) -> list[Segment]:
    """Segments for concepts ``0..len(positions)`` switching at ``positions``."""
    boundaries = [0] + list(positions) + [n_instances]
    return [
        Segment(
            length=boundaries[i + 1] - boundaries[i],
            concept=i,
            transition=transition,
            width=width if i else 0,
        )
        for i in range(len(boundaries) - 1)
    ]


def _dynamic_profile(
    n_classes: int, max_imbalance_ratio: float, n_instances: int
) -> DynamicImbalance:
    return DynamicImbalance(
        n_classes=n_classes,
        min_ratio=max(1.0, max_imbalance_ratio / 4.0),
        max_ratio=max_imbalance_ratio,
        period=max(2, n_instances // 2),
    )


def _role_profile(
    n_classes: int,
    max_imbalance_ratio: float,
    n_instances: int,
    switch_period: int,
) -> RoleSwitchingImbalance:
    return RoleSwitchingImbalance(
        n_classes=n_classes,
        min_ratio=max(1.0, max_imbalance_ratio / 4.0),
        max_ratio=max_imbalance_ratio,
        period=max(2, n_instances // 2),
        switch_period=max(1, switch_period),
    )


def _scenario(
    schedule: Schedule,
    family: str,
    n_classes: int,
    n_instances: int,
    profile: ImbalanceProfile | None,
    seed: int,
    name: str,
    ground_truth_kind: str = "real",
    drift_points: list[int] | None = None,
    drifted_classes: list[list[int] | None] | None = None,
    metadata: dict | None = None,
) -> ScenarioStream:
    """Execute a schedule for one artificial family and bundle its ground truth.

    ``ground_truth_kind`` selects which event kind forms the family's drift
    ground truth (``"real"`` for concept drifts; ``"prior"`` / ``"virtual"``
    / ``"noise"`` for the families whose change points are not concept
    drifts).  Explicit ``drift_points`` / ``drifted_classes`` override (e.g.
    the blip stressor's deliberately empty ground truth).
    """
    stream = ScheduledStream(
        _family_factory(family, n_classes, seed),
        schedule,
        imbalance=profile,
        seed=seed + 2,
        name=name,
    )
    relevant = [e for e in stream.events if e.kind == ground_truth_kind]
    if drift_points is None:
        drift_points = [e.position for e in relevant]
    if drifted_classes is None:
        drifted_classes = [
            list(e.classes) if e.classes is not None else None for e in relevant
        ]
    return ScenarioStream(
        stream=stream,
        drift_points=drift_points,
        drifted_classes=drifted_classes,
        name=name,
        n_instances=n_instances,
        profile=profile,
        metadata={"family": family, "seed": seed, **(metadata or {})},
        events=stream.events,
    )


def make_artificial_stream(
    family: str,
    n_classes: int,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    drift_width: int | None = None,
    seed: int = 0,
) -> ScenarioStream:
    """Build one of the paper's artificial benchmarks (Table I, bottom half).

    The stream has ``4 * n_classes`` features (matching the paper's 20/40/80
    features for 5/10/20 classes), evenly spaced global concept drifts of the
    family's characteristic speed (sudden for RBF/RandomTree, gradual for
    Hyperplane, incremental for Agrawal), and a dynamic imbalance ratio
    oscillating between 1/4 of the maximum and the maximum.
    """
    _, speed = ARTIFICIAL_FAMILIES[family.lower()]
    if drift_width is None:
        drift_width = 1 if speed == "sudden" else max(1, n_instances // 20)
    positions = _drift_schedule(n_instances, n_drifts)
    schedule = Schedule.of(
        *_sweep_segments(
            n_instances,
            positions,
            transition=speed,
            width=0 if speed == "sudden" else drift_width,
        )
    )
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=_dynamic_profile(n_classes, max_imbalance_ratio, n_instances),
        seed=seed,
        name=f"{family.capitalize()}{n_classes}",
        metadata={"drift_speed": speed},
    )


def scenario_global_drift(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 1: global drift + dynamic IR, static class roles."""
    scenario = make_artificial_stream(
        family=family,
        n_classes=n_classes,
        n_instances=n_instances,
        n_drifts=n_drifts,
        max_imbalance_ratio=max_imbalance_ratio,
        seed=seed,
    )
    scenario.name = f"scenario1-{scenario.name}"
    scenario.metadata["scenario"] = 1
    return scenario


def scenario_role_switching(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 2: global drift + dynamic IR + class-role switching."""
    _, speed = ARTIFICIAL_FAMILIES[family.lower()]
    width = 0 if speed == "sudden" else max(1, n_instances // 20)
    positions = _drift_schedule(n_instances, n_drifts)
    schedule = Schedule.of(
        *_sweep_segments(n_instances, positions, transition=speed, width=width)
    )
    profile = _role_profile(
        n_classes,
        max_imbalance_ratio,
        n_instances,
        switch_period=n_instances // (n_drifts + 1),
    )
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario2-{family.capitalize()}{n_classes}",
        metadata={"scenario": 2, "drift_speed": speed},
    )


def scenario_local_drift(
    family: str = "rbf",
    n_classes: int = 5,
    n_drifted_classes: int = 1,
    n_instances: int = 20_000,
    max_imbalance_ratio: float = 100.0,
    role_switching: bool = True,
    drift_position: int | None = None,
    drift_width: int = 1,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 3: local drift on the smallest classes + dynamic IR (+ roles).

    Following the paper's drift-injection protocol for Experiment 2, the drift
    affects the ``n_drifted_classes`` *smallest* classes (largest class index
    under the geometric prior used by the imbalance profiles).  The schedule
    engine keeps non-drifted classes on the old concept and — unlike the
    retired wrapper composition — places the drift at the *emitted* stream
    position, so the declared ground truth is exact.
    """
    if not 1 <= n_drifted_classes <= n_classes:
        raise ValueError("n_drifted_classes must be in [1, n_classes]")
    if drift_position is None:
        drift_position = n_instances // 2
    # Smallest classes have the highest indices under geometric_priors.
    drifted = tuple(range(n_classes - n_drifted_classes, n_classes))
    schedule = Schedule.of(
        Segment(length=drift_position, concept=0),
        Segment(
            length=max(1, n_instances - drift_position),
            concept=1,
            transition="gradual",
            width=max(1, drift_width),
            drifted_classes=drifted,
        ),
    )
    profile: ImbalanceProfile
    if role_switching:
        profile = _role_profile(
            n_classes, max_imbalance_ratio, n_instances, switch_period=n_instances // 3
        )
    else:
        profile = StaticImbalance(n_classes, max_imbalance_ratio)
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario3-{family.capitalize()}{n_classes}-k{n_drifted_classes}",
        metadata={"scenario": 3, "n_drifted_classes": n_drifted_classes},
    )


def scenario_recurring_drift(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
    concepts: tuple[int, ...] = (0, 1),
) -> ScenarioStream:
    """Scenario 4: recurring drift + class-role switching.

    Concepts reappear cyclically every period — a detector that resets its
    model on every alarm keeps relearning concepts it has already seen —
    while the imbalance profile keeps rotating class roles.
    """
    period = max(1, n_instances // (n_drifts + 1))
    schedule = Schedule.recurring(concepts, period, n_drifts + 1)
    profile = _role_profile(
        n_classes, max_imbalance_ratio, n_instances, switch_period=period
    )
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario4-{family.capitalize()}{n_classes}",
        metadata={"scenario": 4, "period": period, "concepts": list(concepts)},
    )


def scenario_gradual_mixture(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    n_drifts: int = 3,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 5: gradual mixture drifts under extreme static imbalance.

    Every transition is a long probabilistic mixture window (half the
    inter-drift spacing) and the imbalance ratio is pinned at the maximum the
    whole time, so minority-class evidence for each drift is extremely sparse.
    """
    positions = _drift_schedule(n_instances, n_drifts)
    spacing = n_instances // (n_drifts + 1) if n_drifts else n_instances
    schedule = Schedule.of(
        *_sweep_segments(
            n_instances, positions, transition="gradual", width=max(1, spacing // 2)
        )
    )
    profile = StaticImbalance(n_classes, max_imbalance_ratio)
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario5-{family.capitalize()}{n_classes}",
        metadata={"scenario": 5, "mixture_width": max(1, spacing // 2)},
    )


def scenario_class_arrival(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
) -> ScenarioStream:
    """Scenario 6: class arrival and removal (prior drift), concept fixed.

    The smallest class is absent at the start and *arrives* a third of the way
    in; the majority class is *removed* at two thirds.  Class-conditional
    distributions never change — only the prior — which stresses detectors
    that key on raw error rates.
    """
    if n_classes < 3:
        raise ValueError("scenario 6 needs n_classes >= 3")
    everyone = tuple(range(n_classes))
    t_arrive, t_remove = n_instances // 3, 2 * n_instances // 3
    schedule = Schedule.of(
        Segment(length=t_arrive, concept=0, active_classes=everyone[:-1]),
        Segment(length=t_remove - t_arrive, active_classes=everyone),
        Segment(length=max(1, n_instances - t_remove), active_classes=everyone[1:]),
    )
    profile = _dynamic_profile(n_classes, max_imbalance_ratio, n_instances)
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario6-{family.capitalize()}{n_classes}",
        ground_truth_kind="prior",
        metadata={"scenario": 6, "kind": "prior"},
    )


def scenario_feature_drift(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
    shift_magnitude: float = 0.5,
) -> ScenarioStream:
    """Scenario 7: feature drift only (virtual drift).

    At the midpoint the feature space starts sliding along a fixed seeded
    direction, ramping to ``shift_magnitude`` over a tenth of the stream; the
    concept (labelling function on the *original* space) never changes.
    """
    midpoint = n_instances // 2
    schedule = Schedule.of(
        Segment(length=midpoint, concept=0),
        Segment(
            length=max(1, n_instances - midpoint),
            feature_shift=shift_magnitude,
            width=max(1, n_instances // 10),
        ),
    )
    profile = _dynamic_profile(n_classes, max_imbalance_ratio, n_instances)
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario7-{family.capitalize()}{n_classes}",
        ground_truth_kind="virtual",
        metadata={"scenario": 7, "kind": "virtual", "shift_magnitude": shift_magnitude},
    )


def scenario_label_noise(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
    noise_rate: float = 0.25,
) -> ScenarioStream:
    """Scenario 8: label-noise burst on an otherwise stationary stream.

    A sixth of the stream (starting at one third) has ``noise_rate`` of its
    labels flipped uniformly to another class; before and after, the stream
    is clean.  Both edges of the burst are ground-truth change points (the
    error rate jumps at the start and drops back at the end).
    """
    t_start = n_instances // 3
    burst = max(1, n_instances // 6)
    schedule = Schedule.of(
        Segment(length=t_start, concept=0),
        Segment(length=burst, label_noise=noise_rate),
        Segment(length=max(1, n_instances - t_start - burst)),
    )
    profile = _dynamic_profile(n_classes, max_imbalance_ratio, n_instances)
    return _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario8-{family.capitalize()}{n_classes}",
        ground_truth_kind="noise",
        metadata={
            "scenario": 8,
            "kind": "noise",
            "noise_rate": noise_rate,
            "burst": [t_start, t_start + burst],
        },
    )


def scenario_blip(
    family: str = "rbf",
    n_classes: int = 5,
    n_instances: int = 20_000,
    max_imbalance_ratio: float = 100.0,
    seed: int = 0,
    blip_length: int | None = None,
) -> ScenarioStream:
    """Scenario 9: adversarial blip / false-alarm stressor.

    A short transient excursion to a different concept at the midpoint,
    immediately reverting.  The ground-truth drift list is *empty*: a robust
    detector should ride the blip out, and any alarm scores as a false
    positive (the blip window is recorded in the metadata for analysis).
    """
    if blip_length is None:
        blip_length = max(50, n_instances // 100)
    midpoint = n_instances // 2
    schedule = Schedule.of(
        Segment(length=midpoint, concept=0),
        Segment(length=blip_length, concept=1, blip=True),
        Segment(length=max(1, n_instances - midpoint - blip_length), concept=0),
    )
    profile = _dynamic_profile(n_classes, max_imbalance_ratio, n_instances)
    scenario = _scenario(
        schedule,
        family,
        n_classes,
        n_instances,
        profile=profile,
        seed=seed,
        name=f"scenario9-{family.capitalize()}{n_classes}",
        drift_points=[],
        drifted_classes=[],
        metadata={
            "scenario": 9,
            "kind": "blip",
            "blips": [[midpoint, midpoint + blip_length]],
        },
    )
    return scenario


#: Scenario id -> builder, the registry behind the protocol's scenario axis.
SCENARIO_BUILDERS: dict[int, Callable[..., ScenarioStream]] = {
    1: scenario_global_drift,
    2: scenario_role_switching,
    3: scenario_local_drift,
    4: scenario_recurring_drift,
    5: scenario_gradual_mixture,
    6: scenario_class_arrival,
    7: scenario_feature_drift,
    8: scenario_label_noise,
    9: scenario_blip,
}

#: Builders whose uniform signature includes ``n_drifts``.
_TAKES_N_DRIFTS = frozenset({1, 2, 4, 5})


def build_scenario_stream(
    scenario: int,
    family: str,
    n_classes: int,
    n_instances: int,
    n_drifts: int,
    max_imbalance_ratio: float,
    seed: int,
) -> ScenarioStream:
    """Build any registered scenario family with the protocol's uniform axes."""
    try:
        scenario = int(scenario)
        builder = SCENARIO_BUILDERS[scenario]
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"unknown scenario {scenario!r}; expected one of "
            f"{sorted(SCENARIO_BUILDERS)}"
        ) from None
    kwargs = dict(
        family=family,
        n_classes=n_classes,
        n_instances=n_instances,
        max_imbalance_ratio=max_imbalance_ratio,
        seed=seed,
    )
    if scenario in _TAKES_N_DRIFTS:
        kwargs["n_drifts"] = n_drifts
    return builder(**kwargs)
