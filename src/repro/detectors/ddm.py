"""Drift Detection Method (DDM), Gama et al. 2004.

DDM monitors the classifier's online error rate ``p_t`` and its standard
deviation ``s_t = sqrt(p_t (1 - p_t) / t)``.  The minimum of ``p + s`` over the
current concept is remembered; a warning is raised when
``p_t + s_t >= p_min + warning_level * s_min`` and a drift when the same
exceeds the ``drift_level`` multiple.

Both the scalar path and the batch kernel derive ``p_t`` from the (exact,
integer-valued) running error count, so ``step_batch`` is bit-identical to
stepping per instance for any chunking of the stream.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.windows import gather_tracked, running_totals, tracked_weak_min
from repro.detectors.base import ErrorRateDetector

__all__ = ["DDM"]


class DDM(ErrorRateDetector):
    """Classic DDM with configurable warning/drift sigma multipliers.

    Parameters
    ----------
    min_num_instances:
        Number of observations required before the test activates.
    warning_level, drift_level:
        Multiples of the minimum standard deviation that trigger the warning
        and drift states (2 and 3 in the original paper).
    """

    def __init__(
        self,
        min_num_instances: int = 30,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
    ) -> None:
        super().__init__()
        if min_num_instances < 1:
            raise ValueError("min_num_instances must be >= 1")
        if drift_level <= warning_level:
            raise ValueError("drift_level must exceed warning_level")
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._reset_concept()

    def clone_params(self) -> dict:
        """Constructor kwargs reproducing this detector's configuration."""
        return dict(
            min_num_instances=self._min_num_instances,
            warning_level=self._warning_level,
            drift_level=self._drift_level,
        )

    def _reset_concept(self) -> None:
        self._sample_count = 0
        self._error_sum = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        error = 1.0 if value > 0.5 else 0.0
        self._sample_count += 1
        count = self._sample_count
        self._error_sum += error
        p = self._error_sum / count
        s = math.sqrt(p * (1.0 - p) / count)

        if count < self._min_num_instances:
            return
        if p <= 0.0:
            # No errors observed yet: the reference statistics would collapse
            # to zero and any first error would trigger a spurious drift.
            return

        if p + s <= self._ps_min:
            self._p_min = p
            self._s_min = s
            self._ps_min = p + s

        if p + s >= self._p_min + self._drift_level * self._s_min:
            self._in_drift = True
            self._in_warning = False
            self._reset_concept()
        elif p + s >= self._p_min + self._warning_level * self._s_min:
            self._in_warning = True

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(np.where(errors > 0.5, 1.0, 0.0))

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        """Process elements of the current concept until drift or exhaustion.

        Returns ``(elements consumed, last element drifted, last element in
        warning)``.  On drift the concept statistics are reset (as in
        :meth:`add_element`); otherwise the state is committed to the end of
        the segment.
        """
        k = errors.shape[0]
        counts = self._sample_count + np.arange(1, k + 1, dtype=np.int64)
        sums = running_totals(errors, self._error_sum)
        p = sums / counts
        s = np.sqrt(p * (1.0 - p) / counts)
        ps = p + s
        # The test (and the reference-minimum update) only runs once enough
        # instances accumulated and at least one error was seen; both
        # conditions are monotone, so the active region is a suffix.
        active = (counts >= self._min_num_instances) & (sums > 0.0)
        first_active = int(np.argmax(active)) if active.any() else k
        if first_active >= k:
            self._commit(counts[-1], sums[-1])
            return k, False, False

        ps_act = ps[first_active:]
        tracked = tracked_weak_min(ps_act, self._ps_min)
        p_min = gather_tracked(tracked, p[first_active:], self._p_min)
        s_min = gather_tracked(tracked, s[first_active:], self._s_min)
        drift = ps_act >= p_min + self._drift_level * s_min
        if drift.any():
            hit = int(np.argmax(drift))
            self._reset_concept()
            return first_active + hit + 1, True, False

        warning = ps_act >= p_min + self._warning_level * s_min
        self._commit(counts[-1], sums[-1])
        last = int(tracked[-1])
        if last >= 0:
            self._p_min = float(p[first_active + last])
            self._s_min = float(s[first_active + last])
            self._ps_min = float(ps[first_active + last])
        return k, False, bool(warning[-1])

    def _commit(self, count: int, error_sum: float) -> None:
        self._sample_count = int(count)
        self._error_sum = float(error_sum)
