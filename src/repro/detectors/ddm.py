"""Drift Detection Method (DDM), Gama et al. 2004.

DDM monitors the classifier's online error rate ``p_t`` and its standard
deviation ``s_t = sqrt(p_t (1 - p_t) / t)``.  The minimum of ``p + s`` over the
current concept is remembered; a warning is raised when
``p_t + s_t >= p_min + warning_level * s_min`` and a drift when the same
exceeds the ``drift_level`` multiple.
"""

from __future__ import annotations

import math

from repro.detectors.base import ErrorRateDetector

__all__ = ["DDM"]


class DDM(ErrorRateDetector):
    """Classic DDM with configurable warning/drift sigma multipliers.

    Parameters
    ----------
    min_num_instances:
        Number of observations required before the test activates.
    warning_level, drift_level:
        Multiples of the minimum standard deviation that trigger the warning
        and drift states (2 and 3 in the original paper).
    """

    def __init__(
        self,
        min_num_instances: int = 30,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
    ) -> None:
        super().__init__()
        if min_num_instances < 1:
            raise ValueError("min_num_instances must be >= 1")
        if drift_level <= warning_level:
            raise ValueError("drift_level must exceed warning_level")
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._sample_count = 0
        self._error_rate = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        error = 1.0 if value > 0.5 else 0.0
        self._sample_count += 1
        count = self._sample_count
        self._error_rate += (error - self._error_rate) / count
        p = self._error_rate
        s = math.sqrt(p * (1.0 - p) / count)

        if count < self._min_num_instances:
            return
        if p <= 0.0:
            # No errors observed yet: the reference statistics would collapse
            # to zero and any first error would trigger a spurious drift.
            return

        if p + s <= self._ps_min:
            self._p_min = p
            self._s_min = s
            self._ps_min = p + s

        if p + s >= self._p_min + self._drift_level * self._s_min:
            self._in_drift = True
            self._in_warning = False
            self._reset_concept()
        elif p + s >= self._p_min + self._warning_level * self._s_min:
            self._in_warning = True
