"""Reactive Drift Detection Method (RDDM), de Barros et al. 2017.

RDDM extends DDM with a pruning mechanism: when a concept grows beyond
``max_concept_size`` instances, the oldest ones are discarded and the DDM
statistics are recomputed over the most recent ``min_size_stable_concept``
instances, which restores sensitivity on long stable concepts.  A bounded
number of consecutive warnings (``warning_limit``) also forces a drift,
keeping reaction times short.

Error statistics are exact integer sums, shared between the scalar path and
the batch kernel (the rebuild after pruning replays the retained errors
through the same vectorized minimum tracker), so ``step_batch`` is
bit-identical to per-instance stepping.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.core.windows import (
    consecutive_true_runs,
    gather_tracked,
    running_totals,
    tracked_weak_min,
)
from repro.detectors.base import ErrorRateDetector

__all__ = ["RDDM"]


class RDDM(ErrorRateDetector):
    """Reactive DDM with instance pruning and a warning limit.

    Parameters
    ----------
    min_num_instances:
        Observations required before testing starts.
    warning_level, drift_level:
        Sigma multipliers, as in DDM (named ``alpha_w`` / ``alpha_d``-style
        thresholds in the paper's Table II grid).
    max_concept_size:
        Maximum number of stored instances before pruning triggers.
    min_size_stable_concept:
        Number of recent instances kept after pruning.
    warning_limit:
        Maximum number of consecutive warning states before a drift is forced.
    """

    def __init__(
        self,
        min_num_instances: int = 129,
        warning_level: float = 1.773,
        drift_level: float = 2.258,
        max_concept_size: int = 40_000,
        min_size_stable_concept: int = 7_000,
        warning_limit: int = 1_400,
    ) -> None:
        super().__init__()
        if drift_level <= warning_level:
            raise ValueError("drift_level must exceed warning_level")
        if min_size_stable_concept >= max_concept_size:
            raise ValueError("min_size_stable_concept must be < max_concept_size")
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._max_concept_size = max_concept_size
        self._min_size_stable = min_size_stable_concept
        self._warning_limit = warning_limit
        self._stored_errors: deque[float] = deque(maxlen=max_concept_size)
        self._reset_concept(clear_storage=True)

    def clone_params(self) -> dict:
        """Constructor kwargs reproducing this detector's configuration."""
        return dict(
            min_num_instances=self._min_num_instances,
            warning_level=self._warning_level,
            drift_level=self._drift_level,
            max_concept_size=self._max_concept_size,
            min_size_stable_concept=self._min_size_stable,
            warning_limit=self._warning_limit,
        )

    def _reset_concept(self, clear_storage: bool) -> None:
        self._sample_count = 0
        self._error_sum = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf
        self._warning_count = 0
        if clear_storage:
            self._stored_errors.clear()

    def reset(self) -> None:
        super().reset()
        self._reset_concept(clear_storage=True)

    def _rebuild_from_recent(self) -> None:
        """Recompute statistics from the last ``min_size_stable`` errors.

        The replay is vectorized through the same weak-minimum tracker the
        batch kernel uses, which is value-identical to re-ingesting the
        errors one at a time.
        """
        recent = np.asarray(self._stored_errors, dtype=np.float64)[
            -self._min_size_stable :
        ]
        self._reset_concept(clear_storage=True)
        self._stored_errors.extend(recent.tolist())
        if recent.shape[0] == 0:
            return
        counts = np.arange(1, recent.shape[0] + 1, dtype=np.int64)
        sums = running_totals(recent)
        p = sums / counts
        s = np.sqrt(p * (1.0 - p) / counts)
        active = (counts >= self._min_num_instances) & (sums > 0.0)
        self._sample_count = int(counts[-1])
        self._error_sum = float(sums[-1])
        if active.any():
            first = int(np.argmax(active))
            tracked = tracked_weak_min((p + s)[first:], math.inf)
            last = int(tracked[-1])
            if last >= 0:
                self._p_min = float(p[first + last])
                self._s_min = float(s[first + last])
                self._ps_min = float((p + s)[first + last])

    def _ingest(self, error: float) -> None:
        self._sample_count += 1
        count = self._sample_count
        self._error_sum += error
        p = self._error_sum / count
        s = math.sqrt(p * (1.0 - p) / count)
        if count >= self._min_num_instances and p > 0.0 and p + s <= self._ps_min:
            self._p_min = p
            self._s_min = s
            self._ps_min = p + s

    def add_element(self, value: float) -> None:
        error = 1.0 if value > 0.5 else 0.0
        self._stored_errors.append(error)
        self._ingest(error)

        if self._sample_count > self._max_concept_size:
            self._rebuild_from_recent()

        self._test_current()

    def _test_current(self) -> None:
        """Run the drift/warning test against the current statistics."""
        count = self._sample_count
        if count < self._min_num_instances:
            return
        p = self._error_sum / count
        if p <= 0.0 or math.isinf(self._ps_min):
            return
        s = math.sqrt(p * (1.0 - p) / count)

        if p + s >= self._p_min + self._drift_level * self._s_min:
            self._in_drift = True
            self._in_warning = False
            self._reset_concept(clear_storage=True)
            return

        if p + s >= self._p_min + self._warning_level * self._s_min:
            self._warning_count += 1
            if self._warning_count >= self._warning_limit:
                self._in_drift = True
                self._in_warning = False
                self._reset_concept(clear_storage=True)
            else:
                self._in_warning = True
        else:
            self._warning_count = 0

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(np.where(errors > 0.5, 1.0, 0.0))

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        counts = self._sample_count + np.arange(1, k + 1, dtype=np.int64)
        # Pruning triggers when the concept outgrows max_concept_size; the
        # vectorized scan stops just before and the trigger element is
        # replayed through the scalar path (ingest -> rebuild -> test).
        over = counts > self._max_concept_size
        prune_at = int(np.argmax(over)) if over.any() else k
        if prune_at == 0:
            self._in_drift = False
            self._in_warning = False
            error = float(errors[0])
            self._stored_errors.append(error)
            self._ingest(error)
            self._rebuild_from_recent()
            self._test_current()
            return 1, self._in_drift, self._in_warning

        span = prune_at
        counts = counts[:span]
        sums = running_totals(errors[:span], self._error_sum)
        p = sums / counts
        s = np.sqrt(p * (1.0 - p) / counts)
        ps = p + s
        active = (counts >= self._min_num_instances) & (sums > 0.0)
        first_active = int(np.argmax(active)) if active.any() else span
        warning_last = False
        if first_active < span:
            ps_act = ps[first_active:]
            tracked = tracked_weak_min(ps_act, self._ps_min)
            p_min = gather_tracked(tracked, p[first_active:], self._p_min)
            s_min = gather_tracked(tracked, s[first_active:], self._s_min)
            drift = ps_act >= p_min + self._drift_level * s_min
            warning = ~drift & (ps_act >= p_min + self._warning_level * s_min)
            runs = consecutive_true_runs(warning, self._warning_count)
            forced = warning & (runs >= self._warning_limit)
            any_drift = drift | forced
            if any_drift.any():
                hit = first_active + int(np.argmax(any_drift))
                self._reset_concept(clear_storage=True)
                return hit + 1, True, False
            warning_last = bool(warning[-1])
            self._warning_count = int(runs[-1]) if warning_last else 0
            last = int(tracked[-1])
            if last >= 0:
                self._p_min = float(p[first_active + last])
                self._s_min = float(s[first_active + last])
                self._ps_min = float(ps[first_active + last])
        # Commit the un-drifted span; the stored-error log gains the span's
        # errors (deque maxlen evicts the oldest exactly as scalar appends).
        self._stored_errors.extend(errors[:span].tolist())
        self._sample_count = int(counts[-1])
        self._error_sum = float(sums[-1])
        if span < k:
            # The next element triggers pruning; consume it via the scalar
            # path so the rebuild + same-element test happen in order.
            self._in_drift = False
            self._in_warning = False
            error = float(errors[span])
            self._stored_errors.append(error)
            self._ingest(error)
            self._rebuild_from_recent()
            self._test_current()
            return span + 1, self._in_drift, self._in_warning
        return k, False, warning_last
