"""Reactive Drift Detection Method (RDDM), de Barros et al. 2017.

RDDM extends DDM with a pruning mechanism: when a concept grows beyond
``max_concept_size`` instances, the oldest ones are discarded and the DDM
statistics are recomputed over the most recent ``min_size_stable_concept``
instances, which restores sensitivity on long stable concepts.  A bounded
number of consecutive warnings (``warning_limit``) also forces a drift,
keeping reaction times short.
"""

from __future__ import annotations

import math
from collections import deque

from repro.detectors.base import ErrorRateDetector

__all__ = ["RDDM"]


class RDDM(ErrorRateDetector):
    """Reactive DDM with instance pruning and a warning limit.

    Parameters
    ----------
    min_num_instances:
        Observations required before testing starts.
    warning_level, drift_level:
        Sigma multipliers, as in DDM (named ``alpha_w`` / ``alpha_d``-style
        thresholds in the paper's Table II grid).
    max_concept_size:
        Maximum number of stored instances before pruning triggers.
    min_size_stable_concept:
        Number of recent instances kept after pruning.
    warning_limit:
        Maximum number of consecutive warning states before a drift is forced.
    """

    def __init__(
        self,
        min_num_instances: int = 129,
        warning_level: float = 1.773,
        drift_level: float = 2.258,
        max_concept_size: int = 40_000,
        min_size_stable_concept: int = 7_000,
        warning_limit: int = 1_400,
    ) -> None:
        super().__init__()
        if drift_level <= warning_level:
            raise ValueError("drift_level must exceed warning_level")
        if min_size_stable_concept >= max_concept_size:
            raise ValueError("min_size_stable_concept must be < max_concept_size")
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._max_concept_size = max_concept_size
        self._min_size_stable = min_size_stable_concept
        self._warning_limit = warning_limit
        self._stored_errors: deque[float] = deque(maxlen=max_concept_size)
        self._reset_concept(clear_storage=True)

    def _reset_concept(self, clear_storage: bool) -> None:
        self._sample_count = 0
        self._error_rate = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf
        self._warning_count = 0
        if clear_storage:
            self._stored_errors.clear()

    def reset(self) -> None:
        super().reset()
        self._reset_concept(clear_storage=True)

    def _rebuild_from_recent(self) -> None:
        """Recompute statistics from the last ``min_size_stable`` errors."""
        recent = list(self._stored_errors)[-self._min_size_stable :]
        self._reset_concept(clear_storage=True)
        self._stored_errors.extend(recent)
        for error in recent:
            self._ingest(error)

    def _ingest(self, error: float) -> None:
        self._sample_count += 1
        count = self._sample_count
        self._error_rate += (error - self._error_rate) / count
        p = self._error_rate
        s = math.sqrt(p * (1.0 - p) / count)
        if count >= self._min_num_instances and p > 0.0 and p + s <= self._ps_min:
            self._p_min = p
            self._s_min = s
            self._ps_min = p + s

    def add_element(self, value: float) -> None:
        error = 1.0 if value > 0.5 else 0.0
        self._stored_errors.append(error)
        self._ingest(error)
        count = self._sample_count

        if count > self._max_concept_size:
            self._rebuild_from_recent()
            count = self._sample_count

        if count < self._min_num_instances:
            return

        p = self._error_rate
        if p <= 0.0 or math.isinf(self._ps_min):
            return
        s = math.sqrt(p * (1.0 - p) / count)

        if p + s >= self._p_min + self._drift_level * self._s_min:
            self._in_drift = True
            self._in_warning = False
            self._reset_concept(clear_storage=True)
            return

        if p + s >= self._p_min + self._warning_level * self._s_min:
            self._warning_count += 1
            if self._warning_count >= self._warning_limit:
                self._in_drift = True
                self._in_warning = False
                self._reset_concept(clear_storage=True)
            else:
                self._in_warning = True
        else:
            self._warning_count = 0
