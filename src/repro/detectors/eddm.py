"""Early Drift Detection Method (EDDM), Baena-Garcia et al. 2006.

Instead of the error rate, EDDM monitors the average distance (in number of
instances) between consecutive misclassifications.  A shrinking distance means
errors are becoming denser, i.e. the concept is changing.  The ratio
``(p' + 2 s') / (p'_max + 2 s'_max)`` is compared against the warning
(``alpha``) and drift (``beta``) thresholds.

Distances are integers, so both paths track exact sums of distances and
squared distances; the batch kernel evaluates the same expressions over
cumulative sums and is bit-identical to per-instance stepping.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.windows import running_totals, strict_prefix_max_exclusive
from repro.detectors.base import ErrorRateDetector

__all__ = ["EDDM"]


class EDDM(ErrorRateDetector):
    """Early Drift Detection Method.

    Parameters
    ----------
    alpha:
        Warning threshold on the normalised distance statistic (default 0.95).
    beta:
        Drift threshold (default 0.90); must be below ``alpha``.
    min_num_errors:
        Number of misclassifications required before the test activates.
    """

    def __init__(
        self, alpha: float = 0.95, beta: float = 0.90, min_num_errors: int = 30
    ) -> None:
        super().__init__()
        if not 0.0 < beta < alpha <= 1.0:
            raise ValueError("require 0 < beta < alpha <= 1")
        self._alpha = alpha
        self._beta = beta
        self._min_num_errors = min_num_errors
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._instance_index = 0
        self._last_error_index = 0
        self._error_count = 0
        self._dist_sum = 0.0
        self._dist_sq_sum = 0.0
        self._max_stat = -math.inf

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    @staticmethod
    def _stat(dist_sum, dist_sq_sum, count):
        """``mean + 2 std`` of the error distances (array- or scalar-valued)."""
        mean = dist_sum / count
        std = np.sqrt(np.maximum(dist_sq_sum / count - mean * mean, 0.0))
        return mean + 2.0 * std

    def add_element(self, value: float) -> None:
        self._instance_index += 1
        if value <= 0.5:
            return
        # A misclassification occurred: update distance statistics.
        distance = self._instance_index - self._last_error_index
        self._last_error_index = self._instance_index
        self._error_count += 1
        count = self._error_count
        self._dist_sum += distance
        self._dist_sq_sum += distance * distance

        if count < self._min_num_errors:
            return

        stat = float(self._stat(self._dist_sum, self._dist_sq_sum, count))
        if stat > self._max_stat:
            self._max_stat = stat
            return
        if self._max_stat <= 0.0:
            return

        ratio = stat / self._max_stat
        if ratio < self._beta:
            self._in_drift = True
            self._in_warning = False
            self._reset_concept()
        elif ratio < self._alpha:
            self._in_warning = True

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(errors)

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        error_positions = np.flatnonzero(errors > 0.5)
        if error_positions.shape[0] == 0:
            self._instance_index += k
            return k, False, False

        # Global instance index of every misclassification, then integer
        # distances to the previous one (seeded with the stored last index).
        instance_index = self._instance_index + error_positions + 1
        distances = np.diff(instance_index, prepend=self._last_error_index).astype(
            np.float64
        )
        counts = self._error_count + np.arange(
            1, distances.shape[0] + 1, dtype=np.int64
        )
        dist_sums = running_totals(distances, self._dist_sum)
        dist_sq_sums = running_totals(distances * distances, self._dist_sq_sum)
        stats = self._stat(dist_sums, dist_sq_sums, counts)

        active = counts >= self._min_num_errors
        first_active = int(np.argmax(active)) if active.any() else counts.shape[0]
        drifted = False
        warning_last = False
        consumed = k
        if first_active < counts.shape[0]:
            stats_act = stats[first_active:]
            # Strictly-greater statistics update the reference maximum and
            # skip the test; others are tested against the prior maximum.
            max_excl = strict_prefix_max_exclusive(stats_act, self._max_stat)
            tested = (stats_act <= max_excl) & (max_excl > 0.0)
            with np.errstate(invalid="ignore", divide="ignore"):
                ratio = stats_act / max_excl
            drift = tested & (ratio < self._beta)
            if drift.any():
                hit = first_active + int(np.argmax(drift))
                self._reset_concept()
                return int(error_positions[hit]) + 1, True, False
            warning = tested & (ratio < self._alpha)
            warning_last = bool(warning[-1]) and int(error_positions[-1]) == k - 1
            self._max_stat = max(self._max_stat, float(stats_act.max()))
        # No drift: commit statistics to the end of the chunk.
        self._instance_index += k
        self._last_error_index = int(instance_index[-1])
        self._error_count = int(counts[-1])
        self._dist_sum = float(dist_sums[-1])
        self._dist_sq_sum = float(dist_sq_sums[-1])
        return consumed, drifted, warning_last
