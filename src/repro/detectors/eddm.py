"""Early Drift Detection Method (EDDM), Baena-Garcia et al. 2006.

Instead of the error rate, EDDM monitors the average distance (in number of
instances) between consecutive misclassifications.  A shrinking distance means
errors are becoming denser, i.e. the concept is changing.  The ratio
``(p' + 2 s') / (p'_max + 2 s'_max)`` is compared against the warning
(``alpha``) and drift (``beta``) thresholds.
"""

from __future__ import annotations

import math

from repro.detectors.base import ErrorRateDetector

__all__ = ["EDDM"]


class EDDM(ErrorRateDetector):
    """Early Drift Detection Method.

    Parameters
    ----------
    alpha:
        Warning threshold on the normalised distance statistic (default 0.95).
    beta:
        Drift threshold (default 0.90); must be below ``alpha``.
    min_num_errors:
        Number of misclassifications required before the test activates.
    """

    def __init__(
        self, alpha: float = 0.95, beta: float = 0.90, min_num_errors: int = 30
    ) -> None:
        super().__init__()
        if not 0.0 < beta < alpha <= 1.0:
            raise ValueError("require 0 < beta < alpha <= 1")
        self._alpha = alpha
        self._beta = beta
        self._min_num_errors = min_num_errors
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._instance_index = 0
        self._last_error_index = 0
        self._error_count = 0
        self._mean_distance = 0.0
        self._var_distance = 0.0  # running M2 for Welford
        self._max_stat = -math.inf

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        self._instance_index += 1
        if value <= 0.5:
            return
        # A misclassification occurred: update distance statistics.
        distance = self._instance_index - self._last_error_index
        self._last_error_index = self._instance_index
        self._error_count += 1
        count = self._error_count
        delta = distance - self._mean_distance
        self._mean_distance += delta / count
        self._var_distance += delta * (distance - self._mean_distance)

        if count < self._min_num_errors:
            return

        std = math.sqrt(self._var_distance / count)
        stat = self._mean_distance + 2.0 * std
        if stat > self._max_stat:
            self._max_stat = stat
            return
        if self._max_stat <= 0.0:
            return

        ratio = stat / self._max_stat
        if ratio < self._beta:
            self._in_drift = True
            self._in_warning = False
            self._reset_concept()
        elif ratio < self._alpha:
            self._in_warning = True
