"""Fast Hoeffding Drift Detection Method (FHDDM), Pesaranghader & Viktor 2016.

FHDDM slides a fixed-size window over the stream of prediction *correctness*
indicators (1 = correct).  It remembers the maximum windowed probability of a
correct prediction seen within the current concept and signals a drift when
the current windowed probability falls below that maximum by more than the
Hoeffding bound ``sqrt(ln(1/delta) / (2 n))``.

The window lives in a :class:`~repro.core.windows.RingWindow` whose
maintained sum is exact for the 0/1 indicator contents, so the scalar path is
O(1) per element and the batch kernel (rolling sums over the concatenated
window + chunk) is bit-identical to per-instance stepping.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.windows import RingWindow
from repro.detectors.base import ErrorRateDetector

__all__ = ["FHDDM"]


class FHDDM(ErrorRateDetector):
    """Fast Hoeffding drift detector over a sliding window of correctness bits.

    Parameters
    ----------
    window_size:
        Sliding window length ``n`` (25-100 in the paper's tuning grid).
    delta:
        Allowed error of the Hoeffding bound.
    """

    def __init__(self, window_size: int = 100, delta: float = 1e-6) -> None:
        super().__init__()
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        self._window_size = window_size
        self._delta = delta
        self._epsilon = math.sqrt(math.log(1.0 / delta) / (2.0 * window_size))
        self._reset_concept()

    def clone_params(self) -> dict:
        """Constructor kwargs reproducing this detector's configuration."""
        return dict(window_size=self._window_size, delta=self._delta)

    def _reset_concept(self) -> None:
        self._window = RingWindow(self._window_size)
        self._p_max = 0.0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    @property
    def epsilon(self) -> float:
        """The Hoeffding bound used by the drift test."""
        return self._epsilon

    def add_element(self, value: float) -> None:
        correct = 0.0 if value > 0.5 else 1.0
        self._window.append(correct)
        if len(self._window) < self._window_size:
            return
        p_current = self._window.sum / self._window_size
        if p_current > self._p_max:
            self._p_max = p_current
        if self._p_max - p_current > self._epsilon:
            self._in_drift = True
            self._reset_concept()

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(errors)

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        ws = self._window_size
        correct = np.where(errors > 0.5, 0.0, 1.0)
        stored = len(self._window)
        combined = np.concatenate([self._window.values(), correct])
        total = combined.shape[0]
        if total < ws:
            self._window.assign(combined)
            return k, False, False
        # Rolling window sums (exact: 0/1 contents) for every chunk element
        # whose arrival leaves the window full; the first such element is at
        # chunk index ws-1-stored (or 0 if the window was already full).
        full_start = max(0, ws - 1 - stored)
        csum = np.concatenate([[0.0], np.add.accumulate(combined)])
        ends = stored + np.arange(full_start, k, dtype=np.int64) + 1
        window_sums = csum[ends] - csum[ends - ws]
        p = window_sums / ws
        p_max = np.maximum(np.maximum.accumulate(p), self._p_max)
        drift = p_max - p > self._epsilon
        if drift.any():
            hit = int(np.argmax(drift))
            self._reset_concept()
            return full_start + hit + 1, True, False
        self._window.assign(combined)
        self._p_max = float(p_max[-1])
        return k, False, False
