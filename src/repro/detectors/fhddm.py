"""Fast Hoeffding Drift Detection Method (FHDDM), Pesaranghader & Viktor 2016.

FHDDM slides a fixed-size window over the stream of prediction *correctness*
indicators (1 = correct).  It remembers the maximum windowed probability of a
correct prediction seen within the current concept and signals a drift when
the current windowed probability falls below that maximum by more than the
Hoeffding bound ``sqrt(ln(1/delta) / (2 n))``.
"""

from __future__ import annotations

import math
from collections import deque

from repro.detectors.base import ErrorRateDetector

__all__ = ["FHDDM"]


class FHDDM(ErrorRateDetector):
    """Fast Hoeffding drift detector over a sliding window of correctness bits.

    Parameters
    ----------
    window_size:
        Sliding window length ``n`` (25-100 in the paper's tuning grid).
    delta:
        Allowed error of the Hoeffding bound.
    """

    def __init__(self, window_size: int = 100, delta: float = 1e-6) -> None:
        super().__init__()
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        self._window_size = window_size
        self._delta = delta
        self._epsilon = math.sqrt(math.log(1.0 / delta) / (2.0 * window_size))
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._window: deque[float] = deque(maxlen=self._window_size)
        self._p_max = 0.0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    @property
    def epsilon(self) -> float:
        """The Hoeffding bound used by the drift test."""
        return self._epsilon

    def add_element(self, value: float) -> None:
        correct = 0.0 if value > 0.5 else 1.0
        self._window.append(correct)
        if len(self._window) < self._window_size:
            return
        p_current = sum(self._window) / self._window_size
        if p_current > self._p_max:
            self._p_max = p_current
        if self._p_max - p_current > self._epsilon:
            self._in_drift = True
            self._reset_concept()
