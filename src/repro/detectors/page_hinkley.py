"""Page-Hinkley test for concept drift (Page, 1954; Mouss et al., 2004).

The Page-Hinkley test monitors the cumulative difference between the observed
values and their running mean, minus a tolerance ``alpha``.  When the
difference between the cumulative sum and its running minimum exceeds the
threshold ``lambda_`` a change is signalled.  It is a classic sequential
change detector, included as an additional standard baseline and used in the
library's ablation studies.

The batch kernel precomputes the running means vectorized (exact for the 0/1
error stream) and replays the forgetting-factor recurrence in a tight scalar
loop with identical operations, so detections are bit-identical to
per-instance stepping.
"""

from __future__ import annotations

import numpy as np

from repro.core.windows import running_totals
from repro.detectors.base import ErrorRateDetector

__all__ = ["PageHinkley"]


class PageHinkley(ErrorRateDetector):
    """Page-Hinkley cumulative-sum change detector.

    Parameters
    ----------
    min_instances:
        Observations required before the test activates.
    delta:
        Magnitude of allowed fluctuation (tolerance) around the mean.
    threshold:
        Detection threshold ``lambda``; larger values mean fewer alarms.
    alpha:
        Forgetting factor applied to the cumulative statistic.
    """

    def __init__(
        self,
        min_instances: int = 30,
        delta: float = 0.005,
        threshold: float = 50.0,
        alpha: float = 0.9999,
    ) -> None:
        super().__init__()
        if min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._min_instances = min_instances
        self._delta = delta
        self._threshold = threshold
        self._alpha = alpha
        self._reset_concept()

    def clone_params(self) -> dict:
        """Constructor kwargs reproducing this detector's configuration."""
        return dict(
            min_instances=self._min_instances,
            delta=self._delta,
            threshold=self._threshold,
            alpha=self._alpha,
        )

    def _reset_concept(self) -> None:
        self._count = 0
        self._value_sum = 0.0
        self._cumulative = 0.0
        self._minimum = float("inf")

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        self._count += 1
        self._value_sum += value
        mean = self._value_sum / self._count
        self._cumulative = (
            self._cumulative * self._alpha + value - mean - self._delta
        )
        self._minimum = min(self._minimum, self._cumulative)

        if self._count < self._min_instances:
            return
        if self._cumulative - self._minimum > self._threshold:
            self._in_drift = True
            self._reset_concept()

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(errors)

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        counts = self._count + np.arange(1, k + 1, dtype=np.int64)
        sums = running_totals(errors, self._value_sum)
        means = sums / counts
        active = counts >= self._min_instances
        alpha = self._alpha
        delta = self._delta
        threshold = self._threshold
        cumulative = self._cumulative
        minimum = self._minimum
        values = errors.tolist()
        mean_list = means.tolist()
        active_list = active.tolist()
        for i in range(k):
            cumulative = cumulative * alpha + values[i] - mean_list[i] - delta
            if cumulative < minimum:
                minimum = cumulative
            if active_list[i] and cumulative - minimum > threshold:
                self._reset_concept()
                return i + 1, True, False
        self._count = int(counts[-1])
        self._value_sum = float(sums[-1])
        self._cumulative = cumulative
        self._minimum = minimum
        return k, False, False
