"""Wilcoxon rank-sum test drift detector (WSTD), de Barros et al. 2018.

WSTD keeps two sub-windows over the stream of prediction-correctness bits: an
"old" window of historical behaviour (capped at ``max_old_instances``) and a
"recent" sliding window of the newest ``window_size`` observations.  The two
samples are compared with the Wilcoxon rank-sum (Mann-Whitney U) test; a
p-value below the warning/drift significance levels raises the corresponding
state.

Because the samples are 0/1 indicator bits, the rank test depends only on the
*counts* ``(n_old, ones_old, n_recent, ones_recent)``: the midranks assigned
to the tied zeros/ones — and therefore the U statistic, the tie correction,
and the asymptotic p-value — are invariant to the order of the elements (the
rank sums are sums of exactly representable half-integers, so even the
floating-point value is order-independent).  Both the scalar path and the
batch kernel exploit this by memoising the scipy p-value per count tuple,
which turns the former O(window) rank computation per instance into O(1)
amortised and lets the kernel evaluate whole chunks from rolling bit counts,
bit-identical to per-instance stepping.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import stats

from repro.core.windows import RingWindow
from repro.detectors.base import ErrorRateDetector

__all__ = ["WSTD"]


@lru_cache(maxsize=65536)
def _rank_sum_p_value(n_old: int, ones_old: int, n_recent: int, ones_recent: int) -> float:
    """Two-sided asymptotic Mann-Whitney p-value for two 0/1 samples.

    The samples are reconstructed from their counts; the result is identical
    (bit-for-bit) to calling scipy on the windows in stream order.
    """
    old = np.concatenate(
        [np.ones(ones_old), np.zeros(n_old - ones_old)]
    )
    recent = np.concatenate(
        [np.ones(ones_recent), np.zeros(n_recent - ones_recent)]
    )
    _stat, p_value = stats.mannwhitneyu(
        old, recent, alternative="two-sided", method="asymptotic"
    )
    return float(p_value)


class WSTD(ErrorRateDetector):
    """Wilcoxon rank-sum test drift detection.

    Parameters
    ----------
    window_size:
        Length of the recent sliding window (25-100 in the paper's grid).
    warning_significance, drift_significance:
        p-value thresholds for the warning and drift states.
    max_old_instances:
        Maximum number of historical observations retained for the "old"
        sample (1000-4000 in the paper's grid).
    min_instances:
        Observations required before testing begins.
    """

    def __init__(
        self,
        window_size: int = 75,
        warning_significance: float = 0.05,
        drift_significance: float = 0.003,
        max_old_instances: int = 2_000,
        min_instances: int = 150,
    ) -> None:
        super().__init__()
        if window_size < 5:
            raise ValueError("window_size must be >= 5")
        if not 0.0 < drift_significance <= warning_significance < 1.0:
            raise ValueError("require 0 < drift_significance <= warning_significance < 1")
        self._window_size = window_size
        self._warning_significance = warning_significance
        self._drift_significance = drift_significance
        self._max_old_instances = max_old_instances
        self._min_instances = max(min_instances, 2 * window_size)
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._recent = RingWindow(self._window_size)
        self._old = RingWindow(self._max_old_instances)
        self._count = 0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        correct = 0.0 if value > 0.5 else 1.0
        self._count += 1
        if len(self._recent) == self._window_size:
            self._old.append(self._recent.oldest())
        self._recent.append(correct)

        if self._count < self._min_instances or len(self._old) < self._window_size:
            return

        n_old = len(self._old)
        ones_old = int(self._old.sum)
        ones_recent = int(self._recent.sum)
        if self._is_constant(n_old, ones_old, len(self._recent), ones_recent):
            return  # identical constant samples: no evidence of change
        p_value = _rank_sum_p_value(
            n_old, ones_old, len(self._recent), ones_recent
        )
        if p_value < self._drift_significance:
            self._in_drift = True
            self._reset_concept()
        elif p_value < self._warning_significance:
            self._in_warning = True

    @staticmethod
    def _is_constant(
        n_old: int, ones_old: int, n_recent: int, ones_recent: int
    ) -> bool:
        """Both samples constant and equal (the rank test is undefined)."""
        if ones_old == 0:
            return ones_recent == 0
        if ones_old == n_old:
            return ones_recent == n_recent
        return False

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(errors)

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        ws = self._window_size
        max_old = self._max_old_instances
        correct = np.where(errors > 0.5, 0, 1).astype(np.int64)
        stored = np.concatenate(
            [self._old.values(), self._recent.values()]
        ).astype(np.int64)
        n_stored = stored.shape[0]
        combined = np.concatenate([stored, correct])
        csum = np.concatenate([[0], np.add.accumulate(combined)])

        # Window geometry after each chunk element: the recent window holds
        # the newest min(ws, total) bits, the old window the up-to-max_old
        # bits immediately before them.
        totals = n_stored + np.arange(1, k + 1, dtype=np.int64)
        n_recent = np.minimum(ws, totals)
        recent_start = totals - n_recent
        n_old = np.minimum(max_old, recent_start)
        old_start = recent_start - n_old
        ones_recent = csum[totals] - csum[recent_start]
        ones_old = csum[recent_start] - csum[old_start]

        counts = self._count + np.arange(1, k + 1, dtype=np.int64)
        tested = (counts >= self._min_instances) & (n_old >= ws)
        constant = np.where(
            ones_old == 0,
            ones_recent == 0,
            (ones_old == n_old) & (ones_recent == n_recent),
        )
        tested &= ~constant
        warning_last = False
        if tested.any():
            test_idx = np.flatnonzero(tested)
            triples = np.stack(
                [n_old[test_idx], ones_old[test_idx], n_recent[test_idx],
                 ones_recent[test_idx]],
                axis=1,
            )
            unique, inverse = np.unique(triples, axis=0, return_inverse=True)
            p_unique = np.array(
                [
                    _rank_sum_p_value(int(a), int(b), int(c), int(d))
                    for a, b, c, d in unique
                ]
            )
            p_values = p_unique[inverse]
            drift = p_values < self._drift_significance
            if drift.any():
                hit = int(test_idx[int(np.argmax(drift))])
                self._reset_concept()
                return hit + 1, True, False
            if tested[-1]:
                warning_last = bool(
                    p_values[-1] < self._warning_significance
                )
        # Commit: windows become the tails of the combined bit stream.
        total_end = int(totals[-1])
        rec_start_end = int(recent_start[-1])
        old_start_end = int(old_start[-1])
        self._recent.assign(combined[rec_start_end:total_end].astype(np.float64))
        self._old.assign(
            combined[old_start_end:rec_start_end].astype(np.float64)
        )
        self._count = int(counts[-1])
        return k, False, warning_last
