"""Wilcoxon rank-sum test drift detector (WSTD), de Barros et al. 2018.

WSTD keeps two sub-windows over the stream of prediction-correctness bits: an
"old" window of historical behaviour (capped at ``max_old_instances``) and a
"recent" sliding window of the newest ``window_size`` observations.  The two
samples are compared with the Wilcoxon rank-sum (Mann-Whitney U) test; a
p-value below the warning/drift significance levels raises the corresponding
state.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy import stats

from repro.detectors.base import ErrorRateDetector

__all__ = ["WSTD"]


class WSTD(ErrorRateDetector):
    """Wilcoxon rank-sum test drift detection.

    Parameters
    ----------
    window_size:
        Length of the recent sliding window (25-100 in the paper's grid).
    warning_significance, drift_significance:
        p-value thresholds for the warning and drift states.
    max_old_instances:
        Maximum number of historical observations retained for the "old"
        sample (1000-4000 in the paper's grid).
    min_instances:
        Observations required before testing begins.
    """

    def __init__(
        self,
        window_size: int = 75,
        warning_significance: float = 0.05,
        drift_significance: float = 0.003,
        max_old_instances: int = 2_000,
        min_instances: int = 150,
    ) -> None:
        super().__init__()
        if window_size < 5:
            raise ValueError("window_size must be >= 5")
        if not 0.0 < drift_significance <= warning_significance < 1.0:
            raise ValueError("require 0 < drift_significance <= warning_significance < 1")
        self._window_size = window_size
        self._warning_significance = warning_significance
        self._drift_significance = drift_significance
        self._max_old_instances = max_old_instances
        self._min_instances = max(min_instances, 2 * window_size)
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._recent: deque[float] = deque(maxlen=self._window_size)
        self._old: deque[float] = deque(maxlen=self._max_old_instances)
        self._count = 0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        correct = 0.0 if value > 0.5 else 1.0
        self._count += 1
        if len(self._recent) == self._window_size:
            self._old.append(self._recent[0])
        self._recent.append(correct)

        if self._count < self._min_instances or len(self._old) < self._window_size:
            return

        old = np.fromiter(self._old, dtype=np.float64)
        recent = np.fromiter(self._recent, dtype=np.float64)
        if np.allclose(old, old[0]) and np.allclose(recent, old[0]):
            return  # identical constant samples: no evidence of change
        _stat, p_value = stats.mannwhitneyu(
            old, recent, alternative="two-sided", method="asymptotic"
        )
        if p_value < self._drift_significance:
            self._in_drift = True
            self._reset_concept()
        elif p_value < self._warning_significance:
            self._in_warning = True
