"""DDM-OCI: Drift Detection Method for Online Class Imbalance (Wang et al.).

DDM-OCI monitors the *time-decayed recall of each class* instead of the
overall error rate.  For every class a DDM-style test is applied to its
recall: the maximum recall (plus standard deviation) observed during the
current concept is remembered, and when the current recall falls below that
reference by more than the drift threshold a change is signalled for that
class.  Because each class is tracked separately, the detector reports the
set of classes responsible for the detection.
"""

from __future__ import annotations

import math

import numpy as np

from repro.detectors.base import ClassConditionalDetector

__all__ = ["DDM_OCI"]


class DDM_OCI(ClassConditionalDetector):
    """Per-class time-decayed-recall drift detector.

    Parameters
    ----------
    n_classes:
        Number of classes monitored.
    warning_threshold, drift_threshold:
        Fractions of the best observed recall statistic below which the
        warning / drift states are raised (``alpha_w`` / ``alpha_d`` in the
        paper's Table II grid, e.g. 0.95 / 0.90).
    decay:
        Time-decay factor of the per-class recall estimate.
    min_errors:
        Minimum number of observations of a class before its test activates.
    """

    def __init__(
        self,
        n_classes: int,
        warning_threshold: float = 0.95,
        drift_threshold: float = 0.85,
        decay: float = 0.995,
        min_errors: int = 30,
    ) -> None:
        super().__init__(n_classes)
        if not 0.0 < drift_threshold < warning_threshold <= 1.0:
            raise ValueError("require 0 < drift_threshold < warning_threshold <= 1")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self._warning_threshold = warning_threshold
        self._drift_threshold = drift_threshold
        self._decay = decay
        self._min_errors = min_errors
        self._reset_concept()

    def _reset_concept(self) -> None:
        n = self._n_classes
        self._recall = np.full(n, 0.5, dtype=np.float64)
        self._class_counts = np.zeros(n, dtype=np.int64)
        self._best_stat = np.full(n, -math.inf, dtype=np.float64)
        self._recall_mean = np.zeros(n, dtype=np.float64)
        self._recall_m2 = np.zeros(n, dtype=np.float64)

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def class_recall(self, label: int) -> float:
        """Current time-decayed recall estimate of ``label``."""
        return float(self._recall[label])

    def add_result(self, y_true: int, y_pred: int) -> None:
        label = int(y_true)
        hit = 1.0 if y_true == y_pred else 0.0
        self._recall[label] = (
            self._decay * self._recall[label] + (1.0 - self._decay) * hit
        )
        self._class_counts[label] += 1
        count = self._class_counts[label]

        # Welford statistics of the recall trajectory for this class.
        delta = self._recall[label] - self._recall_mean[label]
        self._recall_mean[label] += delta / count
        self._recall_m2[label] += delta * (self._recall[label] - self._recall_mean[label])

        if count < self._min_errors:
            return

        std = math.sqrt(self._recall_m2[label] / count)
        stat = self._recall[label] + std
        if stat > self._best_stat[label]:
            self._best_stat[label] = stat
            return
        if self._best_stat[label] <= 0.0:
            return

        ratio = stat / self._best_stat[label]
        if ratio < self._drift_threshold:
            self._in_drift = True
            self._drifted_classes = {label}
            # Only the affected class is reset, the others keep their state —
            # this is what lets DDM-OCI react to repeated local changes.
            self._reset_class(label)
        elif ratio < self._warning_threshold:
            self._in_warning = True

    def _reset_class(self, label: int) -> None:
        self._recall[label] = 0.5
        self._class_counts[label] = 0
        self._best_stat[label] = -math.inf
        self._recall_mean[label] = 0.0
        self._recall_m2[label] = 0.0

    # ----------------------------------------------------------- batch kernel
    def _add_results(
        self, y_true: np.ndarray, y_pred: np.ndarray
    ) -> tuple[np.ndarray, list[set[int] | None]]:
        """Tight-loop kernel over hoisted per-class state.

        The per-class decayed-recall and Welford recurrences are inherently
        sequential, so the kernel keeps the state in plain Python lists and
        replays the exact scalar operations — several times faster than the
        per-instance adapter (no attribute traffic, no NumPy scalar churn)
        and bit-identical to it.  A drift resets only the affected class, so
        the loop never needs to restart.
        """
        n = y_true.shape[0]
        flags = np.zeros(n, dtype=bool)
        classes: list[set[int] | None] = []
        if n == 0:
            return flags, classes
        self._in_drift = False
        self._in_warning = False
        self._drifted_classes = None
        recall = self._recall.tolist()
        counts = self._class_counts.tolist()
        best = self._best_stat.tolist()
        means = self._recall_mean.tolist()
        m2s = self._recall_m2.tolist()
        decay = self._decay
        one_minus = 1.0 - decay
        min_errors = self._min_errors
        warn_thr = self._warning_threshold
        drift_thr = self._drift_threshold
        sqrt = math.sqrt
        labels = y_true.tolist()
        hits = (y_true == y_pred).tolist()
        in_drift = False
        in_warning = False
        drifted_classes: set[int] | None = None
        for i in range(n):
            in_drift = False
            in_warning = False
            drifted_classes = None
            label = labels[i]
            hit = 1.0 if hits[i] else 0.0
            r = decay * recall[label] + one_minus * hit
            recall[label] = r
            count = counts[label] + 1
            counts[label] = count
            delta = r - means[label]
            mean = means[label] + delta / count
            means[label] = mean
            m2 = m2s[label] + delta * (r - mean)
            m2s[label] = m2
            if count < min_errors:
                continue
            std = sqrt(m2 / count)
            stat = r + std
            if stat > best[label]:
                best[label] = stat
                continue
            if best[label] <= 0.0:
                continue
            ratio = stat / best[label]
            if ratio < drift_thr:
                in_drift = True
                drifted_classes = {label}
                flags[i] = True
                classes.append({label})
                recall[label] = 0.5
                counts[label] = 0
                best[label] = -math.inf
                means[label] = 0.0
                m2s[label] = 0.0
            elif ratio < warn_thr:
                in_warning = True
        self._recall = np.asarray(recall, dtype=np.float64)
        self._class_counts = np.asarray(counts, dtype=np.int64)
        self._best_stat = np.asarray(best, dtype=np.float64)
        self._recall_mean = np.asarray(means, dtype=np.float64)
        self._recall_m2 = np.asarray(m2s, dtype=np.float64)
        self._in_drift = in_drift
        self._in_warning = in_warning
        self._drifted_classes = drifted_classes
        return flags, classes
