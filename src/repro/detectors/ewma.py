"""EWMA for Concept Drift Detection (ECDD), Ross et al. 2012.

An exponentially weighted moving average of the error stream is compared
against control limits derived from the estimated pre-change error rate and
the exact time-dependent EWMA standard deviation.  The control limit is a
configurable multiple of that standard deviation (a classic L-sigma EWMA
chart); the default of 3 sigma keeps the in-control false-alarm rate low while
remaining reactive to genuine error-rate increases.

The batch kernel vectorizes everything that depends only on the (exact,
integer-valued) running error count — pre-change mean, EWMA sigma, control
limits — and replays only the inherently sequential EWMA recurrence in a
tight scalar loop with identical operations, so detections are bit-identical
to per-instance stepping.
"""

from __future__ import annotations

import numpy as np

from repro.core.windows import running_totals
from repro.detectors.base import ErrorRateDetector

__all__ = ["ECDDWT"]


class ECDDWT(ErrorRateDetector):
    """EWMA chart drift detector with warning threshold.

    Parameters
    ----------
    lambda_:
        EWMA smoothing constant (0.2 recommended by the authors).
    warning_fraction:
        Fraction of the drift control limit at which the warning state is
        raised (e.g. 0.5 means warn at half the drift limit).
    control_limit:
        Control-limit multiplier ``L`` applied to the EWMA standard deviation.
    min_instances:
        Observations required before testing begins.
    """

    def __init__(
        self,
        lambda_: float = 0.05,
        warning_fraction: float = 0.5,
        control_limit: float = 3.5,
        min_instances: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < lambda_ <= 1.0:
            raise ValueError("lambda_ must be in (0, 1]")
        if not 0.0 < warning_fraction < 1.0:
            raise ValueError("warning_fraction must be in (0, 1)")
        if control_limit <= 0.0:
            raise ValueError("control_limit must be positive")
        self._lambda = lambda_
        self._warning_fraction = warning_fraction
        self._control_limit = control_limit
        self._min_instances = min_instances
        self._reset_concept()

    def clone_params(self) -> dict:
        """Constructor kwargs reproducing this detector's configuration."""
        return dict(
            lambda_=self._lambda,
            warning_fraction=self._warning_fraction,
            control_limit=self._control_limit,
            min_instances=self._min_instances,
        )

    def _reset_concept(self) -> None:
        self._count = 0
        self._error_sum = 0.0
        self._ewma = 0.0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def _limits(self, counts, sums):
        """Clipped pre-change mean and drift control limit per position."""
        lam = self._lambda
        p = np.clip(sums / counts, 1e-9, 1.0 - 1e-9)
        variance = p * (1.0 - p)
        t = np.asarray(counts, dtype=np.float64)
        sigma_z = np.sqrt(
            variance
            * lam
            / (2.0 - lam)
            * (1.0 - (1.0 - lam) ** (2.0 * t))
        )
        return p, self._control_limit * sigma_z

    def add_element(self, value: float) -> None:
        error = 1.0 if value > 0.5 else 0.0
        self._count += 1
        # Pre-change error estimate uses only the running mean.
        self._error_sum += error
        self._ewma = (1.0 - self._lambda) * self._ewma + self._lambda * error

        if self._count < self._min_instances:
            return

        p, limit = self._limits(self._count, self._error_sum)
        p, limit = float(p), float(limit)
        if self._ewma - p > limit:
            self._in_drift = True
            self._reset_concept()
        elif self._ewma - p > self._warning_fraction * limit:
            self._in_warning = True

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(np.where(errors > 0.5, 1.0, 0.0))

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        counts = self._count + np.arange(1, k + 1, dtype=np.int64)
        sums = running_totals(errors, self._error_sum)
        p, limit = self._limits(counts, sums)
        active = counts >= self._min_instances
        wfrac = self._warning_fraction
        lam = self._lambda
        one_minus = 1.0 - lam
        ewma = self._ewma
        values = errors.tolist()
        p_list = p.tolist()
        limit_list = limit.tolist()
        active_list = active.tolist()
        warning_last = False
        for i in range(k):
            ewma = one_minus * ewma + lam * values[i]
            warning_last = False
            if not active_list[i]:
                continue
            diff = ewma - p_list[i]
            if diff > limit_list[i]:
                self._reset_concept()
                return i + 1, True, False
            warning_last = diff > wfrac * limit_list[i]
        self._count = int(counts[-1])
        self._error_sum = float(sums[-1])
        self._ewma = ewma
        return k, False, warning_last
