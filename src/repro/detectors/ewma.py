"""EWMA for Concept Drift Detection (ECDD), Ross et al. 2012.

An exponentially weighted moving average of the error stream is compared
against control limits derived from the estimated pre-change error rate and
the exact time-dependent EWMA standard deviation.  The control limit is a
configurable multiple of that standard deviation (a classic L-sigma EWMA
chart); the default of 3 sigma keeps the in-control false-alarm rate low while
remaining reactive to genuine error-rate increases.
"""

from __future__ import annotations

import math

from repro.detectors.base import ErrorRateDetector

__all__ = ["ECDDWT"]


class ECDDWT(ErrorRateDetector):
    """EWMA chart drift detector with warning threshold.

    Parameters
    ----------
    lambda_:
        EWMA smoothing constant (0.2 recommended by the authors).
    warning_fraction:
        Fraction of the drift control limit at which the warning state is
        raised (e.g. 0.5 means warn at half the drift limit).
    control_limit:
        Control-limit multiplier ``L`` applied to the EWMA standard deviation.
    min_instances:
        Observations required before testing begins.
    """

    def __init__(
        self,
        lambda_: float = 0.05,
        warning_fraction: float = 0.5,
        control_limit: float = 3.5,
        min_instances: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < lambda_ <= 1.0:
            raise ValueError("lambda_ must be in (0, 1]")
        if not 0.0 < warning_fraction < 1.0:
            raise ValueError("warning_fraction must be in (0, 1)")
        if control_limit <= 0.0:
            raise ValueError("control_limit must be positive")
        self._lambda = lambda_
        self._warning_fraction = warning_fraction
        self._control_limit = control_limit
        self._min_instances = min_instances
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._ewma = 0.0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def add_element(self, value: float) -> None:
        error = 1.0 if value > 0.5 else 0.0
        self._count += 1
        # Pre-change error estimate uses only the running mean.
        self._mean += (error - self._mean) / self._count
        self._ewma = (1.0 - self._lambda) * self._ewma + self._lambda * error

        if self._count < self._min_instances:
            return

        p = min(max(self._mean, 1e-9), 1.0 - 1e-9)
        variance = p * (1.0 - p)
        t = self._count
        lam = self._lambda
        sigma_z = math.sqrt(
            variance
            * lam
            / (2.0 - lam)
            * (1.0 - (1.0 - lam) ** (2.0 * t))
        )
        limit = self._control_limit * sigma_z
        if self._ewma - p > limit:
            self._in_drift = True
            self._reset_concept()
        elif self._ewma - p > self._warning_fraction * limit:
            self._in_warning = True
