"""Concept drift detectors: standard, imbalance-aware, and the RBM-IM core.

The standard detectors monitor the classifier's error stream (DDM, EDDM,
RDDM, ADWIN, HDDM_A, HDDM_W, FHDDM, WSTD, Page-Hinkley, ECDD); the
imbalance-aware baselines monitor per-class performance (PerfSim, DDM-OCI).
The paper's contribution, RBM-IM, lives in :mod:`repro.core`.
"""

from repro.detectors.adwin import ADWIN
from repro.detectors.base import (
    ClassConditionalDetector,
    DriftDetector,
    ErrorRateDetector,
    InstanceDetector,
)
from repro.detectors.ddm import DDM
from repro.detectors.ddm_oci import DDM_OCI
from repro.detectors.eddm import EDDM
from repro.detectors.ewma import ECDDWT
from repro.detectors.fhddm import FHDDM
from repro.detectors.hddm import HDDM_A, HDDM_W
from repro.detectors.page_hinkley import PageHinkley
from repro.detectors.perfsim import PerfSim
from repro.detectors.rddm import RDDM
from repro.detectors.wstd import WSTD

__all__ = [
    "DriftDetector",
    "ErrorRateDetector",
    "ClassConditionalDetector",
    "InstanceDetector",
    "ADWIN",
    "DDM",
    "DDM_OCI",
    "EDDM",
    "ECDDWT",
    "FHDDM",
    "HDDM_A",
    "HDDM_W",
    "PageHinkley",
    "PerfSim",
    "RDDM",
    "WSTD",
]
