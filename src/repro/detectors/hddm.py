"""Hoeffding's-bound drift detection methods (Frias-Blanco et al., 2015).

Two variants are provided:

* :class:`HDDM_A` — compares the running average of the monitored signal
  before and after a candidate cut point using the Hoeffding inequality
  (A-test, sensitive to abrupt changes);
* :class:`HDDM_W` — uses exponentially weighted moving averages and the
  McDiarmid inequality (W-test, more sensitive to gradual changes).

Both support one-sided or two-sided monitoring; for classifier error streams
the one-sided (increase in error) test is the standard configuration.

HDDM-A's state is a pair of (count, sum) snapshots selected by weak
prefix-extremum updates, so its batch kernel vectorizes completely on the
shared windows core.  HDDM-W's EWMA recurrences are inherently sequential;
its kernel replays them in a tight scalar loop with identical operations.
Both kernels are bit-identical to per-instance stepping.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.windows import (
    gather_tracked,
    hoeffding_bound,
    running_totals,
    tracked_weak_max,
    tracked_weak_min,
)
from repro.detectors.base import ErrorRateDetector

__all__ = ["HDDM_A", "HDDM_W"]


def _hoeffding_bound(n: float, confidence: float) -> float:
    """Scalar-loop twin of :func:`repro.core.windows.hoeffding_bound`.

    Kept as ``math``-based scalar ops for the per-instance hot path; the
    windows-core helper computes the identical value (the expression shape
    matches and sqrt/log are correctly rounded), which
    ``tests/core/test_windows.py`` pins — the batch kernels rely on the
    agreement.
    """
    return math.sqrt(math.log(1.0 / confidence) / (2.0 * n))


class HDDM_A(ErrorRateDetector):
    """HDDM with the averages test (Hoeffding inequality).

    Parameters
    ----------
    drift_confidence, warning_confidence:
        Significance levels for the drift and warning tests.
    two_sided:
        Monitor both increases and decreases of the signal mean.
    """

    def __init__(
        self,
        drift_confidence: float = 0.001,
        warning_confidence: float = 0.005,
        two_sided: bool = False,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_confidence < warning_confidence < 1.0:
            raise ValueError("require 0 < drift_confidence < warning_confidence < 1")
        self._drift_confidence = drift_confidence
        self._warning_confidence = warning_confidence
        self._two_sided = two_sided
        self._reset_concept()

    def clone_params(self) -> dict:
        """Constructor kwargs reproducing this detector's configuration."""
        return dict(
            drift_confidence=self._drift_confidence,
            warning_confidence=self._warning_confidence,
            two_sided=self._two_sided,
        )

    def _reset_concept(self) -> None:
        self._n_total = 0.0
        self._sum_total = 0.0
        self._n_min = 0.0
        self._sum_min = 0.0
        self._n_max = 0.0
        self._sum_max = 0.0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    def _mean_incr(self, confidence: float) -> bool:
        if self._n_min == 0.0 or self._n_total == self._n_min:
            return False
        m = (self._n_total - self._n_min) / self._n_min * (1.0 / self._n_total)
        bound = math.sqrt(m / 2.0 * math.log(2.0 / confidence))
        return (
            self._sum_total / self._n_total - self._sum_min / self._n_min >= bound
        )

    def _mean_decr(self, confidence: float) -> bool:
        if self._n_max == 0.0 or self._n_total == self._n_max:
            return False
        m = (self._n_total - self._n_max) / self._n_max * (1.0 / self._n_total)
        bound = math.sqrt(m / 2.0 * math.log(2.0 / confidence))
        return (
            self._sum_max / self._n_max - self._sum_total / self._n_total >= bound
        )

    def add_element(self, value: float) -> None:
        self._n_total += 1.0
        self._sum_total += value

        # Update the minimum-mean reference window.
        if self._n_min == 0.0:
            self._n_min, self._sum_min = self._n_total, self._sum_total
        else:
            current_bound = _hoeffding_bound(self._n_total, self._drift_confidence)
            min_bound = _hoeffding_bound(self._n_min, self._drift_confidence)
            if (
                self._sum_total / self._n_total + current_bound
                <= self._sum_min / self._n_min + min_bound
            ):
                self._n_min, self._sum_min = self._n_total, self._sum_total

        # Update the maximum-mean reference window (for two-sided tests).
        if self._n_max == 0.0:
            self._n_max, self._sum_max = self._n_total, self._sum_total
        else:
            current_bound = _hoeffding_bound(self._n_total, self._drift_confidence)
            max_bound = _hoeffding_bound(self._n_max, self._drift_confidence)
            if (
                self._sum_total / self._n_total - current_bound
                >= self._sum_max / self._n_max - max_bound
            ):
                self._n_max, self._sum_max = self._n_total, self._sum_total

        increased = self._mean_incr(self._drift_confidence)
        decreased = self._two_sided and self._mean_decr(self._drift_confidence)
        if increased or decreased:
            self._in_drift = True
            self._reset_concept()
        elif self._mean_incr(self._warning_confidence):
            self._in_warning = True

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(errors)

    @staticmethod
    def _mean_test(n, s, n_ref, s_ref, confidence, decrease=False):
        """Vectorized one-sided mean-shift test against a reference snapshot.

        Mirrors :meth:`_mean_incr` (``decrease=False``) and
        :meth:`_mean_decr` (``decrease=True``) element-wise.
        """
        valid = (n_ref > 0.0) & (n != n_ref)
        with np.errstate(invalid="ignore", divide="ignore"):
            m = (n - n_ref) / n_ref * (1.0 / n)
            bound = np.sqrt(m / 2.0 * math.log(2.0 / confidence))
            if decrease:
                cond = s_ref / n_ref - s / n >= bound
            else:
                cond = s / n - s_ref / n_ref >= bound
        return valid & cond

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        k = errors.shape[0]
        n_vec = self._n_total + np.arange(1.0, k + 1.0)
        s_vec = running_totals(errors, self._sum_total)
        q = s_vec / n_vec
        bound = hoeffding_bound(n_vec, self._drift_confidence)

        # Reference snapshots follow weak prefix-extremum updates on the
        # bound-adjusted means; ties re-update, so the latest extremum wins.
        if self._n_min == 0.0:
            prior_min = math.inf
        else:
            prior_min = self._sum_min / self._n_min + float(
                hoeffding_bound(self._n_min, self._drift_confidence)
            )
        tracked_min = tracked_weak_min(q + bound, prior_min)
        n_min = gather_tracked(tracked_min, n_vec, self._n_min)
        s_min = gather_tracked(tracked_min, s_vec, self._sum_min)

        if self._n_max == 0.0:
            prior_max = -math.inf
        else:
            prior_max = self._sum_max / self._n_max - float(
                hoeffding_bound(self._n_max, self._drift_confidence)
            )
        tracked_max = tracked_weak_max(q - bound, prior_max)
        n_max = gather_tracked(tracked_max, n_vec, self._n_max)
        s_max = gather_tracked(tracked_max, s_vec, self._sum_max)

        increased = self._mean_test(n_vec, s_vec, n_min, s_min, self._drift_confidence)
        if self._two_sided:
            decreased = self._mean_test(
                n_vec, s_vec, n_max, s_max, self._drift_confidence, decrease=True
            )
            drift = increased | decreased
        else:
            drift = increased
        if drift.any():
            hit = int(np.argmax(drift))
            self._reset_concept()
            return hit + 1, True, False

        warning = self._mean_test(
            n_vec, s_vec, n_min, s_min, self._warning_confidence
        )
        self._n_total = float(n_vec[-1])
        self._sum_total = float(s_vec[-1])
        self._n_min = float(n_min[-1])
        self._sum_min = float(s_min[-1])
        self._n_max = float(n_max[-1])
        self._sum_max = float(s_max[-1])
        return k, False, bool(warning[-1])


class HDDM_W(ErrorRateDetector):
    """HDDM with the weighted-averages test (McDiarmid inequality / EWMA).

    Parameters
    ----------
    drift_confidence, warning_confidence:
        Significance levels for the drift and warning tests.
    lambda_:
        EWMA decay factor in (0, 1]; smaller values weight recent samples
        more heavily.
    two_sided:
        Monitor both increases and decreases of the signal mean.
    """

    def __init__(
        self,
        drift_confidence: float = 0.001,
        warning_confidence: float = 0.005,
        lambda_: float = 0.05,
        two_sided: bool = False,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_confidence < warning_confidence < 1.0:
            raise ValueError("require 0 < drift_confidence < warning_confidence < 1")
        if not 0.0 < lambda_ <= 1.0:
            raise ValueError("lambda_ must be in (0, 1]")
        self._drift_confidence = drift_confidence
        self._warning_confidence = warning_confidence
        self._lambda = lambda_
        self._two_sided = two_sided
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._total_ewma = 0.0
        self._total_ind_sum = 0.0  # sum of squared weights (for the bound)
        self._total_weight = 0.0
        self._min_ewma = math.inf
        self._min_ind_sum = 0.0
        self._min_weight = 0.0
        self._max_ewma = -math.inf
        self._max_ind_sum = 0.0
        self._max_weight = 0.0

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    @staticmethod
    def _mcdiarmid_bound(ind_sum: float, confidence: float) -> float:
        if ind_sum <= 0.0:
            return math.inf
        return math.sqrt(ind_sum * math.log(1.0 / confidence) / 2.0)

    def add_element(self, value: float) -> None:
        lam = self._lambda
        self._total_ewma = (1.0 - lam) * self._total_ewma + lam * value
        self._total_ind_sum = (1.0 - lam) ** 2 * self._total_ind_sum + lam**2
        self._total_weight += 1.0

        bound = self._mcdiarmid_bound(self._total_ind_sum, self._drift_confidence)
        if self._total_ewma + bound <= self._min_ewma + self._mcdiarmid_bound(
            self._min_ind_sum, self._drift_confidence
        ):
            self._min_ewma = self._total_ewma
            self._min_ind_sum = self._total_ind_sum
            self._min_weight = self._total_weight
        if self._total_ewma - bound >= self._max_ewma - self._mcdiarmid_bound(
            self._max_ind_sum, self._drift_confidence
        ):
            self._max_ewma = self._total_ewma
            self._max_ind_sum = self._total_ind_sum
            self._max_weight = self._total_weight

        if self._detect(self._drift_confidence):
            self._in_drift = True
            self._reset_concept()
        elif self._detect(self._warning_confidence):
            self._in_warning = True

    def _detect(self, confidence: float) -> bool:
        if math.isinf(self._min_ewma):
            return False
        epsilon = self._mcdiarmid_bound(
            self._total_ind_sum + self._min_ind_sum, confidence
        )
        increased = self._total_ewma - self._min_ewma >= epsilon
        if not self._two_sided:
            return increased
        if math.isinf(self._max_ewma):
            return increased
        epsilon_max = self._mcdiarmid_bound(
            self._total_ind_sum + self._max_ind_sum, confidence
        )
        decreased = self._max_ewma - self._total_ewma >= epsilon_max
        return increased or decreased

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        """Tight-loop kernel: the EWMA recurrences are inherently sequential,
        so the kernel hoists all state into locals and replays the exact
        scalar operations, which is several times faster than the generic
        per-instance adapter while staying bit-identical."""
        n = errors.shape[0]
        flags = np.zeros(n, dtype=bool)
        if n == 0:
            return flags
        self._in_drift = False
        self._in_warning = False
        self._drifted_classes = None
        values = errors.tolist()
        mcd = self._mcdiarmid_bound
        detect = self._detect
        lam = self._lambda
        one_minus = 1.0 - lam
        decay_sq = (1.0 - lam) ** 2
        lam_sq = lam**2
        drift_conf = self._drift_confidence
        for i in range(n):
            value = values[i]
            self._total_ewma = one_minus * self._total_ewma + lam * value
            self._total_ind_sum = decay_sq * self._total_ind_sum + lam_sq
            self._total_weight += 1.0
            bound = mcd(self._total_ind_sum, drift_conf)
            if self._total_ewma + bound <= self._min_ewma + mcd(
                self._min_ind_sum, drift_conf
            ):
                self._min_ewma = self._total_ewma
                self._min_ind_sum = self._total_ind_sum
                self._min_weight = self._total_weight
            if self._total_ewma - bound >= self._max_ewma - mcd(
                self._max_ind_sum, drift_conf
            ):
                self._max_ewma = self._total_ewma
                self._max_ind_sum = self._total_ind_sum
                self._max_weight = self._total_weight
            self._in_drift = False
            self._in_warning = False
            if detect(drift_conf):
                flags[i] = True
                self._in_drift = True
                self._reset_concept()
            elif detect(self._warning_confidence):
                self._in_warning = True
        return flags
