"""ADWIN — ADaptive WINdowing (Bifet & Gavalda, 2007).

ADWIN maintains a variable-length window of recent real values, stored in an
exponential histogram of buckets (:class:`~repro.core.windows.
ExponentialBuckets`).  Whenever the means of two sub-windows differ by more
than a bound derived from the Hoeffding inequality, the older sub-window is
dropped and a change is signalled.  Besides being one of the reference
detectors, ADWIN provides the *self-adaptive window size* used by RBM-IM's
trend estimation (Eq. 28-37 of the paper), exposed through
:attr:`ADWIN.width`.

The batch kernel precomputes the window statistics for a whole chunk (the
running totals and incremental variances are exact for the 0/1 error stream
``step_batch`` monitors), feeds the histogram in bulk, and evaluates the cut
test only at the clock positions, with the per-boundary scan vectorized over
the buckets.  The scalar cut scan is kept untouched so real-valued
``add_element`` streams (e.g. RBM-IM's trend windows) behave exactly as
before; for the binary streams both scans are bit-identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.windows import ExponentialBuckets, exclusive_totals, running_totals
from repro.detectors.base import ErrorRateDetector

__all__ = ["ADWIN"]


class ADWIN(ErrorRateDetector):
    """Adaptive sliding-window change detector over a real-valued signal.

    Parameters
    ----------
    delta:
        Confidence parameter of the Hoeffding-style cut test (smaller values
        make the detector more conservative).
    min_window_length:
        Minimum sub-window length considered when looking for a cut.
    clock:
        Number of observations between cut checks (1 = check every instance).
    """

    def __init__(
        self, delta: float = 0.002, min_window_length: int = 5, clock: int = 32
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if min_window_length < 1:
            raise ValueError("min_window_length must be >= 1")
        if clock < 1:
            raise ValueError("clock must be >= 1")
        self._delta = delta
        self._min_window_length = min_window_length
        self._clock = clock
        self._init_buckets()

    def _init_buckets(self) -> None:
        self._buckets = ExponentialBuckets()
        self._total = 0.0
        self._variance = 0.0
        self._width = 0
        self._tick = 0

    def reset(self) -> None:
        super().reset()
        self._init_buckets()

    # ------------------------------------------------------------ properties
    @property
    def width(self) -> int:
        """Current adaptive window length."""
        return self._width

    @property
    def estimation(self) -> float:
        """Mean of the values currently inside the window."""
        if self._width == 0:
            return 0.0
        return self._total / self._width

    @property
    def variance(self) -> float:
        """Variance of the values currently inside the window."""
        if self._width == 0:
            return 0.0
        return self._variance / self._width

    # -------------------------------------------------------------- updates
    def add_element(self, value: float) -> None:
        self._insert(value)
        self._tick += 1
        if self._tick % self._clock == 0 and self._width > self._min_window_length:
            if self._detect_cut():
                self._in_drift = True

    def _insert(self, value: float) -> None:
        if self._width > 0:
            mean = self._total / self._width
            incremental_variance = (
                (self._width / (self._width + 1.0)) * (value - mean) * (value - mean)
            )
        else:
            incremental_variance = 0.0
        self._width += 1
        self._total += value
        self._variance += incremental_variance
        self._buckets.append(value)

    def _detect_cut(self) -> bool:
        """Look for a split point where the two sub-window means differ."""
        change_found = False
        keep_looking = True
        while keep_looking:
            keep_looking = False
            n0 = 0.0
            sum0 = 0.0
            n1 = float(self._width)
            sum1 = self._total
            buckets = list(self._buckets.oldest_first())
            for size, total, _variance in buckets[:-1]:
                n0 += size
                sum0 += total
                n1 -= size
                sum1 -= total
                if n0 < self._min_window_length or n1 < self._min_window_length:
                    continue
                mean0 = sum0 / n0
                mean1 = sum1 / n1
                if self._cut_expression(n0, n1, mean0, mean1):
                    change_found = True
                    keep_looking = True
                    self._drop_oldest_bucket()
                    break
        return change_found

    def _cut_expression(
        self, n0: float, n1: float, mean0: float, mean1: float
    ) -> bool:
        n = float(self._width)
        harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
        delta_prime = self._delta / math.log(max(n, math.e))
        variance = self.variance
        epsilon = math.sqrt(
            (2.0 / harmonic) * variance * math.log(2.0 / delta_prime)
        ) + (2.0 / (3.0 * harmonic)) * math.log(2.0 / delta_prime)
        return abs(mean0 - mean1) > epsilon

    def _drop_oldest_bucket(self) -> None:
        popped = self._buckets.pop_oldest()
        if popped is None:
            return
        size, total, variance = popped
        if self._width > size:
            mean = total / size
            overall_mean = self._total / self._width
            self._variance -= variance + size * (self._width - size) / self._width * (
                mean - overall_mean
            ) * (mean - overall_mean)
            self._variance = max(self._variance, 0.0)
        self._width -= int(size)
        self._total -= total
        if self._width <= 0:
            self._init_buckets()

    # ----------------------------------------------------------- batch kernel
    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        return self._run_segments(errors)

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        """Consume elements until a detection shrinks the window (or the end).

        Between detections the window only grows, so the running totals and
        incremental variances for the whole span can be precomputed in one
        vectorized pass (exact for the 0/1 inputs of the error stream); the
        histogram is fed in bulk and the scalar aggregates are only
        materialised at the clock boundaries where the cut test runs.
        """
        k = errors.shape[0]
        widths_excl = self._width + np.arange(k, dtype=np.float64)
        totals_excl = exclusive_totals(errors, self._total)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = totals_excl / widths_excl
        diff = errors - means
        incremental = widths_excl / (widths_excl + 1.0) * diff * diff
        incremental = np.where(widths_excl > 0.0, incremental, 0.0)
        acc_variance = running_totals(incremental, self._variance)
        totals = running_totals(errors, self._total)
        ticks = self._tick + np.arange(1, k + 1, dtype=np.int64)
        widths = self._width + np.arange(1, k + 1, dtype=np.int64)
        checks = np.flatnonzero(
            (ticks % self._clock == 0) & (widths > self._min_window_length)
        )
        values = errors.tolist()
        buckets = self._buckets
        applied = 0
        for c in checks.tolist():
            for j in range(applied, c + 1):
                buckets.append(values[j])
            applied = c + 1
            self._width = int(widths[c])
            self._total = float(totals[c])
            self._variance = float(acc_variance[c])
            self._tick = int(ticks[c])
            if self._detect_cut_vectorized():
                return c + 1, True, False
        for j in range(applied, k):
            buckets.append(values[j])
        self._width = int(widths[-1])
        self._total = float(totals[-1])
        self._variance = float(acc_variance[-1])
        self._tick = int(ticks[-1])
        return k, False, False

    def _detect_cut_vectorized(self) -> bool:
        """Cut scan with all split points evaluated at once.

        The scalar scan acts on the *first* cut it finds by dropping the
        oldest bucket and rescanning; since the action does not depend on
        where the cut was, "any split cuts" is decision-equivalent.  The
        cumulative sub-window sums are exact for integer-valued window
        contents, making this bit-identical to :meth:`_detect_cut` for the
        binary error stream.
        """
        change_found = False
        while True:
            sizes, totals = self._buckets.arrays_oldest_first()
            if sizes.shape[0] <= 1:
                return change_found
            n0 = np.add.accumulate(sizes[:-1])
            sum0 = np.add.accumulate(totals[:-1])
            n1 = self._width - n0
            sum1 = self._total - sum0
            valid = (n0 >= self._min_window_length) & (n1 >= self._min_window_length)
            if not valid.any():
                return change_found
            with np.errstate(invalid="ignore", divide="ignore"):
                mean0 = sum0 / n0
                mean1 = sum1 / n1
                harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
            n = float(self._width)
            delta_prime = self._delta / math.log(max(n, math.e))
            variance = self.variance
            log_term = math.log(2.0 / delta_prime)
            epsilon = np.sqrt((2.0 / harmonic) * variance * log_term) + (
                2.0 / (3.0 * harmonic)
            ) * log_term
            cut = valid & (np.abs(mean0 - mean1) > epsilon)
            if not cut.any():
                return change_found
            change_found = True
            self._drop_oldest_bucket()
