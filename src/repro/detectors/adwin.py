"""ADWIN — ADaptive WINdowing (Bifet & Gavalda, 2007).

ADWIN maintains a variable-length window of recent real values, stored in an
exponential histogram of buckets.  Whenever the means of two sub-windows
differ by more than a bound derived from the Hoeffding inequality, the older
sub-window is dropped and a change is signalled.  Besides being one of the
reference detectors, ADWIN provides the *self-adaptive window size* used by
RBM-IM's trend estimation (Eq. 28-37 of the paper), exposed through
:attr:`ADWIN.width`.
"""

from __future__ import annotations

import math
from collections import deque

from repro.detectors.base import ErrorRateDetector

__all__ = ["ADWIN"]

_MAX_BUCKETS_PER_ROW = 5


class _BucketRow:
    """A row of buckets, all holding ``2**level`` elements each."""

    __slots__ = ("totals", "variances")

    def __init__(self) -> None:
        self.totals: deque[float] = deque()
        self.variances: deque[float] = deque()

    def __len__(self) -> int:
        return len(self.totals)

    def append(self, total: float, variance: float) -> None:
        self.totals.append(total)
        self.variances.append(variance)

    def pop_oldest(self) -> tuple[float, float]:
        return self.totals.popleft(), self.variances.popleft()


class ADWIN(ErrorRateDetector):
    """Adaptive sliding-window change detector over a real-valued signal.

    Parameters
    ----------
    delta:
        Confidence parameter of the Hoeffding-style cut test (smaller values
        make the detector more conservative).
    min_window_length:
        Minimum sub-window length considered when looking for a cut.
    clock:
        Number of observations between cut checks (1 = check every instance).
    """

    def __init__(
        self, delta: float = 0.002, min_window_length: int = 5, clock: int = 32
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if min_window_length < 1:
            raise ValueError("min_window_length must be >= 1")
        if clock < 1:
            raise ValueError("clock must be >= 1")
        self._delta = delta
        self._min_window_length = min_window_length
        self._clock = clock
        self._init_buckets()

    def _init_buckets(self) -> None:
        self._rows: list[_BucketRow] = [_BucketRow()]
        self._total = 0.0
        self._variance = 0.0
        self._width = 0
        self._tick = 0

    def reset(self) -> None:
        super().reset()
        self._init_buckets()

    # ------------------------------------------------------------ properties
    @property
    def width(self) -> int:
        """Current adaptive window length."""
        return self._width

    @property
    def estimation(self) -> float:
        """Mean of the values currently inside the window."""
        if self._width == 0:
            return 0.0
        return self._total / self._width

    @property
    def variance(self) -> float:
        """Variance of the values currently inside the window."""
        if self._width == 0:
            return 0.0
        return self._variance / self._width

    # -------------------------------------------------------------- updates
    def add_element(self, value: float) -> None:
        self._insert(value)
        self._tick += 1
        if self._tick % self._clock == 0 and self._width > self._min_window_length:
            if self._detect_cut():
                self._in_drift = True

    def _insert(self, value: float) -> None:
        if self._width > 0:
            mean = self._total / self._width
            incremental_variance = (
                (self._width / (self._width + 1.0)) * (value - mean) * (value - mean)
            )
        else:
            incremental_variance = 0.0
        self._width += 1
        self._total += value
        self._variance += incremental_variance
        self._rows[0].append(value, 0.0)
        self._compress()

    def _compress(self) -> None:
        level = 0
        while level < len(self._rows):
            row = self._rows[level]
            if len(row) <= _MAX_BUCKETS_PER_ROW:
                break
            if level + 1 == len(self._rows):
                self._rows.append(_BucketRow())
            total_1, variance_1 = row.pop_oldest()
            total_2, variance_2 = row.pop_oldest()
            n = float(2**level)
            mean_1, mean_2 = total_1 / n, total_2 / n
            merged_variance = (
                variance_1
                + variance_2
                + n * n / (2.0 * n) * (mean_1 - mean_2) * (mean_1 - mean_2)
            )
            self._rows[level + 1].append(total_1 + total_2, merged_variance)
            level += 1

    def _iter_buckets_oldest_first(self):
        for level in range(len(self._rows) - 1, -1, -1):
            row = self._rows[level]
            size = float(2**level)
            for total, variance in zip(row.totals, row.variances):
                yield size, total, variance

    def _detect_cut(self) -> bool:
        """Look for a split point where the two sub-window means differ."""
        change_found = False
        keep_looking = True
        while keep_looking:
            keep_looking = False
            n0 = 0.0
            sum0 = 0.0
            n1 = float(self._width)
            sum1 = self._total
            buckets = list(self._iter_buckets_oldest_first())
            for size, total, _variance in buckets[:-1]:
                n0 += size
                sum0 += total
                n1 -= size
                sum1 -= total
                if n0 < self._min_window_length or n1 < self._min_window_length:
                    continue
                mean0 = sum0 / n0
                mean1 = sum1 / n1
                if self._cut_expression(n0, n1, mean0, mean1):
                    change_found = True
                    keep_looking = True
                    self._drop_oldest_bucket()
                    break
        return change_found

    def _cut_expression(
        self, n0: float, n1: float, mean0: float, mean1: float
    ) -> bool:
        n = float(self._width)
        harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
        delta_prime = self._delta / math.log(max(n, math.e))
        variance = self.variance
        epsilon = math.sqrt(
            (2.0 / harmonic) * variance * math.log(2.0 / delta_prime)
        ) + (2.0 / (3.0 * harmonic)) * math.log(2.0 / delta_prime)
        return abs(mean0 - mean1) > epsilon

    def _drop_oldest_bucket(self) -> None:
        level = len(self._rows) - 1
        while level >= 0 and len(self._rows[level]) == 0:
            level -= 1
        if level < 0:
            return
        size = float(2**level)
        total, variance = self._rows[level].pop_oldest()
        if self._width > size:
            mean = total / size
            overall_mean = self._total / self._width
            self._variance -= variance + size * (self._width - size) / self._width * (
                mean - overall_mean
            ) * (mean - overall_mean)
            self._variance = max(self._variance, 0.0)
        self._width -= int(size)
        self._total -= total
        if self._width <= 0:
            self._init_buckets()
