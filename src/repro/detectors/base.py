"""Common interface for all concept-drift detectors.

The paper compares detectors that consume very different signals: standard
detectors monitor the classifier's error stream, imbalance-aware detectors
monitor per-class performance, and RBM-IM consumes raw instances.  To let the
prequential harness treat them uniformly, every detector implements
:meth:`DriftDetector.step`, which receives the feature vector, the true label,
and the classifier's prediction; each family overrides the level it needs.

Detector state after each step is exposed through :attr:`in_warning`,
:attr:`in_drift`, and (for class-aware detectors) :attr:`drifted_classes`.
Detections are also logged with their positions for delay/false-alarm
analysis.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "DriftDetector",
    "ErrorRateDetector",
    "ClassConditionalDetector",
    "InstanceDetector",
]


class DriftDetector(abc.ABC):
    """Base class for concept drift detectors.

    Subclasses set ``self._in_drift`` / ``self._in_warning`` during
    :meth:`step`; the base class maintains detection bookkeeping (positions of
    signalled drifts, total number of observations).
    """

    def __init__(self) -> None:
        self._in_drift = False
        self._in_warning = False
        self._n_observations = 0
        self._detections: list[int] = []
        self._detection_classes: list[set[int] | None] = []
        self._drifted_classes: set[int] | None = None

    # ------------------------------------------------------------------ API
    @property
    def in_drift(self) -> bool:
        """True if the most recent step signalled a drift."""
        return self._in_drift

    @property
    def in_warning(self) -> bool:
        """True if the most recent step signalled a warning."""
        return self._in_warning

    @property
    def drifted_classes(self) -> set[int] | None:
        """Classes the latest drift is attributed to (None = global/unknown)."""
        return self._drifted_classes

    @property
    def n_observations(self) -> int:
        """Number of observations consumed since the last reset."""
        return self._n_observations

    @property
    def detections(self) -> list[int]:
        """Observation indices (1-based) at which drifts were signalled."""
        return list(self._detections)

    @property
    def detection_classes(self) -> list[set[int] | None]:
        """For each detection, the classes blamed (None = global/unknown)."""
        return list(self._detection_classes)

    def reset(self) -> None:
        """Reset all detector state (called after drift-triggered rebuilds)."""
        self._in_drift = False
        self._in_warning = False
        self._n_observations = 0
        self._detections = []
        self._detection_classes = []
        self._drifted_classes = None

    def warm_start(self, X, y) -> None:
        """Optional initial training on the first batch of the stream.

        Most detectors are stateless with respect to raw data and ignore the
        warm-up batch; trainable detectors (e.g. RBM-IM) override this.
        """

    # ----------------------------------------------------------- lifecycle
    def step(self, x: np.ndarray, y_true: int, y_pred: int) -> bool:
        """Consume one labelled prediction and return ``in_drift``."""
        self._n_observations += 1
        self._in_drift = False
        self._in_warning = False
        self._drifted_classes = None
        self._update(x, y_true, y_pred)
        if self._in_drift:
            self._detections.append(self._n_observations)
            self._detection_classes.append(
                set(self._drifted_classes) if self._drifted_classes else None
            )
        return self._in_drift

    def step_batch(
        self,
        features: np.ndarray,
        y_true: np.ndarray,
        y_pred: np.ndarray,
    ) -> np.ndarray:
        """Consume a batch of labelled predictions.

        Returns a boolean array marking, for every instance of the batch,
        whether a drift was signalled at that instance.  The default adapter
        loops over :meth:`step`, so all detectors work unchanged; detectors
        that buffer mini-batches internally (RBM-IM) override it with a
        native batch path that produces identical detections.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        flags = np.zeros(y_true.shape[0], dtype=bool)
        for i in range(y_true.shape[0]):
            flags[i] = self.step(features[i], int(y_true[i]), int(y_pred[i]))
        return flags

    @abc.abstractmethod
    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        """Detector-specific update; must set ``_in_drift`` / ``_in_warning``."""


class ErrorRateDetector(DriftDetector):
    """Detectors that monitor the binary error stream of the classifier.

    Subclasses implement :meth:`add_element`, receiving 1.0 for a
    misclassification and 0.0 for a correct prediction (some detectors also
    accept arbitrary real-valued signals).
    """

    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        self.add_element(float(y_true != y_pred))

    @abc.abstractmethod
    def add_element(self, value: float) -> None:
        """Consume one monitored value (typically the 0/1 error)."""


class ClassConditionalDetector(DriftDetector):
    """Detectors that monitor per-class performance (PerfSim, DDM-OCI, RBM-IM).

    Subclasses implement :meth:`add_result` and may populate
    ``self._drifted_classes`` with the classes responsible for a detection.
    """

    def __init__(self, n_classes: int) -> None:
        super().__init__()
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_classes = n_classes

    @property
    def n_classes(self) -> int:
        return self._n_classes

    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        self.add_result(y_true, y_pred)

    @abc.abstractmethod
    def add_result(self, y_true: int, y_pred: int) -> None:
        """Consume one (true label, predicted label) pair."""


class InstanceDetector(DriftDetector):
    """Detectors that consume raw instances (feature vector + true label)."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        super().__init__()
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_features = n_features
        self._n_classes = n_classes

    @property
    def n_features(self) -> int:
        return self._n_features

    @property
    def n_classes(self) -> int:
        return self._n_classes

    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        self.add_instance(np.asarray(x, dtype=np.float64), int(y_true))

    @abc.abstractmethod
    def add_instance(self, x: np.ndarray, y: int) -> None:
        """Consume one labelled instance."""
