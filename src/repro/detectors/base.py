"""Common interface for all concept-drift detectors.

The paper compares detectors that consume very different signals: standard
detectors monitor the classifier's error stream, imbalance-aware detectors
monitor per-class performance, and RBM-IM consumes raw instances.  To let the
prequential harness treat them uniformly, every detector implements
:meth:`DriftDetector.step`, which receives the feature vector, the true label,
and the classifier's prediction; each family overrides the level it needs.

Detector state after each step is exposed through :attr:`in_warning`,
:attr:`in_drift`, and (for class-aware detectors) :attr:`drifted_classes`.
Detections are also logged with their positions for delay/false-alarm
analysis.

Batch stepping
--------------
:meth:`DriftDetector.step_batch` consumes a whole chunk at once and returns a
boolean drift flag per instance.  The contract is *chunk-exactness*: for any
split of the stream into batches, the flagged positions (and the recorded
detections, blamed classes, and observation counts) are identical to stepping
the same stream one instance at a time.  Every detector in the registry ships
a NumPy-native kernel built on :mod:`repro.core.windows`; the family base
classes here provide the shared plumbing (error extraction, detection
bookkeeping) plus a per-instance fallback so third-party subclasses that only
implement the scalar hook keep working unchanged.

The transpose of batch stepping — one vectorized call advancing N
*independent* detector instances by one element each — lives in
:mod:`repro.fleet`; detectors that support it declare their constructor
parameters through ``clone_params`` so the fleet can replicate a configured
instance across lanes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = [
    "DriftDetector",
    "ErrorRateDetector",
    "ClassConditionalDetector",
    "InstanceDetector",
]


class DriftDetector(Snapshotable, abc.ABC):
    """Base class for concept drift detectors.

    Subclasses set ``self._in_drift`` / ``self._in_warning`` during
    :meth:`step`; the base class maintains detection bookkeeping (positions of
    signalled drifts, total number of observations).

    Every detector is :class:`~repro.core.snapshot.Snapshotable`: the generic
    full-state walk captures the drift/warning flags, the detection
    bookkeeping, and all subclass statistics (windows, running sums,
    minima), so ``snapshot()``/``restore()`` round-trips are bit-identical
    under the same chunk-exactness contract as :meth:`step_batch`.
    """

    def __init__(self) -> None:
        self._in_drift = False
        self._in_warning = False
        self._n_observations = 0
        self._detections: list[int] = []
        self._detection_classes: list[set[int] | None] = []
        self._drifted_classes: set[int] | None = None

    # ------------------------------------------------------------------ API
    @property
    def in_drift(self) -> bool:
        """True if the most recent step signalled a drift."""
        return self._in_drift

    @property
    def in_warning(self) -> bool:
        """True if the most recent step signalled a warning."""
        return self._in_warning

    @property
    def drifted_classes(self) -> set[int] | None:
        """Classes the latest drift is attributed to (None = global/unknown)."""
        return self._drifted_classes

    @property
    def n_observations(self) -> int:
        """Number of observations consumed since the last reset."""
        return self._n_observations

    @property
    def detections(self) -> list[int]:
        """Observation indices (1-based) at which drifts were signalled."""
        return list(self._detections)

    @property
    def detection_classes(self) -> list[set[int] | None]:
        """For each detection, the classes blamed (None = global/unknown)."""
        return list(self._detection_classes)

    def reset(self) -> None:
        """Reset all detector state (called after drift-triggered rebuilds)."""
        self._in_drift = False
        self._in_warning = False
        self._n_observations = 0
        self._detections = []
        self._detection_classes = []
        self._drifted_classes = None

    def warm_start(self, X, y) -> None:
        """Optional initial training on the first batch of the stream.

        Most detectors are stateless with respect to raw data and ignore the
        warm-up batch; trainable detectors (e.g. RBM-IM) override this.
        """

    # ----------------------------------------------------------- lifecycle
    def step(self, x: np.ndarray, y_true: int, y_pred: int) -> bool:
        """Consume one labelled prediction and return ``in_drift``."""
        self._n_observations += 1
        self._in_drift = False
        self._in_warning = False
        self._drifted_classes = None
        self._update(x, y_true, y_pred)
        if self._in_drift:
            self._detections.append(self._n_observations)
            self._detection_classes.append(
                set(self._drifted_classes) if self._drifted_classes else None
            )
        return self._in_drift

    def step_batch(
        self,
        features: np.ndarray,
        y_true: np.ndarray,
        y_pred: np.ndarray,
    ) -> np.ndarray:
        """Consume a batch of labelled predictions.

        Returns a boolean array marking, for every instance of the batch,
        whether a drift was signalled at that instance — chunk-exact: the
        same positions a per-instance :meth:`step` loop would flag.  The
        family base classes (:class:`ErrorRateDetector`,
        :class:`ClassConditionalDetector`) route this through NumPy-native
        kernels; this base implementation is the per-instance fallback for
        detectors outside those families.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        flags = np.zeros(y_true.shape[0], dtype=bool)
        for i in range(y_true.shape[0]):
            flags[i] = self.step(features[i], int(y_true[i]), int(y_pred[i]))
        return flags

    def _record_batch(
        self,
        flags: np.ndarray,
        start_observations: int,
        detection_classes: list[set[int] | None] | None = None,
    ) -> None:
        """Commit a batch kernel's flags into the detection bookkeeping.

        Reproduces what :meth:`step` does per instance: observation counting
        and 1-based detection positions, plus (for class-aware detectors) the
        classes blamed for each detection, aligned with ``flags``'s True
        positions.
        """
        self._n_observations = start_observations + int(flags.shape[0])
        positions = np.flatnonzero(flags)
        for order, position in enumerate(positions):
            self._detections.append(start_observations + int(position) + 1)
            blamed = (
                detection_classes[order] if detection_classes is not None else None
            )
            self._detection_classes.append(set(blamed) if blamed else None)

    @abc.abstractmethod
    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        """Detector-specific update; must set ``_in_drift`` / ``_in_warning``."""


class ErrorRateDetector(DriftDetector):
    """Detectors that monitor the binary error stream of the classifier.

    Subclasses implement :meth:`add_element`, receiving 1.0 for a
    misclassification and 0.0 for a correct prediction (some detectors also
    accept arbitrary real-valued signals).
    """

    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        self.add_element(float(y_true != y_pred))

    def step_batch(
        self,
        features: np.ndarray,
        y_true: np.ndarray,
        y_pred: np.ndarray,
    ) -> np.ndarray:
        """Batch stepping over the error stream (chunk-exact).

        Extracts the 0/1 error indicators once and hands them to
        :meth:`_add_elements` — the detector's vectorized kernel, or the
        scalar fallback loop for subclasses without one.  ``features`` is
        accepted for interface uniformity and ignored, as in :meth:`step`.
        """
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        errors = (y_true != y_pred).astype(np.float64)
        start = self._n_observations
        flags = self._add_elements(errors)
        self._record_batch(flags, start)
        return flags

    def step_values(self, values: np.ndarray) -> np.ndarray:
        """Consume monitored values directly, bypassing label extraction.

        Same chunk-exact contract and bookkeeping as :meth:`step_batch`, but
        ``values`` is the raw monitored signal (the 0/1 error indicator for
        most detectors; real-valued signals for the detectors that accept
        them, exactly as :meth:`add_element` would receive it).  This is the
        entry point the fleet engine's loop-of-scalars adapter drives — per
        stream, per tick, there is no (y_true, y_pred) pair to extract from.
        """
        values = np.asarray(values, dtype=np.float64)
        start = self._n_observations
        flags = self._add_elements(values)
        self._record_batch(flags, start)
        return flags

    def _add_elements(self, errors: np.ndarray) -> np.ndarray:
        """Consume a 0/1 error array; return a per-element drift flag array.

        Fallback implementation loops over :meth:`add_element` with the same
        per-step state resets as :meth:`step`; registry detectors override it
        with NumPy kernels built on :mod:`repro.core.windows`.  Kernels must
        leave ``_in_drift`` / ``_in_warning`` reflecting the final element
        and must not touch the detection bookkeeping (handled by the caller).
        """
        flags = np.zeros(errors.shape[0], dtype=bool)
        for i, value in enumerate(errors.tolist()):
            self._in_drift = False
            self._in_warning = False
            self._drifted_classes = None
            self.add_element(value)
            flags[i] = self._in_drift
        return flags

    def _run_segments(self, errors: np.ndarray) -> np.ndarray:
        """Shared driver for segment-based kernels.

        Repeatedly hands the unconsumed tail to :meth:`_kernel_segment`,
        which processes elements of the current concept until a detection
        (after which the concept state has been reset and the driver resumes
        on the remainder) or the end of the chunk, returning ``(elements
        consumed, last element drifted, last element in warning)``.  An empty
        chunk is a strict no-op — state, including the drift/warning flags of
        the previous step, is preserved, exactly like a zero-iteration scalar
        loop.
        """
        n = errors.shape[0]
        flags = np.zeros(n, dtype=bool)
        if n == 0:
            return flags
        self._in_drift = False
        self._in_warning = False
        self._drifted_classes = None
        start = 0
        while start < n:
            consumed, drifted, warning = self._kernel_segment(errors[start:])
            if drifted:
                flags[start + consumed - 1] = True
            self._in_drift = drifted
            self._in_warning = warning
            start += consumed
        return flags

    def _kernel_segment(self, errors: np.ndarray) -> tuple[int, bool, bool]:
        """Segment kernel hook used by :meth:`_run_segments` overrides."""
        raise NotImplementedError

    @abc.abstractmethod
    def add_element(self, value: float) -> None:
        """Consume one monitored value (typically the 0/1 error)."""


class ClassConditionalDetector(DriftDetector):
    """Detectors that monitor per-class performance (PerfSim, DDM-OCI, RBM-IM).

    Subclasses implement :meth:`add_result` and may populate
    ``self._drifted_classes`` with the classes responsible for a detection.
    """

    def __init__(self, n_classes: int) -> None:
        super().__init__()
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_classes = n_classes

    @property
    def n_classes(self) -> int:
        return self._n_classes

    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        self.add_result(y_true, y_pred)

    def step_batch(
        self,
        features: np.ndarray,
        y_true: np.ndarray,
        y_pred: np.ndarray,
    ) -> np.ndarray:
        """Batch stepping over (true, predicted) label pairs (chunk-exact)."""
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        start = self._n_observations
        flags, classes = self._add_results(y_true, y_pred)
        self._record_batch(flags, start, classes)
        return flags

    def _add_results(
        self, y_true: np.ndarray, y_pred: np.ndarray
    ) -> tuple[np.ndarray, list[set[int] | None]]:
        """Consume label pairs; return per-element flags + per-detection classes.

        The classes list is aligned with the True positions of the flag
        array.  The fallback loops over :meth:`add_result`; PerfSim and
        DDM-OCI override it with native kernels.
        """
        flags = np.zeros(y_true.shape[0], dtype=bool)
        classes: list[set[int] | None] = []
        for i in range(y_true.shape[0]):
            self._in_drift = False
            self._in_warning = False
            self._drifted_classes = None
            self.add_result(int(y_true[i]), int(y_pred[i]))
            if self._in_drift:
                flags[i] = True
                classes.append(
                    set(self._drifted_classes) if self._drifted_classes else None
                )
        return flags, classes

    @abc.abstractmethod
    def add_result(self, y_true: int, y_pred: int) -> None:
        """Consume one (true label, predicted label) pair."""


class InstanceDetector(DriftDetector):
    """Detectors that consume raw instances (feature vector + true label)."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        super().__init__()
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_features = n_features
        self._n_classes = n_classes

    @property
    def n_features(self) -> int:
        return self._n_features

    @property
    def n_classes(self) -> int:
        return self._n_classes

    def _update(self, x: np.ndarray, y_true: int, y_pred: int) -> None:
        self.add_instance(np.asarray(x, dtype=np.float64), int(y_true))

    @abc.abstractmethod
    def add_instance(self, x: np.ndarray, y: int) -> None:
        """Consume one labelled instance."""
