"""PerfSim drift detector for imbalanced streams (Antwi et al., 2012).

PerfSim monitors the *entire confusion matrix*: the per-class true-positive /
false-positive / false-negative / true-negative counts over consecutive
batches of instances are vectorised and compared with the cosine similarity.
A similarity drop beyond the allowed differentiation weight ``lambda_`` is
interpreted as a concept drift.  Because the whole matrix is monitored,
changes in minority-class behaviour contribute to the statistic even when the
overall accuracy is unaffected — which is why the paper uses PerfSim as one of
the two skew-insensitive reference detectors.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import ClassConditionalDetector

__all__ = ["PerfSim"]


class PerfSim(ClassConditionalDetector):
    """Cosine-similarity test on consecutive confusion matrices.

    Parameters
    ----------
    n_classes:
        Number of classes monitored.
    batch_size:
        Number of predictions accumulated per comparison batch.
    lambda_:
        Differentiation weight: maximum allowed drop in cosine similarity
        between consecutive batches before a drift is signalled (0.1-0.4 in
        the paper's tuning grid).
    min_errors:
        Minimum number of misclassifications inside the batch for the test to
        be considered reliable (mirrors the ``n`` parameter of Table II).
    warning_fraction:
        Fraction of ``lambda_`` at which the warning state is raised.
    """

    def __init__(
        self,
        n_classes: int,
        batch_size: int = 500,
        lambda_: float = 0.2,
        min_errors: int = 30,
        warning_fraction: float = 0.5,
    ) -> None:
        super().__init__(n_classes)
        if batch_size < 10:
            raise ValueError("batch_size must be >= 10")
        if not 0.0 < lambda_ < 1.0:
            raise ValueError("lambda_ must be in (0, 1)")
        if not 0.0 < warning_fraction < 1.0:
            raise ValueError("warning_fraction must be in (0, 1)")
        self._batch_size = batch_size
        self._lambda = lambda_
        self._min_errors = min_errors
        self._warning_fraction = warning_fraction
        self._reset_concept()

    def _reset_concept(self) -> None:
        self._current = np.zeros((self._n_classes, self._n_classes), dtype=np.float64)
        self._current_count = 0
        self._current_errors = 0
        self._reference: np.ndarray | None = None

    def reset(self) -> None:
        super().reset()
        self._reset_concept()

    @staticmethod
    def _cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
        va, vb = a.ravel(), b.ravel()
        norm = np.linalg.norm(va) * np.linalg.norm(vb)
        if norm == 0.0:
            return 1.0
        return float(np.dot(va, vb) / norm)

    def _responsible_classes(
        self, reference: np.ndarray, current: np.ndarray
    ) -> set[int]:
        """Classes whose confusion-matrix rows changed the most."""
        reference_rows = reference / np.maximum(reference.sum(axis=1, keepdims=True), 1.0)
        current_rows = current / np.maximum(current.sum(axis=1, keepdims=True), 1.0)
        deltas = np.abs(reference_rows - current_rows).sum(axis=1)
        threshold = max(float(deltas.mean()), 1e-9)
        return {int(k) for k in np.where(deltas > threshold)[0]}

    def add_result(self, y_true: int, y_pred: int) -> None:
        self._current[y_true, y_pred] += 1.0
        self._current_count += 1
        if y_true != y_pred:
            self._current_errors += 1
        if self._current_count < self._batch_size:
            return
        self._evaluate_full_batch()

    def _evaluate_full_batch(self) -> None:
        """Compare the completed accumulation batch against the reference."""
        current = self._current
        if self._reference is not None and self._current_errors >= self._min_errors:
            similarity = self._cosine_similarity(self._reference, current)
            drop = 1.0 - similarity
            if drop > self._lambda:
                self._in_drift = True
                self._drifted_classes = self._responsible_classes(
                    self._reference, current
                )
            elif drop > self._warning_fraction * self._lambda:
                self._in_warning = True
        # Whether or not a drift fired, the newest batch becomes the reference.
        self._reference = current
        self._current = np.zeros_like(current)
        self._current_count = 0
        self._current_errors = 0
        if self._in_drift:
            self._reference = None

    # ----------------------------------------------------------- batch kernel
    def _add_results(
        self, y_true: np.ndarray, y_pred: np.ndarray
    ) -> tuple[np.ndarray, list[set[int] | None]]:
        """Accumulate whole sub-chunks into the confusion matrix at once.

        The expensive work (similarity test) only ever happens at batch
        boundaries, which the kernel jumps between directly; the integer
        confusion-matrix increments commute, so the accumulated matrices — and
        therefore the detections — are bit-identical to per-instance stepping.
        """
        n = y_true.shape[0]
        flags = np.zeros(n, dtype=bool)
        classes: list[set[int] | None] = []
        if n == 0:
            return flags, classes
        self._in_drift = False
        self._in_warning = False
        self._drifted_classes = None
        consumed = 0
        while consumed < n:
            take = min(self._batch_size - self._current_count, n - consumed)
            chunk_true = y_true[consumed : consumed + take]
            chunk_pred = y_pred[consumed : consumed + take]
            np.add.at(self._current, (chunk_true, chunk_pred), 1.0)
            self._current_count += take
            self._current_errors += int(np.count_nonzero(chunk_true != chunk_pred))
            consumed += take
            self._in_drift = False
            self._in_warning = False
            self._drifted_classes = None
            if self._current_count >= self._batch_size:
                self._evaluate_full_batch()
                if self._in_drift:
                    flags[consumed - 1] = True
                    classes.append(
                        set(self._drifted_classes) if self._drifted_classes else None
                    )
        return flags, classes
