"""Reproduction of "Concept Drift Detection from Multi-Class Imbalanced Data Streams".

The package provides:

* :mod:`repro.core` — RBM-IM, the trainable skew-insensitive drift detector;
* :mod:`repro.streams` — stream generators, drift injection, imbalance control,
  the paper's benchmark scenarios, and real-world surrogates;
* :mod:`repro.detectors` — standard and imbalance-aware baseline detectors;
* :mod:`repro.classifiers` — streaming classifiers, including the paper's
  cost-sensitive perceptron tree;
* :mod:`repro.metrics` — prequential multi-class AUC / G-mean and drift scoring;
* :mod:`repro.evaluation` — the prequential harness, experiment orchestration,
  statistical tests, and online hyper-parameter tuning;
* :mod:`repro.protocol` — the end-to-end, resumable reproduction of the
  paper's protocol (``python -m repro.protocol run``).

Quick start::

    from repro.core import RBMIM, RBMIMConfig
    from repro.evaluation import PrequentialRunner, default_classifier_factory
    from repro.streams import scenario_local_drift

    scenario = scenario_local_drift(n_classes=5, n_drifted_classes=1, seed=1)
    detector = RBMIM(scenario.n_features, scenario.n_classes, RBMIMConfig(seed=1))
    runner = PrequentialRunner(default_classifier_factory)
    result = runner.run(scenario, detector, n_instances=10_000)
    print(result.pmauc, result.detections)
"""

from repro.core import RBMIM, RBMIMConfig, SkewInsensitiveRBM
from repro.evaluation import PrequentialRunner, compare_detectors
from repro.streams import (
    make_artificial_stream,
    real_world_stream,
    scenario_global_drift,
    scenario_local_drift,
    scenario_role_switching,
)

__version__ = "1.0.0"

__all__ = [
    "RBMIM",
    "RBMIMConfig",
    "SkewInsensitiveRBM",
    "PrequentialRunner",
    "compare_detectors",
    "make_artificial_stream",
    "real_world_stream",
    "scenario_global_drift",
    "scenario_local_drift",
    "scenario_role_switching",
    "__version__",
]
