"""Reproduction of "Concept Drift Detection from Multi-Class Imbalanced Data Streams".

The package provides:

* :mod:`repro.core` — RBM-IM, the trainable skew-insensitive drift detector;
* :mod:`repro.streams` — stream generators, drift injection, imbalance control,
  the paper's benchmark scenarios, and real-world surrogates;
* :mod:`repro.detectors` — standard and imbalance-aware baseline detectors;
* :mod:`repro.classifiers` — streaming classifiers, including the paper's
  cost-sensitive perceptron tree;
* :mod:`repro.metrics` — prequential multi-class AUC / G-mean and drift scoring;
* :mod:`repro.evaluation` — the prequential harness, experiment orchestration,
  statistical tests, and online hyper-parameter tuning;
* :mod:`repro.protocol` — the end-to-end, resumable reproduction of the
  paper's protocol (``python -m repro.protocol run``);
* :mod:`repro.analysis` — the stdlib-only invariant linter that enforces the
  repo's determinism / durability / chunk-exactness contracts
  (``python -m repro.analysis --strict src/repro``).

Quick start::

    from repro.core import RBMIM, RBMIMConfig
    from repro.evaluation import PrequentialRunner, default_classifier_factory
    from repro.streams import scenario_local_drift

    scenario = scenario_local_drift(n_classes=5, n_drifted_classes=1, seed=1)
    detector = RBMIM(scenario.n_features, scenario.n_classes, RBMIMConfig(seed=1))
    runner = PrequentialRunner(default_classifier_factory)
    result = runner.run(scenario, detector, n_instances=10_000)
    print(result.pmauc, result.detections)

The convenience re-exports below resolve lazily (PEP 562): importing
``repro`` itself pulls in **no third-party dependency**, so the stdlib-only
:mod:`repro.analysis` linter runs in environments without NumPy (e.g. the
dependency-free CI lint job).  ``from repro import RBMIM`` still works — the
heavy subpackage is imported on first attribute access.
"""

from __future__ import annotations

import importlib

__version__ = "1.0.0"

#: Lazily-resolved convenience exports: attribute name -> providing module.
_LAZY_EXPORTS = {
    "RBMIM": "repro.core",
    "RBMIMConfig": "repro.core",
    "SkewInsensitiveRBM": "repro.core",
    "PrequentialRunner": "repro.evaluation",
    "compare_detectors": "repro.evaluation",
    "make_artificial_stream": "repro.streams",
    "real_world_stream": "repro.streams",
    "scenario_global_drift": "repro.streams",
    "scenario_local_drift": "repro.streams",
    "scenario_role_switching": "repro.streams",
}

__all__ = [*sorted(_LAZY_EXPORTS), "__version__"]


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
