"""Online Gaussian naive Bayes classifier.

Per-class, per-feature running means and variances (Welford's algorithm) give
a fully incremental Gaussian naive Bayes model — a light-weight baseline used
in tests, examples, and as an alternative leaf model for the perceptron tree.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import StreamClassifier

__all__ = ["GaussianNaiveBayes"]

_MIN_VARIANCE = 1e-6


class GaussianNaiveBayes(StreamClassifier):
    """Incremental Gaussian naive Bayes with additive-smoothed priors."""

    def __init__(self, n_features: int, n_classes: int, prior_smoothing: float = 1.0) -> None:
        super().__init__(n_features, n_classes)
        if prior_smoothing < 0.0:
            raise ValueError("prior_smoothing must be >= 0")
        self._prior_smoothing = prior_smoothing
        self._init_state()

    def _init_state(self) -> None:
        self._counts = np.zeros(self._n_classes, dtype=np.float64)
        self._means = np.zeros((self._n_classes, self._n_features))
        self._m2 = np.zeros((self._n_classes, self._n_features))

    def reset(self) -> None:
        self._init_state()

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = int(y)
        # Weighted Welford update.
        self._counts[y] += weight
        delta = x - self._means[y]
        self._means[y] += weight * delta / self._counts[y]
        self._m2[y] += weight * delta * (x - self._means[y])

    def partial_fit_batch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Vectorized batch update via per-class moment merging.

        Uses the Chan/parallel-Welford combination formula per class, which is
        mathematically identical to replaying the batch instance by instance
        (per-class moments are independent of the interleaving) up to float
        rounding.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        if weights is None:
            weights = np.ones(labels.shape[0])
        else:
            weights = np.asarray(weights, dtype=np.float64)
        for label in np.unique(labels):
            mask = labels == label
            w = weights[mask]
            w_sum = float(w.sum())
            if w_sum <= 0.0:
                continue
            batch_mean = np.average(features[mask], axis=0, weights=w)
            batch_m2 = np.sum(
                w[:, None] * (features[mask] - batch_mean) ** 2, axis=0
            )
            count = self._counts[label]
            total = count + w_sum
            delta = batch_mean - self._means[label]
            self._means[label] += delta * (w_sum / total)
            self._m2[label] += batch_m2 + delta**2 * (count * w_sum / total)
            self._counts[label] = total

    def predict_proba_batch(self, features: np.ndarray) -> np.ndarray:
        """Fully vectorized posterior for a batch, shape ``(n, n_classes)``."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        total = self._counts.sum()
        priors = (self._counts + self._prior_smoothing) / (
            total + self._prior_smoothing * self._n_classes
        )
        variance = np.maximum(
            self._m2 / np.maximum(self._counts[:, None], 1.0), _MIN_VARIANCE
        )
        diff = features[:, None, :] - self._means[None, :, :]
        log_likelihoods = -0.5 * np.sum(
            np.log(2.0 * np.pi * variance)[None] + diff**2 / variance[None], axis=2
        )
        # Mirror the per-instance guards for unseen / single-instance classes.
        log_likelihoods[:, self._counts == 0.0] = -1e6
        log_likelihoods[:, (self._counts > 0.0) & (self._counts < 2.0)] = 0.0
        log_posterior = np.log(priors)[None] + log_likelihoods
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum(axis=1, keepdims=True)

    def _log_likelihood(self, x: np.ndarray) -> np.ndarray:
        log_likelihoods = np.zeros(self._n_classes)
        for label in range(self._n_classes):
            if self._counts[label] < 2.0:
                log_likelihoods[label] = -1e6 if self._counts[label] == 0 else 0.0
                continue
            variance = self._m2[label] / self._counts[label]
            variance = np.maximum(variance, _MIN_VARIANCE)
            diff = x - self._means[label]
            log_likelihoods[label] = float(
                -0.5 * np.sum(np.log(2.0 * np.pi * variance) + diff**2 / variance)
            )
        return log_likelihoods

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = self._counts.sum()
        priors = (self._counts + self._prior_smoothing) / (
            total + self._prior_smoothing * self._n_classes
        )
        log_posterior = np.log(priors) + self._log_likelihood(x)
        log_posterior -= log_posterior.max()
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum()
