"""Online Gaussian naive Bayes classifier.

Per-class, per-feature running means and variances (Welford's algorithm) give
a fully incremental Gaussian naive Bayes model — a light-weight baseline used
in tests, examples, and as an alternative leaf model for the perceptron tree.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import StreamClassifier

__all__ = ["GaussianNaiveBayes"]

_MIN_VARIANCE = 1e-6


class GaussianNaiveBayes(StreamClassifier):
    """Incremental Gaussian naive Bayes with additive-smoothed priors."""

    def __init__(self, n_features: int, n_classes: int, prior_smoothing: float = 1.0) -> None:
        super().__init__(n_features, n_classes)
        if prior_smoothing < 0.0:
            raise ValueError("prior_smoothing must be >= 0")
        self._prior_smoothing = prior_smoothing
        self._init_state()

    def _init_state(self) -> None:
        self._counts = np.zeros(self._n_classes, dtype=np.float64)
        self._means = np.zeros((self._n_classes, self._n_features))
        self._m2 = np.zeros((self._n_classes, self._n_features))

    def reset(self) -> None:
        self._init_state()

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = int(y)
        # Weighted Welford update.
        self._counts[y] += weight
        delta = x - self._means[y]
        self._means[y] += weight * delta / self._counts[y]
        self._m2[y] += weight * delta * (x - self._means[y])

    def partial_fit_batch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Vectorized batch update via per-class moment merging.

        Uses the Chan/parallel-Welford combination formula per class, which is
        mathematically identical to replaying the batch instance by instance
        (per-class moments are independent of the interleaving) up to float
        rounding.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
        for label in np.unique(labels):
            mask = labels == label
            class_rows = features[mask]
            if weights is None:
                # Unweighted fast path (the batch-mode hot loop): the moment
                # sums need no per-row weight broadcasts.
                w_sum = float(class_rows.shape[0])
                batch_mean = class_rows.sum(axis=0) / w_sum
                centred = class_rows - batch_mean
                centred *= centred
                batch_m2 = centred.sum(axis=0)
            else:
                w = weights[mask]
                w_sum = float(w.sum())
                if w_sum <= 0.0:
                    continue
                weighted = w[:, None] * class_rows
                batch_mean = weighted.sum(axis=0) / w_sum
                batch_m2 = np.sum(
                    w[:, None] * (class_rows - batch_mean) ** 2, axis=0
                )
            count = self._counts[label]
            total = count + w_sum
            delta = batch_mean - self._means[label]
            self._means[label] += delta * (w_sum / total)
            self._m2[label] += batch_m2 + delta**2 * (count * w_sum / total)
            self._counts[label] = total

    def predict_proba_batch(self, features: np.ndarray) -> np.ndarray:
        """Fully vectorized posterior for a batch, shape ``(n, n_classes)``."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        total = self._counts.sum()
        priors = (self._counts + self._prior_smoothing) / (
            total + self._prior_smoothing * self._n_classes
        )
        variance = np.maximum(
            self._m2 / np.maximum(self._counts[:, None], 1.0), _MIN_VARIANCE
        )
        # The x-independent normalisation term is reduced per class once, and
        # the quadratic form runs class by class as a matrix-vector product —
        # the per-class (n, F) temporaries stay cache-resident where one
        # (n, C, F) einsum pass spills.
        inv_variance = 1.0 / variance
        log_norm = np.log(2.0 * np.pi * variance).sum(axis=1)
        quad = np.empty((features.shape[0], self._n_classes))
        for label in range(self._n_classes):
            diff = features - self._means[label]
            diff *= diff
            quad[:, label] = diff @ inv_variance[label]
        log_likelihoods = -0.5 * (log_norm[None, :] + quad)
        # Mirror the per-instance guards for unseen / single-instance classes.
        log_likelihoods[:, self._counts == 0.0] = -1e6
        log_likelihoods[:, (self._counts > 0.0) & (self._counts < 2.0)] = 0.0
        log_posterior = np.log(priors)[None] + log_likelihoods
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum(axis=1, keepdims=True)

    def predict_fit_interleaved(
        self, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Bit-exact vectorized test-then-train over a chunk.

        Row ``i`` is scored with the model state after rows ``0..i-1`` and
        then learned, exactly like the per-instance loop.  The trick: the
        per-class Welford chains are sequential, but each chain only advances
        on its own class's rows, so the chains are replayed once (recording
        every intermediate state) and each row *gathers* the states its
        prediction needs.  Every expression mirrors :meth:`predict_proba` /
        :meth:`partial_fit` — NumPy elementwise ufuncs and last-axis
        reductions are bitwise shape-independent, so the scores and the final
        moments are identical to the instance loop down to the last bit.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        n = labels.shape[0]
        n_classes = self._n_classes
        if n == 0:
            return np.empty((0, n_classes))

        class_range = np.arange(n_classes)
        onehot = labels[:, None] == class_range[None, :]
        per_class_updates = onehot.sum(axis=0)
        # exclusive[i, c]: number of class-c rows strictly before row i =
        # how many updates class c's chain has absorbed when row i is scored.
        exclusive = np.cumsum(onehot, axis=0) - onehot

        max_updates = int(per_class_updates.max())
        counts_hist = np.empty((n_classes, max_updates + 1))
        means_hist = np.empty((n_classes, max_updates + 1, self._n_features))
        m2_hist = np.empty_like(means_hist)
        counts_hist[:, 0] = self._counts
        means_hist[:, 0] = self._means
        m2_hist[:, 0] = self._m2
        for label in range(n_classes):
            k_updates = int(per_class_updates[label])
            if k_updates == 0:
                continue
            rows = features[onehot[:, label]]
            chain_counts = counts_hist[label]
            chain_means = means_hist[label]
            chain_m2 = m2_hist[label]
            count = chain_counts[0]
            mean = chain_means[0]
            m2 = chain_m2[0]
            for k in range(k_updates):
                x = rows[k]
                count = count + 1.0
                delta = x - mean
                mean = mean + delta / count
                m2 = m2 + delta * (x - mean)
                chain_counts[k + 1] = count
                chain_means[k + 1] = mean
                chain_m2[k + 1] = m2

        gather_c = class_range[None, :]
        counts_g = counts_hist[gather_c, exclusive]
        means_g = means_hist[gather_c, exclusive]
        m2_g = m2_hist[gather_c, exclusive]

        # Posterior — same expressions as predict_proba, batched on the
        # leading axis (divisor 1.0 keeps the <2-count rows finite before
        # their likelihoods are overwritten by the guards).
        total = counts_g.sum(axis=1)
        priors = (counts_g + self._prior_smoothing) / (
            total + self._prior_smoothing * n_classes
        )[:, None]
        divisor = np.where(counts_g < 2.0, 1.0, counts_g)
        variance = m2_g / divisor[:, :, None]
        variance = np.maximum(variance, _MIN_VARIANCE)
        diff = features[:, None, :] - means_g
        log_likelihoods = -0.5 * np.sum(
            np.log(2.0 * np.pi * variance) + diff**2 / variance, axis=2
        )
        log_likelihoods[counts_g == 0.0] = -1e6
        log_likelihoods[(counts_g > 0.0) & (counts_g < 2.0)] = 0.0
        log_posterior = np.log(priors) + log_likelihoods
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        scores = posterior / posterior.sum(axis=1, keepdims=True)

        self._counts[:] = counts_hist[class_range, per_class_updates]
        self._means[:] = means_hist[class_range, per_class_updates]
        self._m2[:] = m2_hist[class_range, per_class_updates]
        return scores

    def _log_likelihood(self, x: np.ndarray) -> np.ndarray:
        log_likelihoods = np.zeros(self._n_classes)
        for label in range(self._n_classes):
            if self._counts[label] < 2.0:
                log_likelihoods[label] = -1e6 if self._counts[label] == 0 else 0.0
                continue
            variance = self._m2[label] / self._counts[label]
            variance = np.maximum(variance, _MIN_VARIANCE)
            diff = x - self._means[label]
            log_likelihoods[label] = float(
                -0.5 * np.sum(np.log(2.0 * np.pi * variance) + diff**2 / variance)
            )
        return log_likelihoods

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = self._counts.sum()
        priors = (self._counts + self._prior_smoothing) / (
            total + self._prior_smoothing * self._n_classes
        )
        log_posterior = np.log(priors) + self._log_likelihood(x)
        log_posterior -= log_posterior.max()
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum()
