"""Online Gaussian naive Bayes classifier.

Per-class, per-feature running means and variances (Welford's algorithm) give
a fully incremental Gaussian naive Bayes model — a light-weight baseline used
in tests, examples, and as an alternative leaf model for the perceptron tree.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import StreamClassifier

__all__ = ["GaussianNaiveBayes"]

_MIN_VARIANCE = 1e-6


class GaussianNaiveBayes(StreamClassifier):
    """Incremental Gaussian naive Bayes with additive-smoothed priors."""

    def __init__(self, n_features: int, n_classes: int, prior_smoothing: float = 1.0) -> None:
        super().__init__(n_features, n_classes)
        if prior_smoothing < 0.0:
            raise ValueError("prior_smoothing must be >= 0")
        self._prior_smoothing = prior_smoothing
        self._init_state()

    def _init_state(self) -> None:
        self._counts = np.zeros(self._n_classes, dtype=np.float64)
        self._means = np.zeros((self._n_classes, self._n_features))
        self._m2 = np.zeros((self._n_classes, self._n_features))

    def reset(self) -> None:
        self._init_state()

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = int(y)
        # Weighted Welford update.
        self._counts[y] += weight
        delta = x - self._means[y]
        self._means[y] += weight * delta / self._counts[y]
        self._m2[y] += weight * delta * (x - self._means[y])

    def _log_likelihood(self, x: np.ndarray) -> np.ndarray:
        log_likelihoods = np.zeros(self._n_classes)
        for label in range(self._n_classes):
            if self._counts[label] < 2.0:
                log_likelihoods[label] = -1e6 if self._counts[label] == 0 else 0.0
                continue
            variance = self._m2[label] / self._counts[label]
            variance = np.maximum(variance, _MIN_VARIANCE)
            diff = x - self._means[label]
            log_likelihoods[label] = float(
                -0.5 * np.sum(np.log(2.0 * np.pi * variance) + diff**2 / variance)
            )
        return log_likelihoods

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = self._counts.sum()
        priors = (self._counts + self._prior_smoothing) / (
            total + self._prior_smoothing * self._n_classes
        )
        log_posterior = np.log(priors) + self._log_likelihood(x)
        log_posterior -= log_posterior.max()
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum()
