"""Online multi-class perceptron with optional cost-sensitive updates.

A one-vs-rest linear model trained with perceptron/logistic-style updates on a
running-standardised feature representation.  It is both a standalone baseline
and the leaf model of the cost-sensitive perceptron tree (the paper's base
classifier).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import StreamClassifier

__all__ = ["OnlinePerceptron"]


def _softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class OnlinePerceptron(StreamClassifier):
    """Multi-class online perceptron with running feature standardisation.

    Parameters
    ----------
    learning_rate:
        Step size of the weight updates.
    cost_sensitive:
        When True, each update is additionally weighted by the inverse
        relative frequency of the instance's class, boosting minority-class
        learning (the "cost-sensitive" part of the paper's base classifier).
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        learning_rate: float = 0.1,
        cost_sensitive: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__(n_features, n_classes)
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self._learning_rate = learning_rate
        self._cost_sensitive = cost_sensitive
        self._seed = seed
        self._init_state()

    def _init_state(self) -> None:
        rng = np.random.default_rng(self._seed)
        self._weights = rng.normal(0.0, 0.01, size=(self._n_classes, self._n_features))
        self._bias = np.zeros(self._n_classes)
        self._count = 0
        self._mean = np.zeros(self._n_features)
        self._m2 = np.zeros(self._n_features)
        self._class_counts = np.zeros(self._n_classes, dtype=np.float64)

    def reset(self) -> None:
        self._init_state()

    @property
    def class_counts(self) -> np.ndarray:
        return self._class_counts.copy()

    def _standardise(self, x: np.ndarray, update: bool) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if update:
            self._count += 1
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
        if self._count < 2:
            return x - self._mean
        std = np.sqrt(self._m2 / self._count)
        std = np.where(std > 1e-9, std, 1.0)
        return (x - self._mean) / std

    def _class_weight(self, y: int) -> float:
        if not self._cost_sensitive:
            return 1.0
        total = self._class_counts.sum()
        if total <= 0.0 or self._class_counts[y] <= 0.0:
            return 1.0
        frequency = self._class_counts[y] / total
        # Inverse relative frequency, capped to keep updates numerically sane.
        return float(min(1.0 / (self._n_classes * frequency), 100.0))

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        y = int(y)
        standardised = self._standardise(x, update=True)
        self._class_counts[y] += 1.0
        scores = self._weights @ standardised + self._bias
        probabilities = _softmax(scores)
        target = np.zeros(self._n_classes)
        target[y] = 1.0
        error = target - probabilities
        step = self._learning_rate * weight * self._class_weight(y)
        self._weights += step * np.outer(error, standardised)
        self._bias += step * error

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        standardised = self._standardise(x, update=False)
        scores = self._weights @ standardised + self._bias
        return _softmax(scores)

    # --------------------------------------------------------- batch interface
    def _standardise_batch(self, features: np.ndarray, update: bool) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if update:
            n = features.shape[0]
            batch_mean = features.mean(axis=0)
            batch_m2 = np.sum((features - batch_mean) ** 2, axis=0)
            total = self._count + n
            delta = batch_mean - self._mean
            self._mean += delta * (n / total)
            self._m2 += batch_m2 + delta**2 * (self._count * n / total)
            self._count = total
        if self._count < 2:
            return features - self._mean
        std = np.sqrt(self._m2 / self._count)
        std = np.where(std > 1e-9, std, 1.0)
        return (features - self._mean) / std

    def partial_fit_batch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Native mini-batch update: one gradient step from the whole batch.

        Unlike the default adapter this applies *mini-batch* semantics — the
        running standardisation is advanced once with the batch moments and
        every row's gradient is computed against the same weights — which is
        the standard mini-batch SGD formulation rather than a bit-exact replay
        of per-instance updates.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        n = labels.shape[0]
        if n == 0:
            return
        standardised = self._standardise_batch(features, update=True)
        self._class_counts += np.bincount(labels, minlength=self._n_classes).astype(
            np.float64
        )
        scores = standardised @ self._weights.T + self._bias
        probabilities = _softmax(scores, axis=1)
        targets = np.zeros_like(probabilities)
        targets[np.arange(n), labels] = 1.0
        errors = targets - probabilities
        steps = self._learning_rate * np.ones(n)
        if weights is not None:
            steps = steps * np.asarray(weights, dtype=np.float64)
        if self._cost_sensitive:
            steps = steps * np.array(
                [self._class_weight(int(label)) for label in labels]
            )
        weighted_errors = errors * steps[:, None]
        self._weights += weighted_errors.T @ standardised
        self._bias += weighted_errors.sum(axis=0)

    def predict_proba_batch(self, features: np.ndarray) -> np.ndarray:
        standardised = self._standardise_batch(features, update=False)
        scores = standardised @ self._weights.T + self._bias
        return _softmax(scores, axis=1)
