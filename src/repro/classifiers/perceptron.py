"""Online multi-class perceptron with optional cost-sensitive updates.

A one-vs-rest linear model trained with perceptron/logistic-style updates on a
running-standardised feature representation.  It is both a standalone baseline
and the leaf model of the cost-sensitive perceptron tree (the paper's base
classifier).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import StreamClassifier

__all__ = ["OnlinePerceptron"]


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class OnlinePerceptron(StreamClassifier):
    """Multi-class online perceptron with running feature standardisation.

    Parameters
    ----------
    learning_rate:
        Step size of the weight updates.
    cost_sensitive:
        When True, each update is additionally weighted by the inverse
        relative frequency of the instance's class, boosting minority-class
        learning (the "cost-sensitive" part of the paper's base classifier).
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        learning_rate: float = 0.1,
        cost_sensitive: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__(n_features, n_classes)
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self._learning_rate = learning_rate
        self._cost_sensitive = cost_sensitive
        self._seed = seed
        self._init_state()

    def _init_state(self) -> None:
        rng = np.random.default_rng(self._seed)
        self._weights = rng.normal(0.0, 0.01, size=(self._n_classes, self._n_features))
        self._bias = np.zeros(self._n_classes)
        self._count = 0
        self._mean = np.zeros(self._n_features)
        self._m2 = np.zeros(self._n_features)
        self._class_counts = np.zeros(self._n_classes, dtype=np.float64)

    def reset(self) -> None:
        self._init_state()

    @property
    def class_counts(self) -> np.ndarray:
        return self._class_counts.copy()

    def _standardise(self, x: np.ndarray, update: bool) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if update:
            self._count += 1
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
        if self._count < 2:
            return x - self._mean
        std = np.sqrt(self._m2 / self._count)
        std = np.where(std > 1e-9, std, 1.0)
        return (x - self._mean) / std

    def _class_weight(self, y: int) -> float:
        if not self._cost_sensitive:
            return 1.0
        total = self._class_counts.sum()
        if total <= 0.0 or self._class_counts[y] <= 0.0:
            return 1.0
        frequency = self._class_counts[y] / total
        # Inverse relative frequency, capped to keep updates numerically sane.
        return float(min(1.0 / (self._n_classes * frequency), 100.0))

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        y = int(y)
        standardised = self._standardise(x, update=True)
        self._class_counts[y] += 1.0
        scores = self._weights @ standardised + self._bias
        probabilities = _softmax(scores)
        target = np.zeros(self._n_classes)
        target[y] = 1.0
        error = target - probabilities
        step = self._learning_rate * weight * self._class_weight(y)
        self._weights += step * np.outer(error, standardised)
        self._bias += step * error

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        standardised = self._standardise(x, update=False)
        scores = self._weights @ standardised + self._bias
        return _softmax(scores)
