"""Streaming classifier interface used by the evaluation harness.

All classifiers learn incrementally (``partial_fit``) and expose both hard
predictions and class-probability scores; the scores feed the prequential
multi-class AUC metric.  ``reset()`` rebuilds the model from scratch and is
called by the harness when a drift detector signals a change.

The interface is batch-first: the chunked prequential runner calls
``partial_fit_batch`` / ``predict_proba_batch``, which default to per-instance
loops so every classifier works unchanged; models with a natural vectorized
formulation (naive Bayes, perceptron) override them with native NumPy batch
paths.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = ["StreamClassifier", "MajorityClassClassifier", "NoChangeClassifier"]


class StreamClassifier(Snapshotable, abc.ABC):
    """Base class for incremental (streaming) classifiers."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_features = n_features
        self._n_classes = n_classes

    @property
    def n_features(self) -> int:
        return self._n_features

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @abc.abstractmethod
    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        """Learn a single labelled instance with an optional importance weight."""

    @abc.abstractmethod
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability estimates for one instance (sums to 1)."""

    def predict(self, x: np.ndarray) -> int:
        """Most probable class for one instance."""
        return int(np.argmax(self.predict_proba(x)))

    # --------------------------------------------------------- batch interface
    def partial_fit_batch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Learn a batch of labelled instances.

        The default adapter replays the batch through :meth:`partial_fit` one
        instance at a time, so results are identical to instance-by-instance
        learning.  Native overrides may use mini-batch semantics (one update
        from the whole batch); they document any such deviation.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        if weights is None:
            for i in range(labels.shape[0]):
                self.partial_fit(features[i], int(labels[i]))
        else:
            for i in range(labels.shape[0]):
                self.partial_fit(features[i], int(labels[i]), float(weights[i]))

    def predict_proba_batch(self, features: np.ndarray) -> np.ndarray:
        """Class-probability estimates for a batch, shape ``(n, n_classes)``.

        Default adapter: loops over :meth:`predict_proba`.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        out = np.empty((features.shape[0], self._n_classes))
        for i in range(features.shape[0]):
            out[i] = self.predict_proba(features[i])
        return out

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Most probable class for each instance of a batch."""
        return np.argmax(self.predict_proba_batch(features), axis=1).astype(np.int64)

    def predict_fit_interleaved(
        self, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Prequential test-then-train over a chunk: score row i with the
        model state after rows ``0..i-1``, then learn row i.

        Returns the ``(n, n_classes)`` probability scores.  The default
        adapter replays :meth:`predict_proba` / :meth:`partial_fit` row by
        row, so results are bit-identical to the instance loop; native
        overrides must preserve that contract exactly (it is what lets the
        chunk-exact evaluation mode batch the classifier work).
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        scores = np.empty((features.shape[0], self._n_classes))
        for i in range(labels.shape[0]):
            scores[i] = self.predict_proba(features[i])
            self.partial_fit(features[i], int(labels[i]))
        return scores

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget everything learned so far (drift-triggered rebuild)."""


class MajorityClassClassifier(StreamClassifier):
    """Predicts the most frequent class seen so far (sanity-check baseline)."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        super().__init__(n_features, n_classes)
        self._counts = np.zeros(n_classes, dtype=np.float64)

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        self._counts[int(y)] += weight

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        total = self._counts.sum()
        if total == 0.0:
            return np.full(self._n_classes, 1.0 / self._n_classes)
        return self._counts / total

    def reset(self) -> None:
        self._counts[:] = 0.0


class NoChangeClassifier(StreamClassifier):
    """Predicts the previously observed label (persistence baseline)."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        super().__init__(n_features, n_classes)
        self._last_label: int | None = None

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        self._last_label = int(y)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        proba = np.full(self._n_classes, 1.0 / self._n_classes)
        if self._last_label is not None:
            proba = np.full(self._n_classes, 1e-3)
            proba[self._last_label] = 1.0
            proba /= proba.sum()
        return proba

    def reset(self) -> None:
        self._last_label = None
