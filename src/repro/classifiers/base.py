"""Streaming classifier interface used by the evaluation harness.

All classifiers learn one instance at a time (``partial_fit``) and expose both
hard predictions and class-probability scores; the scores feed the prequential
multi-class AUC metric.  ``reset()`` rebuilds the model from scratch and is
called by the harness when a drift detector signals a change.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["StreamClassifier", "MajorityClassClassifier", "NoChangeClassifier"]


class StreamClassifier(abc.ABC):
    """Base class for incremental (streaming) classifiers."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self._n_features = n_features
        self._n_classes = n_classes

    @property
    def n_features(self) -> int:
        return self._n_features

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @abc.abstractmethod
    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        """Learn a single labelled instance with an optional importance weight."""

    @abc.abstractmethod
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability estimates for one instance (sums to 1)."""

    def predict(self, x: np.ndarray) -> int:
        """Most probable class for one instance."""
        return int(np.argmax(self.predict_proba(x)))

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget everything learned so far (drift-triggered rebuild)."""


class MajorityClassClassifier(StreamClassifier):
    """Predicts the most frequent class seen so far (sanity-check baseline)."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        super().__init__(n_features, n_classes)
        self._counts = np.zeros(n_classes, dtype=np.float64)

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        self._counts[int(y)] += weight

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        total = self._counts.sum()
        if total == 0.0:
            return np.full(self._n_classes, 1.0 / self._n_classes)
        return self._counts / total

    def reset(self) -> None:
        self._counts[:] = 0.0


class NoChangeClassifier(StreamClassifier):
    """Predicts the previously observed label (persistence baseline)."""

    def __init__(self, n_features: int, n_classes: int) -> None:
        super().__init__(n_features, n_classes)
        self._last_label: int | None = None

    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        self._last_label = int(y)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        proba = np.full(self._n_classes, 1.0 / self._n_classes)
        if self._last_label is not None:
            proba = np.full(self._n_classes, 1e-3)
            proba[self._last_label] = 1.0
            proba /= proba.sum()
        return proba

    def reset(self) -> None:
        self._last_label = None
