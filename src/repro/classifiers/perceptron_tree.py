"""Adaptive Cost-Sensitive Perceptron Trees (Krawczyk & Skryjomski, 2017).

The paper's base classifier: an incrementally grown decision tree whose leaves
hold cost-sensitive online perceptrons.  The tree grows by splitting a leaf
once it has accumulated enough instances and a feature offers sufficient
separation between classes (a streaming Gaussian separability criterion that
plays the role of the Hoeffding-bound gain test in the original paper).  Each
leaf perceptron uses cost-sensitive updates weighted by inverse class
frequency, making the whole model skew-insensitive.  The classifier is
intentionally dependent on an external drift detector for adaptation: the
prequential harness calls :meth:`reset` (or the detector-driven
:class:`~repro.evaluation.prequential.PrequentialRunner` rebuilds it) when a
drift is signalled, exactly as in the paper's experimental protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classifiers.base import StreamClassifier
from repro.classifiers.perceptron import OnlinePerceptron
from repro.core.snapshot import register_dataclass

__all__ = ["CostSensitivePerceptronTree"]


@register_dataclass
@dataclass
class _LeafStats:
    """Streaming per-class feature statistics used by the split criterion."""

    counts: np.ndarray
    means: np.ndarray
    m2: np.ndarray

    @classmethod
    def create(cls, n_classes: int, n_features: int) -> "_LeafStats":
        return cls(
            counts=np.zeros(n_classes, dtype=np.float64),
            means=np.zeros((n_classes, n_features)),
            m2=np.zeros((n_classes, n_features)),
        )

    def update(self, x: np.ndarray, y: int) -> None:
        self.counts[y] += 1.0
        delta = x - self.means[y]
        self.means[y] += delta / self.counts[y]
        self.m2[y] += delta * (x - self.means[y])

    def total(self) -> float:
        return float(self.counts.sum())


@register_dataclass
@dataclass
class _TreeNode:
    """A node of the perceptron tree: leaf (model) or internal (split)."""

    depth: int
    model: OnlinePerceptron | None = None
    stats: _LeafStats | None = None
    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    metadata: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.model is not None


class CostSensitivePerceptronTree(StreamClassifier):
    """Incremental decision tree with cost-sensitive perceptron leaves.

    Parameters
    ----------
    grace_period:
        Number of instances a leaf must see before a split is attempted.
    split_threshold:
        Minimum separability score (between-class over within-class spread of
        the best feature) required to split a leaf.
    max_depth:
        Maximum tree depth; leaves at this depth never split.
    leaf_learning_rate:
        Learning rate of the leaf perceptrons.
    cost_sensitive:
        Propagated to the leaf perceptrons (inverse-frequency update weights).
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        grace_period: int = 200,
        split_threshold: float = 1.0,
        max_depth: int = 4,
        leaf_learning_rate: float = 0.1,
        cost_sensitive: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__(n_features, n_classes)
        if grace_period < 10:
            raise ValueError("grace_period must be >= 10")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self._grace_period = grace_period
        self._split_threshold = split_threshold
        self._max_depth = max_depth
        self._leaf_learning_rate = leaf_learning_rate
        self._cost_sensitive = cost_sensitive
        self._seed = seed
        self._init_state()

    def _init_state(self) -> None:
        self._root = self._make_leaf(depth=0)
        self._n_splits = 0

    def reset(self) -> None:
        self._init_state()

    # ---------------------------------------------------------------- state
    @property
    def n_splits(self) -> int:
        """Number of leaf splits performed since the last reset."""
        return self._n_splits

    @property
    def n_leaves(self) -> int:
        def count(node: _TreeNode) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return count(node.left) + count(node.right)

        return count(self._root)

    def _make_leaf(self, depth: int) -> _TreeNode:
        model = OnlinePerceptron(
            self._n_features,
            self._n_classes,
            learning_rate=self._leaf_learning_rate,
            cost_sensitive=self._cost_sensitive,
            seed=self._seed,
        )
        return _TreeNode(
            depth=depth,
            model=model,
            stats=_LeafStats.create(self._n_classes, self._n_features),
        )

    # -------------------------------------------------------------- routing
    def _route(self, x: np.ndarray) -> _TreeNode:
        node = self._root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    # ------------------------------------------------------------- learning
    def partial_fit(self, x: np.ndarray, y: int, weight: float = 1.0) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = int(y)
        leaf = self._route(x)
        assert leaf.model is not None and leaf.stats is not None
        leaf.model.partial_fit(x, y, weight=weight)
        leaf.stats.update(x, y)
        if (
            leaf.depth < self._max_depth
            and leaf.stats.total() >= self._grace_period
            and leaf.stats.total() % self._grace_period == 0
        ):
            self._attempt_split(leaf)

    def _separability(self, stats: _LeafStats) -> tuple[int, float, float]:
        """Best feature, its threshold, and its separability score.

        The score for a feature is the spread of the class-conditional means
        divided by the average within-class standard deviation — a streaming
        analogue of a one-dimensional Fisher criterion.
        """
        observed = stats.counts > 1.0
        if observed.sum() < 2:
            return -1, 0.0, 0.0
        means = stats.means[observed]
        variances = stats.m2[observed] / stats.counts[observed, None]
        between = means.max(axis=0) - means.min(axis=0)
        within = np.sqrt(np.maximum(variances, 1e-12)).mean(axis=0)
        scores = between / np.maximum(within, 1e-9)
        feature = int(np.argmax(scores))
        counts = stats.counts[observed]
        threshold = float(np.average(means[:, feature], weights=counts))
        return feature, threshold, float(scores[feature])

    def _attempt_split(self, leaf: _TreeNode) -> None:
        assert leaf.stats is not None
        feature, threshold, score = self._separability(leaf.stats)
        if feature < 0 or score < self._split_threshold:
            return
        left = self._make_leaf(leaf.depth + 1)
        right = self._make_leaf(leaf.depth + 1)
        # Children inherit the parent's perceptron weights so no knowledge is
        # lost at the split (the "adaptive" part of the original algorithm).
        assert leaf.model is not None
        for child in (left, right):
            assert child.model is not None
            child.model._weights = leaf.model._weights.copy()
            child.model._bias = leaf.model._bias.copy()
            child.model._mean = leaf.model._mean.copy()
            child.model._m2 = leaf.model._m2.copy()
            child.model._count = leaf.model._count
            child.model._class_counts = leaf.model._class_counts.copy()
        leaf.model = None
        leaf.stats = None
        leaf.feature = feature
        leaf.threshold = threshold
        leaf.left = left
        leaf.right = right
        self._n_splits += 1

    # ------------------------------------------------------------ inference
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        leaf = self._route(x)
        assert leaf.model is not None
        return leaf.model.predict_proba(x)
