"""Streaming classifiers: baselines and the paper's cost-sensitive base learner."""

from repro.classifiers.base import (
    MajorityClassClassifier,
    NoChangeClassifier,
    StreamClassifier,
)
from repro.classifiers.naive_bayes import GaussianNaiveBayes
from repro.classifiers.perceptron import OnlinePerceptron
from repro.classifiers.perceptron_tree import CostSensitivePerceptronTree

__all__ = [
    "StreamClassifier",
    "MajorityClassClassifier",
    "NoChangeClassifier",
    "GaussianNaiveBayes",
    "OnlinePerceptron",
    "CostSensitivePerceptronTree",
]
