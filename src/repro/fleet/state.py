"""Struct-of-arrays detector state and the ragged-batch fleet driver.

The batch kernels of :mod:`repro.detectors` vectorize *along time* within a
single stream.  Production drift monitoring is the transpose: millions of
users, each with their own low-rate stream and their own independent detector
instance.  :class:`DetectorStateArray` holds the state of N such instances in
struct-of-arrays form — one array per scalar detector attribute, with the
stream (lane) as the leading axis — so one NumPy call advances thousands of
detectors at once.

Ragged-batch contract
---------------------
``step_fleet(stream_ids, values)`` consumes one *tick*: an arbitrary subset
of lanes, each with an arbitrary number of new elements, in arbitrary
interleaved order.  ``stream_ids[j]`` names the lane element ``j`` belongs
to; elements of the same lane are consumed in their input order.  The driver
decomposes the tick into *rounds* — round ``r`` holds the ``r``-th occurrence
of every lane present in the tick — so each round touches every lane at most
once and a single vectorized update per round is exact.  For the common case
(every lane appears at most once per tick) the whole tick is one round.

Bit-exactness contract
----------------------
Fleet output is *bit-identical* to N independent scalar detectors stepped in
the same interleaved order: the per-element drift flags, the per-lane
detection positions (1-based observation indices, as in
:class:`repro.detectors.base.DriftDetector`), and every internal statistic.
Subclass kernels achieve this by translating the scalar ``add_element``
recurrences into element-wise array ops with identical expression shapes
(IEEE-754 float64 ops round identically whether applied to a Python float, a
NumPy scalar, or an array element).  Lanes are independent, so the order in
which a round's lanes are updated is immaterial.
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = ["DetectorStateArray", "iter_rounds"]


def iter_rounds(stream_ids: np.ndarray) -> Iterator[np.ndarray]:
    """Decompose a ragged tick into rounds of distinct lanes.

    Yields, for each round, the *positions* (indices into the tick) of the
    elements processed in that round: round ``r`` contains position ``j`` iff
    element ``j`` is the ``r``-th element of its lane within the tick.  The
    concatenation of all rounds is a permutation of ``arange(len(ids))`` and
    within every round all lanes are distinct.
    """
    k = stream_ids.shape[0]
    if k == 0:
        return
    order = np.argsort(stream_ids, kind="stable")
    sorted_ids = stream_ids[order]
    new_group = np.empty(k, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=new_group[1:])
    positions_in_tick = np.arange(k, dtype=np.int64)
    group_starts = np.maximum.accumulate(
        np.where(new_group, positions_in_tick, 0)
    )
    occurrence = np.empty(k, dtype=np.int64)
    occurrence[order] = positions_in_tick - group_starts
    n_rounds = int(occurrence.max()) + 1
    if n_rounds == 1:
        yield positions_in_tick
        return
    for round_index in range(n_rounds):
        yield np.flatnonzero(occurrence == round_index)


class DetectorStateArray(Snapshotable, abc.ABC):
    """N independent detector instances stored as arrays, stepped together.

    Subclasses hold one array per scalar state attribute (leading axis =
    lane) and implement :meth:`_update_lanes` — the vectorized equivalent of
    one ``add_element`` call on every lane of a round.  This base class owns
    the ragged-batch driver and the per-lane detection bookkeeping, mirroring
    :class:`repro.detectors.base.DriftDetector` exactly: 1-based detection
    positions per lane, per-lane observation counts, and ``in_drift`` /
    ``in_warning`` reflecting each lane's most recent element.
    """

    def __init__(self, n_streams: int) -> None:
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        self._n_streams = n_streams
        self._in_drift = np.zeros(n_streams, dtype=bool)
        self._in_warning = np.zeros(n_streams, dtype=bool)
        self._n_observations = np.zeros(n_streams, dtype=np.int64)
        self._detections: list[list[int]] = [[] for _ in range(n_streams)]

    # ------------------------------------------------------------------ API
    @property
    def n_streams(self) -> int:
        return self._n_streams

    @property
    def in_drift(self) -> np.ndarray:
        """Per-lane drift flag of each lane's most recent element (copy)."""
        return self._in_drift.copy()

    @property
    def in_warning(self) -> np.ndarray:
        """Per-lane warning flag of each lane's most recent element (copy)."""
        return self._in_warning.copy()

    @property
    def n_observations(self) -> np.ndarray:
        """Per-lane number of elements consumed so far (copy)."""
        return self._n_observations.copy()

    def detections(self, lane: int) -> list[int]:
        """1-based observation indices at which ``lane`` signalled drifts."""
        return list(self._detections[lane])

    def lane_state(self, lane: int) -> dict:
        """One lane's internal statistics, for exactness tests and snapshots."""
        return {}

    # ------------------------------------------------------------- stepping
    def step_fleet(
        self, stream_ids: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Consume one ragged tick; return per-element drift flags.

        ``stream_ids`` is a 1-D integer array of lane indices in
        ``[0, n_streams)`` (repeats allowed, any order); ``values`` carries
        the monitored signal, aligned element-for-element.  Returns a boolean
        array marking the elements that triggered their lane's drift — the
        exact flags N scalar detectors would produce.
        """
        stream_ids = np.asarray(stream_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if stream_ids.ndim != 1 or values.shape[:1] != stream_ids.shape:
            raise ValueError("stream_ids and values must be 1-D and aligned")
        if stream_ids.shape[0] and (
            stream_ids.min() < 0 or stream_ids.max() >= self._n_streams
        ):
            raise ValueError(
                f"stream_ids must lie in [0, {self._n_streams})"
            )
        flags = np.zeros(stream_ids.shape[0], dtype=bool)
        for positions in iter_rounds(stream_ids):
            lanes = stream_ids[positions]
            drift, warning = self._update_lanes(lanes, values[positions])
            self._n_observations[lanes] += 1
            self._in_drift[lanes] = drift
            self._in_warning[lanes] = warning
            for j in np.flatnonzero(drift):
                lane = int(lanes[j])
                self._detections[lane].append(int(self._n_observations[lane]))
            flags[positions[drift]] = True
        return flags

    @abc.abstractmethod
    def _update_lanes(
        self, lanes: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance each lane of a round by one element.

        ``lanes`` contains distinct lane indices; ``values`` the aligned
        monitored values.  Must apply the scalar ``add_element`` recurrence
        element-wise (including any drift-triggered concept resets) and
        return ``(drift, warning)`` boolean arrays aligned with ``lanes``.
        Detection bookkeeping is handled by the caller.
        """
