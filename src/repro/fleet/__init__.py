"""Fleet engine: thousands of independent detectors stepped as one.

The batch kernels of :mod:`repro.detectors` vectorize along time within a
single stream; this package vectorizes *across streams*.  A fleet holds N
independent detector instances — one per monitored stream — and advances any
ragged subset of them per tick through ``step_fleet(stream_ids, values)``,
with output bit-identical to N scalar detectors stepped one element at a
time (see :mod:`repro.fleet.state` for the contract).

Two implementations share the interface:

* native struct-of-arrays kernels (:mod:`repro.fleet.kernels`) for the
  sum/bound family — DDM, RDDM, ECDD, PH, FHDDM, HDDM-A — one vectorized
  update per round regardless of fleet size;
* the loop-of-scalars adapter (:mod:`repro.fleet.adapter`) for the rest of
  the zoo, routing each lane's elements through the scalar detectors'
  chunk-exact batch entry points.

:func:`make_fleet` picks the right one by registry name.
"""

from __future__ import annotations

from repro.fleet.adapter import ScalarDetectorFleet
from repro.fleet.kernels import (
    DDMStateArray,
    ECDDStateArray,
    FHDDMStateArray,
    HDDMAStateArray,
    PageHinkleyStateArray,
    RDDMStateArray,
)
from repro.fleet.state import DetectorStateArray, iter_rounds

__all__ = [
    "DetectorStateArray",
    "ScalarDetectorFleet",
    "DDMStateArray",
    "RDDMStateArray",
    "ECDDStateArray",
    "PageHinkleyStateArray",
    "FHDDMStateArray",
    "HDDMAStateArray",
    "FLEET_NATIVE",
    "iter_rounds",
    "make_fleet",
    "fleet_from_template",
]

#: Registry names with a native struct-of-arrays kernel.
FLEET_NATIVE = {
    "DDM": DDMStateArray,
    "RDDM": RDDMStateArray,
    "ECDD": ECDDStateArray,
    "PH": PageHinkleyStateArray,
    "FHDDM": FHDDMStateArray,
    "HDDM-A": HDDMAStateArray,
}

_NATIVE_BY_TYPE = {
    kernel.scalar_detector: kernel for kernel in FLEET_NATIVE.values()
}


def make_fleet(
    name: str,
    n_streams: int,
    *,
    n_features: int = 2,
    n_classes: int = 2,
):
    """Build a fleet of ``n_streams`` detectors by registry name.

    Names in :data:`FLEET_NATIVE` get the struct-of-arrays kernel seeded from
    the registry's paper configuration; every other registry detector gets a
    :class:`ScalarDetectorFleet` of independent instances.  ``n_features`` /
    ``n_classes`` only matter for the class-conditional and instance
    detectors, mirroring :func:`repro.protocol.registry.build_detector`.
    """
    from repro.protocol.registry import build_detector

    if name == "none":
        raise ValueError("'none' is not a detector; no fleet to build")
    native = FLEET_NATIVE.get(name)
    if native is not None:
        template = build_detector(name, n_features, n_classes)
        return native.from_detector(template, n_streams)
    detectors = [
        build_detector(name, n_features, n_classes) for _ in range(n_streams)
    ]
    return ScalarDetectorFleet(detectors)


def fleet_from_template(detector, n_streams: int):
    """Replicate a configured sum-family scalar detector across N lanes."""
    kernel = _NATIVE_BY_TYPE.get(type(detector))
    if kernel is None:
        raise TypeError(
            f"{type(detector).__name__} has no native fleet kernel; "
            "wrap N instances in ScalarDetectorFleet instead"
        )
    return kernel.from_detector(detector, n_streams)
