"""Native struct-of-arrays kernels for the sum/bound detector family.

Each class here is the fleet transpose of one scalar detector: the scalar
instance attributes become arrays with the stream (lane) as the leading axis,
and one ``_update_lanes`` call applies the scalar ``add_element`` recurrence
to every lane of a round element-wise.  The covered family — DDM, RDDM,
ECDD, Page-Hinkley, FHDDM, HDDM-A — is exactly the detectors whose per-step
state is running sums, tracked prefix extrema, ring-window rolling counts,
and Hoeffding-style bounds, all of which vectorize across lanes without any
sequential dependency between streams.

Bit-exactness discipline (see :mod:`repro.fleet.state`): every expression
keeps the shape of its scalar twin so each float64 operation rounds
identically, reference-statistic updates happen *before* the tests exactly as
in the scalar code, and drift-triggered concept resets clear the same state
the scalar ``_reset_concept`` does.  Where a scalar detector owns an
array-friendly helper (ECDD's ``_limits``, HDDM-A's ``_mean_test``) the
kernel calls that very helper, sharing the arithmetic instead of copying it.

Rare, inherently per-lane events — RDDM's prune-and-rebuild, which fires once
per ``max_concept_size`` elements per lane — drop to a per-lane replay built
on the same :mod:`repro.core.windows` helpers the scalar rebuild uses.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.windows import (
    StackedRingWindow,
    hoeffding_bound,
    running_totals,
    tracked_weak_min,
)
from repro.detectors import DDM, ECDDWT, FHDDM, HDDM_A, RDDM, PageHinkley
from repro.fleet.state import DetectorStateArray

__all__ = [
    "DDMStateArray",
    "RDDMStateArray",
    "ECDDStateArray",
    "PageHinkleyStateArray",
    "FHDDMStateArray",
    "HDDMAStateArray",
]


class _SumFamilyStateArray(DetectorStateArray):
    """Shared plumbing: construct from params via a validated scalar template."""

    #: The scalar detector class this kernel transposes.
    scalar_detector: type

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams)
        self._template = self.scalar_detector(**params)

    @classmethod
    def from_detector(cls, detector, n_streams: int):
        """Replicate a configured scalar detector across ``n_streams`` lanes."""
        if not isinstance(detector, cls.scalar_detector):
            raise TypeError(
                f"{cls.__name__} transposes {cls.scalar_detector.__name__}, "
                f"got {type(detector).__name__}"
            )
        return cls(n_streams, **detector.clone_params())


# ------------------------------------------------------------------------ DDM
class DDMStateArray(_SumFamilyStateArray):
    """Fleet kernel for :class:`repro.detectors.DDM`."""

    scalar_detector = DDM

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams, **params)
        template = self._template
        self._min_num_instances = template._min_num_instances
        self._warning_level = template._warning_level
        self._drift_level = template._drift_level
        self._sample_count = np.zeros(n_streams, dtype=np.int64)
        self._error_sum = np.zeros(n_streams, dtype=np.float64)
        self._p_min = np.full(n_streams, np.inf)
        self._s_min = np.full(n_streams, np.inf)
        self._ps_min = np.full(n_streams, np.inf)

    def lane_state(self, lane: int) -> dict:
        return {
            "_sample_count": int(self._sample_count[lane]),
            "_error_sum": float(self._error_sum[lane]),
            "_p_min": float(self._p_min[lane]),
            "_s_min": float(self._s_min[lane]),
            "_ps_min": float(self._ps_min[lane]),
        }

    def _update_lanes(self, lanes, values):
        error = np.where(values > 0.5, 1.0, 0.0)
        count = self._sample_count[lanes] + 1
        self._sample_count[lanes] = count
        error_sum = self._error_sum[lanes] + error
        self._error_sum[lanes] = error_sum
        p = error_sum / count
        s = np.sqrt(p * (1.0 - p) / count)
        ps = p + s
        active = (count >= self._min_num_instances) & (p > 0.0)
        improved = active & (ps <= self._ps_min[lanes])
        updated = lanes[improved]
        self._p_min[updated] = p[improved]
        self._s_min[updated] = s[improved]
        self._ps_min[updated] = ps[improved]
        p_min = self._p_min[lanes]
        s_min = self._s_min[lanes]
        drift = active & (ps >= p_min + self._drift_level * s_min)
        warning = active & ~drift & (ps >= p_min + self._warning_level * s_min)
        hit = lanes[drift]
        if hit.shape[0]:
            self._sample_count[hit] = 0
            self._error_sum[hit] = 0.0
            self._p_min[hit] = np.inf
            self._s_min[hit] = np.inf
            self._ps_min[hit] = np.inf
        return drift, warning


# ----------------------------------------------------------------------- RDDM
class RDDMStateArray(_SumFamilyStateArray):
    """Fleet kernel for :class:`repro.detectors.RDDM`.

    The scalar detector logs up to ``max_concept_size`` errors but its
    prune-triggered rebuild only ever reads the most recent
    ``min_size_stable_concept`` of them, so the fleet stores exactly that
    tail per lane in a :class:`~repro.core.windows.StackedRingWindow` —
    value-identical rebuilds at a fraction of the memory.
    """

    scalar_detector = RDDM

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams, **params)
        template = self._template
        self._min_num_instances = template._min_num_instances
        self._warning_level = template._warning_level
        self._drift_level = template._drift_level
        self._max_concept_size = template._max_concept_size
        self._min_size_stable = template._min_size_stable
        self._warning_limit = template._warning_limit
        self._sample_count = np.zeros(n_streams, dtype=np.int64)
        self._error_sum = np.zeros(n_streams, dtype=np.float64)
        self._p_min = np.full(n_streams, np.inf)
        self._s_min = np.full(n_streams, np.inf)
        self._ps_min = np.full(n_streams, np.inf)
        self._warning_count = np.zeros(n_streams, dtype=np.int64)
        self._storage = StackedRingWindow(n_streams, self._min_size_stable)

    def lane_state(self, lane: int) -> dict:
        return {
            "_sample_count": int(self._sample_count[lane]),
            "_error_sum": float(self._error_sum[lane]),
            "_p_min": float(self._p_min[lane]),
            "_s_min": float(self._s_min[lane]),
            "_ps_min": float(self._ps_min[lane]),
            "_warning_count": int(self._warning_count[lane]),
            "stored_tail": self._storage.values_at(lane).tolist(),
        }

    def _update_lanes(self, lanes, values):
        error = np.where(values > 0.5, 1.0, 0.0)
        self._storage.append_at(lanes, error)
        count = self._sample_count[lanes] + 1
        self._sample_count[lanes] = count
        error_sum = self._error_sum[lanes] + error
        self._error_sum[lanes] = error_sum
        # _ingest: weak-minimum reference update on the fresh statistics.
        p = error_sum / count
        s = np.sqrt(p * (1.0 - p) / count)
        improved = (
            (count >= self._min_num_instances)
            & (p > 0.0)
            & (p + s <= self._ps_min[lanes])
        )
        updated = lanes[improved]
        self._p_min[updated] = p[improved]
        self._s_min[updated] = s[improved]
        self._ps_min[updated] = (p + s)[improved]
        # Pruning fires once per max_concept_size elements per lane; replay
        # the rebuild per lane on the shared windows-core helpers.
        for lane in lanes[count > self._max_concept_size]:
            self._rebuild_lane(int(lane))
        # _test_current over the (possibly rebuilt) state.
        count = self._sample_count[lanes]
        error_sum = self._error_sum[lanes]
        p = error_sum / count
        s = np.sqrt(p * (1.0 - p) / count)
        ps = p + s
        p_min = self._p_min[lanes]
        s_min = self._s_min[lanes]
        tested = (
            (count >= self._min_num_instances)
            & (p > 0.0)
            & np.isfinite(self._ps_min[lanes])
        )
        drift = tested & (ps >= p_min + self._drift_level * s_min)
        warn = tested & ~drift & (ps >= p_min + self._warning_level * s_min)
        bumped = self._warning_count[lanes] + 1
        forced = warn & (bumped >= self._warning_limit)
        self._warning_count[lanes[warn]] = bumped[warn]
        self._warning_count[lanes[tested & ~drift & ~warn]] = 0
        drift = drift | forced
        warning = warn & ~forced
        hit = lanes[drift]
        if hit.shape[0]:
            self._sample_count[hit] = 0
            self._error_sum[hit] = 0.0
            self._p_min[hit] = np.inf
            self._s_min[hit] = np.inf
            self._ps_min[hit] = np.inf
            self._warning_count[hit] = 0
            self._storage.clear_lanes(hit)
        return drift, warning

    def _rebuild_lane(self, lane: int) -> None:
        """Scalar ``_rebuild_from_recent`` for one lane (value-identical)."""
        recent = self._storage.values_at(lane)
        self._sample_count[lane] = 0
        self._error_sum[lane] = 0.0
        self._p_min[lane] = np.inf
        self._s_min[lane] = np.inf
        self._ps_min[lane] = np.inf
        self._warning_count[lane] = 0
        n = recent.shape[0]
        if n == 0:
            return
        counts = np.arange(1, n + 1, dtype=np.int64)
        sums = running_totals(recent)
        p = sums / counts
        s = np.sqrt(p * (1.0 - p) / counts)
        active = (counts >= self._min_num_instances) & (sums > 0.0)
        self._sample_count[lane] = n
        self._error_sum[lane] = float(sums[-1])
        if active.any():
            first = int(np.argmax(active))
            tracked = tracked_weak_min((p + s)[first:], math.inf)
            last = int(tracked[-1])
            if last >= 0:
                self._p_min[lane] = float(p[first + last])
                self._s_min[lane] = float(s[first + last])
                self._ps_min[lane] = float((p + s)[first + last])


# ----------------------------------------------------------------------- ECDD
class ECDDStateArray(_SumFamilyStateArray):
    """Fleet kernel for :class:`repro.detectors.ECDDWT` (EWMA chart)."""

    scalar_detector = ECDDWT

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams, **params)
        template = self._template
        self._lambda = template._lambda
        self._warning_fraction = template._warning_fraction
        self._min_instances = template._min_instances
        self._count = np.zeros(n_streams, dtype=np.int64)
        self._error_sum = np.zeros(n_streams, dtype=np.float64)
        self._ewma = np.zeros(n_streams, dtype=np.float64)

    def lane_state(self, lane: int) -> dict:
        return {
            "_count": int(self._count[lane]),
            "_error_sum": float(self._error_sum[lane]),
            "_ewma": float(self._ewma[lane]),
        }

    def _update_lanes(self, lanes, values):
        error = np.where(values > 0.5, 1.0, 0.0)
        count = self._count[lanes] + 1
        self._count[lanes] = count
        error_sum = self._error_sum[lanes] + error
        self._error_sum[lanes] = error_sum
        ewma = (1.0 - self._lambda) * self._ewma[lanes] + self._lambda * error
        self._ewma[lanes] = ewma
        active = count >= self._min_instances
        # Same helper the scalar path calls, so the arithmetic is shared.
        p, limit = self._template._limits(count, error_sum)
        diff = ewma - p
        drift = active & (diff > limit)
        warning = active & ~drift & (diff > self._warning_fraction * limit)
        hit = lanes[drift]
        if hit.shape[0]:
            self._count[hit] = 0
            self._error_sum[hit] = 0.0
            self._ewma[hit] = 0.0
        return drift, warning


# --------------------------------------------------------------- Page-Hinkley
class PageHinkleyStateArray(_SumFamilyStateArray):
    """Fleet kernel for :class:`repro.detectors.PageHinkley`."""

    scalar_detector = PageHinkley

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams, **params)
        template = self._template
        self._min_instances = template._min_instances
        self._delta = template._delta
        self._threshold = template._threshold
        self._alpha = template._alpha
        self._count = np.zeros(n_streams, dtype=np.int64)
        self._value_sum = np.zeros(n_streams, dtype=np.float64)
        self._cumulative = np.zeros(n_streams, dtype=np.float64)
        self._minimum = np.full(n_streams, np.inf)

    def lane_state(self, lane: int) -> dict:
        return {
            "_count": int(self._count[lane]),
            "_value_sum": float(self._value_sum[lane]),
            "_cumulative": float(self._cumulative[lane]),
            "_minimum": float(self._minimum[lane]),
        }

    def _update_lanes(self, lanes, values):
        count = self._count[lanes] + 1
        self._count[lanes] = count
        value_sum = self._value_sum[lanes] + values
        self._value_sum[lanes] = value_sum
        mean = value_sum / count
        cumulative = (
            self._cumulative[lanes] * self._alpha + values - mean - self._delta
        )
        self._cumulative[lanes] = cumulative
        minimum = np.minimum(self._minimum[lanes], cumulative)
        self._minimum[lanes] = minimum
        active = count >= self._min_instances
        drift = active & (cumulative - minimum > self._threshold)
        hit = lanes[drift]
        if hit.shape[0]:
            self._count[hit] = 0
            self._value_sum[hit] = 0.0
            self._cumulative[hit] = 0.0
            self._minimum[hit] = np.inf
        return drift, np.zeros(lanes.shape[0], dtype=bool)


# --------------------------------------------------------------------- FHDDM
class FHDDMStateArray(_SumFamilyStateArray):
    """Fleet kernel for :class:`repro.detectors.FHDDM`.

    The per-lane correctness windows live in one
    :class:`~repro.core.windows.StackedRingWindow`, whose maintained rolling
    sums follow the scalar :class:`~repro.core.windows.RingWindow` updates
    bit-for-bit.
    """

    scalar_detector = FHDDM

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams, **params)
        template = self._template
        self._window_size = template._window_size
        self._epsilon = template._epsilon
        self._window = StackedRingWindow(n_streams, self._window_size)
        self._p_max = np.zeros(n_streams, dtype=np.float64)

    def lane_state(self, lane: int) -> dict:
        return {
            "_p_max": float(self._p_max[lane]),
            "window_values": self._window.values_at(lane).tolist(),
            "window_sum": float(self._window.sums[lane]),
        }

    def _update_lanes(self, lanes, values):
        correct = np.where(values > 0.5, 0.0, 1.0)
        self._window.append_at(lanes, correct)
        full = self._window.sizes[lanes] == self._window_size
        p_current = self._window.sums[lanes] / self._window_size
        improved = full & (p_current > self._p_max[lanes])
        updated = lanes[improved]
        self._p_max[updated] = p_current[improved]
        drift = full & (self._p_max[lanes] - p_current > self._epsilon)
        hit = lanes[drift]
        if hit.shape[0]:
            self._window.clear_lanes(hit)
            self._p_max[hit] = 0.0
        return drift, np.zeros(lanes.shape[0], dtype=bool)


# --------------------------------------------------------------------- HDDM-A
class HDDMAStateArray(_SumFamilyStateArray):
    """Fleet kernel for :class:`repro.detectors.HDDM_A`."""

    scalar_detector = HDDM_A

    def __init__(self, n_streams: int, **params) -> None:
        super().__init__(n_streams, **params)
        template = self._template
        self._drift_confidence = template._drift_confidence
        self._warning_confidence = template._warning_confidence
        self._two_sided = template._two_sided
        self._n_total = np.zeros(n_streams, dtype=np.float64)
        self._sum_total = np.zeros(n_streams, dtype=np.float64)
        self._n_min = np.zeros(n_streams, dtype=np.float64)
        self._sum_min = np.zeros(n_streams, dtype=np.float64)
        self._n_max = np.zeros(n_streams, dtype=np.float64)
        self._sum_max = np.zeros(n_streams, dtype=np.float64)

    def lane_state(self, lane: int) -> dict:
        return {
            "_n_total": float(self._n_total[lane]),
            "_sum_total": float(self._sum_total[lane]),
            "_n_min": float(self._n_min[lane]),
            "_sum_min": float(self._sum_min[lane]),
            "_n_max": float(self._n_max[lane]),
            "_sum_max": float(self._sum_max[lane]),
        }

    def _update_lanes(self, lanes, values):
        confidence = self._drift_confidence
        n = self._n_total[lanes] + 1.0
        self._n_total[lanes] = n
        s = self._sum_total[lanes] + values
        self._sum_total[lanes] = s
        current_bound = hoeffding_bound(n, confidence)
        # Reference snapshots: a zero-count reference is seeded with the
        # current totals, otherwise the weak bound-adjusted extremum update
        # runs — exactly the scalar branch structure, element-wise.
        n_min = self._n_min[lanes]
        s_min = self._sum_min[lanes]
        min_bound = hoeffding_bound(n_min, confidence)
        with np.errstate(invalid="ignore", divide="ignore"):
            take_min = (n_min == 0.0) | (
                s / n + current_bound <= s_min / n_min + min_bound
            )
        updated = lanes[take_min]
        self._n_min[updated] = n[take_min]
        self._sum_min[updated] = s[take_min]
        n_max = self._n_max[lanes]
        s_max = self._sum_max[lanes]
        max_bound = hoeffding_bound(n_max, confidence)
        with np.errstate(invalid="ignore", divide="ignore"):
            take_max = (n_max == 0.0) | (
                s / n - current_bound >= s_max / n_max - max_bound
            )
        updated = lanes[take_max]
        self._n_max[updated] = n[take_max]
        self._sum_max[updated] = s[take_max]
        # Tests run against the just-updated references (scalar order).
        n_min = self._n_min[lanes]
        s_min = self._sum_min[lanes]
        increased = HDDM_A._mean_test(n, s, n_min, s_min, confidence)
        if self._two_sided:
            decreased = HDDM_A._mean_test(
                n, s, self._n_max[lanes], self._sum_max[lanes],
                confidence, decrease=True,
            )
            drift = increased | decreased
        else:
            drift = increased
        warning = ~drift & HDDM_A._mean_test(
            n, s, n_min, s_min, self._warning_confidence
        )
        hit = lanes[drift]
        if hit.shape[0]:
            self._n_total[hit] = 0.0
            self._sum_total[hit] = 0.0
            self._n_min[hit] = 0.0
            self._sum_min[hit] = 0.0
            self._n_max[hit] = 0.0
            self._sum_max[hit] = 0.0
        return drift, warning
