"""Loop-of-scalars fleet adapter covering the whole detector zoo.

Detectors whose state does not reduce to running sums and tracked extrema
(ADWIN's bucket compression, WSTD's rank test, HDDM-W's EWMA pair, the
class-conditional and instance families) still benefit from the fleet
interface: :class:`ScalarDetectorFleet` wraps N independent scalar detector
instances behind the same ragged-batch ``step_fleet`` contract as the native
:class:`~repro.fleet.state.DetectorStateArray` kernels.

Per tick it groups the elements of each lane (preserving their input order)
and hands each group to the lane detector's chunk-exact batch entry point —
``step_values`` for error-rate detectors, ``step_batch`` for the
class-conditional and instance families — so the output is bit-identical to
stepping each scalar detector element by element, which is exactly the
native kernels' contract.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.snapshot import Snapshotable
from repro.detectors.base import (
    ClassConditionalDetector,
    DriftDetector,
    ErrorRateDetector,
)

__all__ = ["ScalarDetectorFleet"]


class ScalarDetectorFleet(Snapshotable):
    """N scalar detectors behind the fleet's ragged-batch interface.

    ``values`` layout per detector family (k = elements in the tick):

    * error-rate detectors — shape ``(k,)``, the monitored signal exactly as
      ``add_element`` would receive it;
    * class-conditional detectors — shape ``(k, 2)`` integer-valued columns
      ``(y_true, y_pred)``;
    * instance detectors — shape ``(k, n_features + 2)`` rows
      ``[x_0 .. x_{f-1}, y_true, y_pred]``.
    """

    def __init__(self, detectors: Sequence[DriftDetector]) -> None:
        self._detectors = list(detectors)
        if not self._detectors:
            raise ValueError("need at least one detector")

    # ------------------------------------------------------------------ API
    @property
    def n_streams(self) -> int:
        return len(self._detectors)

    @property
    def detectors(self) -> list[DriftDetector]:
        """The underlying scalar detectors (lane order)."""
        return list(self._detectors)

    @property
    def in_drift(self) -> np.ndarray:
        return np.array([d.in_drift for d in self._detectors], dtype=bool)

    @property
    def in_warning(self) -> np.ndarray:
        return np.array([d.in_warning for d in self._detectors], dtype=bool)

    @property
    def n_observations(self) -> np.ndarray:
        return np.array(
            [d.n_observations for d in self._detectors], dtype=np.int64
        )

    def detections(self, lane: int) -> list[int]:
        return list(self._detectors[lane].detections)

    def lane_state(self, lane: int) -> dict:
        return {}

    # ------------------------------------------------------------- stepping
    def step_fleet(
        self, stream_ids: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Consume one ragged tick; return per-element drift flags."""
        stream_ids = np.asarray(stream_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if stream_ids.ndim != 1 or values.shape[:1] != stream_ids.shape:
            raise ValueError("stream_ids and values must be aligned on axis 0")
        if values.ndim not in (1, 2):
            raise ValueError("values must be 1-D or 2-D")
        k = stream_ids.shape[0]
        flags = np.zeros(k, dtype=bool)
        if k == 0:
            return flags
        if stream_ids.min() < 0 or stream_ids.max() >= self.n_streams:
            raise ValueError(f"stream_ids must lie in [0, {self.n_streams})")
        # Stable sort keeps each lane's elements in input order.
        order = np.argsort(stream_ids, kind="stable")
        sorted_ids = stream_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        for positions in np.split(order, boundaries):
            lane = int(stream_ids[positions[0]])
            flags[positions] = self._step_lane(
                self._detectors[lane], values[positions]
            )
        return flags

    @staticmethod
    def _step_lane(detector: DriftDetector, vals: np.ndarray) -> np.ndarray:
        if isinstance(detector, ErrorRateDetector):
            if vals.ndim != 1:
                raise ValueError(
                    "error-rate detectors take 1-D monitored values"
                )
            return detector.step_values(vals)
        if isinstance(detector, ClassConditionalDetector):
            if vals.ndim != 2 or vals.shape[1] != 2:
                raise ValueError(
                    "class-conditional detectors take (k, 2) label pairs"
                )
            return detector.step_batch(
                None,
                vals[:, 0].astype(np.int64),
                vals[:, 1].astype(np.int64),
            )
        if vals.ndim != 2 or vals.shape[1] < 3:
            raise ValueError(
                "instance detectors take (k, n_features + 2) rows "
                "[features..., y_true, y_pred]"
            )
        return detector.step_batch(
            vals[:, :-2],
            vals[:, -2].astype(np.int64),
            vals[:, -1].astype(np.int64),
        )
