"""Per-file AST rules: the contracts a single module can violate on its own.

Each rule encodes one invariant the repo's correctness rests on; the module
docstring of :mod:`repro.analysis` lists them with the PRs that introduced
the underlying contract.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.engine import ERROR, WARNING, FileContext, Finding, Rule

__all__ = [
    "DeterminismRule",
    "StrictJsonRule",
    "DurabilityRule",
    "HotPathAllocationRule",
    "BroadExceptRule",
    "PickleSafetyRule",
]


def _walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ------------------------------------------------------------- determinism
class DeterminismRule(Rule):
    """Batch ≡ instance bit-identity rests on every random draw flowing from
    an explicit seed and a fixed draw budget (PR 1/3/4).  Global RNG state
    and wall-clock reads silently break that: results stop being a function
    of ``(spec, seed)``."""

    id = "determinism"
    description = (
        "no seedless default_rng(), global numpy.random/random samplers, "
        "or wall-clock time.time() in repro code"
    )
    severity = ERROR

    #: numpy.random members that are seeded constructors, not global samplers.
    _NP_ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "RandomState",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    #: stdlib ``random`` members that take an explicit seed.
    _STDLIB_ALLOWED = frozenset({"Random"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _walk_calls(ctx.tree):
            dotted = ctx.imports.resolve_call(call)
            if dotted is None:
                continue
            if dotted == "numpy.random.default_rng":
                if not call.args and not call.keywords:
                    yield self.finding(
                        ctx,
                        call,
                        "seedless np.random.default_rng(): results become "
                        "irreproducible; pass an explicit seed or "
                        "SeedSequence",
                    )
                continue
            if dotted.startswith("numpy.random."):
                member = dotted.split(".")[2]
                if member not in self._NP_ALLOWED:
                    yield self.finding(
                        ctx,
                        call,
                        f"global numpy.random sampler np.random.{member}(): "
                        "draws from hidden global state; use a seeded "
                        "Generator (np.random.default_rng(seed))",
                    )
                continue
            if dotted.startswith("random."):
                member = dotted.split(".")[1]
                if member not in self._STDLIB_ALLOWED:
                    yield self.finding(
                        ctx,
                        call,
                        f"stdlib global sampler random.{member}(): draws from "
                        "hidden global state; use random.Random(seed) or a "
                        "seeded NumPy Generator",
                    )
                continue
            if dotted in ("time.time", "time.time_ns"):
                yield self.finding(
                    ctx,
                    call,
                    f"wall-clock {dotted}(): nondeterministic input to repro "
                    "code; use time.perf_counter() for timing measurements "
                    "or thread a timestamp in as data",
                )


# -------------------------------------------------------------- strict-json
class StrictJsonRule(Rule):
    """Result sinks must emit strict JSON (PR 8): ``json.dumps`` happily
    writes ``NaN``/``Infinity``, which sqlite/jq/parquet consumers reject.
    Every serialisation must either go through ``repro.core.jsonio`` (which
    sanitises non-finite floats to null) or pass ``allow_nan=False`` so a
    non-finite value fails loudly at write time."""

    id = "strict-json"
    description = (
        "json.dump/json.dumps outside repro.core.jsonio must pass "
        "allow_nan=False (or route through jsonio.dumps_strict)"
    )
    severity = ERROR

    #: Files allowed to call json.dumps without allow_nan=False: the strict
    #: wrapper itself.
    exempt_suffixes = ("repro/core/jsonio.py",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.posix.endswith(self.exempt_suffixes):
            return
        for call in _walk_calls(ctx.tree):
            dotted = ctx.imports.resolve_call(call)
            if dotted not in ("json.dump", "json.dumps"):
                continue
            if any(
                keyword.arg == "allow_nan"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in call.keywords
            ):
                continue
            yield self.finding(
                ctx,
                call,
                f"{dotted}() without allow_nan=False can emit non-strict "
                "NaN/Infinity tokens; pass allow_nan=False or use "
                "repro.core.jsonio.dumps_strict",
            )


# --------------------------------------------------------------- durability
class DurabilityRule(Rule):
    """A rename is only crash-durable once the *directory* is fsynced
    (PR 8): without it, a completed ``os.replace`` can vanish on power
    failure even though the file's bytes were fsynced.  Any function that
    renames must fsync the directory (or delegate to the atomic-write
    helper, which does)."""

    id = "durability"
    description = (
        "functions calling os.replace/os.rename must also call the "
        "directory-fsync helper (repro.core.durability.fsync_dir)"
    )
    severity = ERROR

    _RENAMES = frozenset({"os.replace", "os.rename"})
    #: A call whose terminal name is one of these satisfies the rule: either
    #: the fsync itself or a helper that performs rename+fsync internally.
    _SATISFIES = frozenset(
        {
            "fsync_dir",
            "_fsync_dir",
            "atomic_write_text",
            "_atomic_write_text",
            "_atomic_write",
        }
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            renames: list = []
            satisfied = False
            for call in self._own_calls(node):
                dotted = ctx.imports.resolve_call(call)
                if dotted in self._RENAMES:
                    renames.append(call)
                terminal = self._terminal(call.func)
                if terminal in self._SATISFIES:
                    satisfied = True
            if renames and not satisfied:
                for call in renames:
                    yield self.finding(
                        ctx,
                        call,
                        f"{ctx.imports.resolve_call(call)}() in "
                        f"{node.name}() without a directory fsync: the "
                        "rename can vanish on power failure; call "
                        "repro.core.durability.fsync_dir(directory) after "
                        "it (or use atomic_write_text)",
                    )

    @staticmethod
    def _terminal(node: ast.AST) -> "str | None":
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _own_calls(function: ast.AST) -> Iterator[ast.Call]:
        """Calls in ``function``'s body, excluding nested function bodies
        (each nested function is checked independently)."""
        stack = list(ast.iter_child_nodes(function))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------- hot path
class HotPathAllocationRule(Rule):
    """The recorded speedups (PR 6/7) rest on hot loops reusing persistent
    scratch buffers.  Functions marked ``@hot_path`` (see
    :mod:`repro.core.hotpath`) — or listed in the rule config — may not call
    allocating array combinators, and ufunc-style calls must pass ``out=``."""

    id = "hot-path-alloc"
    description = (
        "@hot_path functions may not call np.append/np.concatenate/... and "
        "must pass out= to ufunc-style numpy calls"
    )
    severity = WARNING

    #: Always-allocating combinators: never allowed on a hot path.
    _FORBIDDEN = frozenset(
        {
            "append",
            "concatenate",
            "vstack",
            "hstack",
            "dstack",
            "column_stack",
            "row_stack",
            "stack",
            "block",
            "tile",
            "repeat",
            "resize",
            "pad",
        }
    )
    #: Ufunc-style calls that allocate a fresh result unless out= is passed.
    _OUT_REQUIRED = frozenset(
        {
            "add",
            "subtract",
            "multiply",
            "divide",
            "true_divide",
            "floor_divide",
            "power",
            "exp",
            "expm1",
            "log",
            "log1p",
            "sqrt",
            "square",
            "abs",
            "absolute",
            "negative",
            "maximum",
            "minimum",
            "matmul",
            "dot",
            "clip",
            "less",
            "less_equal",
            "greater",
            "greater_equal",
            "equal",
            "not_equal",
            "logical_and",
            "logical_or",
            "logical_not",
        }
    )

    def __init__(self, extra_functions: "Iterable[str] | None" = None) -> None:
        #: Qualified names (``Class.method`` or ``function``) treated as hot
        #: even without the decorator — the "listed in the rule config" hook.
        self.extra_functions = frozenset(extra_functions or ())

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for function, qualname in self._functions(ctx.tree):
            if not (
                self._marked(function) or qualname in self.extra_functions
            ):
                continue
            for call in _walk_calls(function):
                dotted = ctx.imports.resolve_call(call)
                if dotted is None or not dotted.startswith("numpy."):
                    continue
                member = dotted.split(".", 1)[1]
                if member in self._FORBIDDEN:
                    yield self.finding(
                        ctx,
                        call,
                        f"np.{member}() allocates on @hot_path function "
                        f"{qualname}(); preallocate scratch and write into "
                        "it instead",
                    )
                elif member in self._OUT_REQUIRED and not any(
                    keyword.arg == "out" for keyword in call.keywords
                ):
                    yield self.finding(
                        ctx,
                        call,
                        f"np.{member}() without out= on @hot_path function "
                        f"{qualname}(); pass out=<scratch> to avoid a fresh "
                        "allocation per call",
                    )

    @staticmethod
    def _marked(function: ast.AST) -> bool:
        for decorator in function.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id == "hot_path":
                return True
            if isinstance(decorator, ast.Attribute) and decorator.attr == "hot_path":
                return True
        return False

    @staticmethod
    def _functions(tree: ast.Module) -> Iterator[tuple]:
        """``(node, qualname)`` for every function, methods as ``Class.name``."""
        def visit(node: ast.AST, prefix: str) -> Iterator[tuple]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    yield child, qual
                    yield from visit(child, f"{qual}.")
                elif isinstance(child, ast.ClassDef):
                    yield from visit(child, f"{prefix}{child.name}.")

        yield from visit(tree, "")


# ------------------------------------------------------------ broad excepts
_NOQA_RATIONALE_RE = re.compile(r"#\s*noqa:\s*BLE001\s*-\s*\S")


class BroadExceptRule(Rule):
    """Bare/broad excepts swallow real bugs (a typo'd attribute inside a
    store write reads as "cell failed, recompute").  Each one must carry a
    rationale: either the rule's pragma with a ``--`` tail or the
    pre-existing ``# noqa: BLE001 - <why>`` convention.  Handlers that
    re-raise (cleanup-then-``raise``) are exempt — they swallow nothing."""

    id = "broad-except"
    description = (
        "bare except / except Exception / except BaseException needs a "
        "rationale pragma (# lint: disable=broad-except -- <why>)"
    )
    severity = WARNING
    requires_rationale = True

    _BROAD = frozenset({"Exception", "BaseException"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._reraises(node):
                continue
            if self._has_noqa_rationale(ctx, node.lineno):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            yield self.finding(
                ctx,
                node,
                f"{caught}: swallows unrelated bugs; narrow the exception "
                "type or add a rationale "
                "(# lint: disable=broad-except -- <why>)",
            )

    def _is_broad(self, annotation: "ast.AST | None") -> bool:
        if annotation is None:
            return True
        if isinstance(annotation, ast.Tuple):
            return any(self._is_broad(element) for element in annotation.elts)
        if isinstance(annotation, ast.Name):
            return annotation.id in self._BROAD
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in self._BROAD
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(stmt, ast.Raise) and stmt.exc is None
            for stmt in handler.body
        )

    @staticmethod
    def _has_noqa_rationale(ctx: FileContext, lineno: int) -> bool:
        if 1 <= lineno <= len(ctx.lines):
            return bool(_NOQA_RATIONALE_RE.search(ctx.lines[lineno - 1]))
        return False


# ------------------------------------------------------------ pickle safety
class PickleSafetyRule(Rule):
    """Cell tasks cross process/cluster boundaries (PR 8): a lambda or a
    function defined inside another function cannot be pickled, and reaches
    the pool only to kill every cell at submit time.  Payload factories must
    be module-level callables (or ``functools.partial`` over them)."""

    id = "pickle-safety"
    description = (
        "no lambdas or locally-defined functions in CellTask payloads or "
        "executor/client submit() calls"
    )
    severity = ERROR

    #: Constructor names whose arguments cross a process boundary.
    _PAYLOAD_CTORS = frozenset({"CellTask"})
    #: Method names that ship their arguments to a worker.
    _SUBMIT_METHODS = frozenset({"submit"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._visit(ctx, ctx.tree, local_callables=frozenset())

    def _visit(
        self, ctx: FileContext, node: ast.AST, local_callables: frozenset
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(
                    ctx, child, local_callables | self._locals_of(child)
                )
                continue
            if isinstance(child, ast.Call) and self._is_boundary(child):
                yield from self._check_args(ctx, child, local_callables)
            yield from self._visit(ctx, child, local_callables)

    def _is_boundary(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in self._PAYLOAD_CTORS
        if isinstance(func, ast.Attribute):
            return (
                func.attr in self._PAYLOAD_CTORS
                or func.attr in self._SUBMIT_METHODS
            )
        return False

    def _check_args(
        self, ctx: FileContext, call: ast.Call, local_callables: frozenset
    ) -> Iterator[Finding]:
        values = [
            arg for arg in call.args if not isinstance(arg, ast.Starred)
        ] + [keyword.value for keyword in call.keywords]
        target = (
            call.func.id
            if isinstance(call.func, ast.Name)
            else f".{call.func.attr}"
        )
        for value in values:
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    ctx,
                    value,
                    f"lambda passed into {target}(): lambdas cannot cross a "
                    "process/cluster boundary; use a module-level function "
                    "or functools.partial",
                )
            elif isinstance(value, ast.Name) and value.id in local_callables:
                yield self.finding(
                    ctx,
                    value,
                    f"locally-defined callable {value.id!r} passed into "
                    f"{target}(): closures cannot cross a process/cluster "
                    "boundary; hoist it to module level",
                )

    @staticmethod
    def _locals_of(function: ast.AST) -> frozenset:
        """Names bound to nested defs or lambdas in ``function``'s own body."""
        names = set()
        stack = list(ast.iter_child_nodes(function))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
                continue  # its internals are a separate scope
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                names.update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )
            stack.extend(ast.iter_child_nodes(node))
        return frozenset(names)
