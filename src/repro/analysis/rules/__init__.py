"""The rule set: one class per repo contract.

``all_rules()`` builds a fresh instance of every rule with its default
configuration; the CLI's ``--select`` / ``--ignore`` filter by id.
"""

from __future__ import annotations

from repro.analysis.rules.contracts import ContractCoverageRule
from repro.analysis.rules.local import (
    BroadExceptRule,
    DeterminismRule,
    DurabilityRule,
    HotPathAllocationRule,
    PickleSafetyRule,
    StrictJsonRule,
)

__all__ = [
    "BroadExceptRule",
    "ContractCoverageRule",
    "DeterminismRule",
    "DurabilityRule",
    "HotPathAllocationRule",
    "PickleSafetyRule",
    "StrictJsonRule",
    "all_rules",
]


def all_rules() -> list:
    """Fresh default-configured instances of every rule, in id order."""
    rules = [
        BroadExceptRule(),
        ContractCoverageRule(),
        DeterminismRule(),
        DurabilityRule(),
        HotPathAllocationRule(),
        PickleSafetyRule(),
        StrictJsonRule(),
    ]
    return sorted(rules, key=lambda rule: rule.id)
