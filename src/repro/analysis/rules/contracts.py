"""Contract-coverage: the registry-vs-tests consistency pass.

The repo's detector contracts are enforced by *tests* — golden detection
pins (PR 2), reset-then-replay determinism (PR 3), the fleet bit-identity
property suite (PR 7) — but nothing used to force a **newly registered**
detector into those suites: add a detector to ``_REGISTRY`` without a golden
pin and every existing test still passes.  This rule closes that gap
statically, by cross-referencing the live registries against the test tree:

* every registry detector (except the ``"none"`` baseline) must have a
  golden pin file ``tests/golden/<name>.json``;
* the reset-replay suite must cover it — either by deriving its parametrize
  list from ``DETECTOR_NAMES`` (the current idiom, which covers additions
  automatically) or by naming the detector explicitly;
* the snapshot round-trip suite (PR 10) must cover it the same way — a
  detector that cannot survive ``snapshot()`` → JSON → ``restore()``
  bit-identically would silently break rollback and crash-resume;
* the class its factory returns must define (or inherit, within the repo) a
  chunk-exact ``step_batch``;
* every ``FLEET_NATIVE`` kernel must be exercised by the fleet property
  suite, including an entry in its drift-heavy ``AGGRESSIVE_TEMPLATES``
  table.

Everything is resolved from ASTs (see :mod:`repro.analysis.project`), so the
rule runs without NumPy installed.  Findings are anchored at the registry
entry that lacks coverage — the line you touched when adding the detector.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import ERROR, Finding, ProjectContext, ProjectRule
from repro.analysis.project import (
    ProjectModel,
    dict_entries,
    references_name,
    string_names,
)

__all__ = ["ContractCoverageRule"]


class ContractCoverageRule(ProjectRule):
    """Registry detectors need golden + reset-replay + ``step_batch``
    coverage; fleet kernels need property-suite coverage."""

    id = "contract-coverage"
    description = (
        "every registry detector ships golden pins, reset-replay coverage, "
        "and a step_batch; every FLEET_NATIVE kernel is property-tested"
    )
    severity = ERROR

    registry_module = "repro.protocol.registry"
    registry_variable = "_REGISTRY"
    fleet_module = "repro.fleet"
    fleet_variable = "FLEET_NATIVE"
    golden_dir = "tests/golden"
    reset_replay_test = "tests/detectors/test_reset_replay.py"
    snapshot_test = "tests/detectors/test_snapshot_roundtrip.py"
    fleet_property_test = "tests/property/test_property_fleet.py"
    fleet_template_variable = "AGGRESSIVE_TEMPLATES"
    registry_list_name = "DETECTOR_NAMES"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        model = ProjectModel(project.src_root)
        registry = model.module(self.registry_module)
        if registry is None:
            return  # not a repo layout this rule understands
        yield from self._check_detectors(project, model, registry)
        yield from self._check_fleet(project, model)

    # -------------------------------------------------------- detector zoo
    def _check_detectors(self, project, model, registry) -> Iterator[Finding]:
        entries = [
            (name, lineno, value)
            for name, lineno, value in dict_entries(
                registry.tree, self.registry_variable
            )
            if not self._is_none(value)  # the detector-less baseline
        ]
        if not entries:
            yield self._at(
                registry.path,
                1,
                f"registry dict {self.registry_variable!r} not found or "
                "empty in the registry module; the contract-coverage rule "
                "cannot cross-check detector coverage",
            )
            return

        reset_tree = self._parse_test(project, self.reset_replay_test)
        reset_dynamic = reset_tree is not None and references_name(
            reset_tree, self.registry_list_name
        )
        reset_named = string_names(reset_tree) if reset_tree is not None else set()
        snap_tree = self._parse_test(project, self.snapshot_test)
        snap_dynamic = snap_tree is not None and references_name(
            snap_tree, self.registry_list_name
        )
        snap_named = string_names(snap_tree) if snap_tree is not None else set()

        for name, lineno, value in entries:
            golden = project.root / self.golden_dir / f"{name}.json"
            if not golden.is_file():
                yield self._at(
                    registry.path,
                    lineno,
                    f"registry detector {name!r} has no golden pin "
                    f"({self.golden_dir}/{name}.json); record one with "
                    "pytest --regen-golden",
                )
            if reset_tree is None:
                yield self._at(
                    registry.path,
                    lineno,
                    f"reset-replay suite {self.reset_replay_test} is "
                    f"missing; {name!r} has no reset-determinism coverage",
                )
            elif not reset_dynamic and name not in reset_named:
                yield self._at(
                    registry.path,
                    lineno,
                    f"registry detector {name!r} is not covered by "
                    f"{self.reset_replay_test} (the suite neither derives "
                    f"from {self.registry_list_name} nor names it)",
                )
            if snap_tree is None:
                yield self._at(
                    registry.path,
                    lineno,
                    f"snapshot round-trip suite {self.snapshot_test} is "
                    f"missing; {name!r} has no snapshot/restore coverage",
                )
            elif not snap_dynamic and name not in snap_named:
                yield self._at(
                    registry.path,
                    lineno,
                    f"registry detector {name!r} is not covered by "
                    f"{self.snapshot_test} (the suite neither derives "
                    f"from {self.registry_list_name} nor names it)",
                )
            yield from self._check_step_batch(model, registry, name, lineno, value)

    def _check_step_batch(
        self, model, registry, name, lineno, value
    ) -> Iterator[Finding]:
        builder_name = self._terminal(value)
        builder = (
            registry.functions.get(builder_name) if builder_name else None
        )
        if builder is None:
            yield self._at(
                registry.path,
                lineno,
                f"registry entry {name!r} does not map to a module-level "
                "builder function; the step_batch contract cannot be "
                "verified statically",
            )
            return
        detector_class = model.returned_class(registry, builder)
        if detector_class is None:
            yield self._at(
                registry.path,
                lineno,
                f"could not resolve the class returned by {builder_name}() "
                f"for detector {name!r}; keep builders as plain "
                "'return SomeClass(...)' so coverage stays checkable",
            )
            return
        if not model.class_has_method(detector_class, "step_batch"):
            yield self._at(
                registry.path,
                lineno,
                f"registry detector {name!r} ({detector_class.name} in "
                f"{detector_class.module.dotted}) defines no chunk-exact "
                "step_batch anywhere on its in-repo base chain",
            )

    # ------------------------------------------------------------ fleet zoo
    def _check_fleet(self, project, model) -> Iterator[Finding]:
        fleet = model.module(self.fleet_module)
        if fleet is None:
            return
        kernels = list(dict_entries(fleet.tree, self.fleet_variable))
        if not kernels:
            return
        suite_tree = self._parse_test(project, self.fleet_property_test)
        if suite_tree is None:
            yield self._at(
                fleet.path,
                1,
                f"fleet property suite {self.fleet_property_test} is "
                f"missing; {self.fleet_variable} kernels have no "
                "bit-identity coverage",
            )
            return
        if not references_name(suite_tree, self.fleet_variable):
            yield self._at(
                fleet.path,
                1,
                f"{self.fleet_property_test} never references "
                f"{self.fleet_variable}; the suite cannot be pinning the "
                "native kernels against the scalar detectors",
            )
        templates = {
            name
            for tree in [suite_tree]
            for name, _, _ in dict_entries(tree, self.fleet_template_variable)
        }
        for name, lineno, _ in kernels:
            if name not in templates:
                yield self._at(
                    fleet.path,
                    lineno,
                    f"FLEET_NATIVE kernel {name!r} has no entry in "
                    f"{self.fleet_template_variable} of "
                    f"{self.fleet_property_test}; add a drift-heavy "
                    "template so resets/rebuilds actually fire under the "
                    "property suite",
                )

    # ------------------------------------------------------------ plumbing
    def _parse_test(self, project: ProjectContext, relpath: str):
        path = project.root / relpath
        if not path.is_file():
            return None
        try:
            return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except (SyntaxError, UnicodeDecodeError):
            return None

    def _at(self, path, lineno: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=str(path),
            line=lineno,
            col=1,
            message=message,
            severity=ERROR,
        )

    @staticmethod
    def _is_none(node) -> bool:
        return isinstance(node, ast.Constant) and node.value is None

    @staticmethod
    def _terminal(node) -> "str | None":
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None
