"""Command-line front end: ``python -m repro.analysis``.

Exit codes: 0 — no error-severity findings; 1 — at least one; 2 — usage
error.  ``--strict`` escalates warnings to errors (the CI gate runs strict).
Output is human-readable by default, ``--format json`` for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import ERROR, all_rules, run

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for the repo's determinism, "
            "durability, and chunk-exactness contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="escalate every finding to error severity (the CI gate)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--project-root",
        metavar="DIR",
        help=(
            "repository root for the cross-file contract-coverage rule "
            "(default: auto-detected as the ancestor holding src/repro and "
            "tests)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids with their contracts and exit",
    )
    return parser


def _split(values) -> "list | None":
    if not values:
        return None
    return [part.strip() for value in values for part in value.split(",") if part.strip()]


def _default_paths() -> list:
    candidate = Path("src") / "repro"
    return [str(candidate)] if candidate.is_dir() else ["."]


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} [{rule.severity}] {rule.description}")
        return 0

    paths = args.paths or _default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")
    try:
        findings = run(
            paths,
            strict=args.strict,
            select=_split(args.select),
            ignore=_split(args.ignore),
            project_root=args.project_root,
        )
    except ValueError as error:  # unknown rule ids from --select/--ignore
        parser.error(str(error))

    errors = sum(1 for finding in findings if finding.severity == ERROR)
    warnings = len(findings) - errors

    if args.format == "json":
        payload = {
            "findings": [finding.to_dict() for finding in findings],
            "errors": errors,
            "warnings": warnings,
            "strict": args.strict,
        }
        print(json.dumps(payload, indent=2, allow_nan=False))
    else:
        for finding in findings:
            print(
                f"{finding.location()}: {finding.rule} "
                f"[{finding.severity}] {finding.message}"
            )
        if findings:
            print(f"\n{len(findings)} finding(s): {errors} error(s), "
                  f"{warnings} warning(s)")
        else:
            print("no findings")

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
