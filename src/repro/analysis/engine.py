"""Rule framework for the invariant linter.

Everything here is stdlib-only by design: the linter runs in CI with **no
third-party dependencies installed**, so neither this module nor any rule may
import NumPy (or anything that transitively does).

The moving parts:

* :class:`Finding` — one diagnostic: rule id, ``file:line:col``, message,
  severity.
* :class:`Rule` / :class:`ProjectRule` — a per-file AST pass, or a
  whole-repository consistency pass (the contract-coverage rule needs the
  detector registry *and* the test suite at once).
* :class:`FileContext` — parsed AST, raw source lines, import-alias table,
  and the pragma map for one file.
* pragmas — ``# lint: disable=<rule>[,<rule>...][ -- rationale]`` on the
  finding's line suppresses it.  Rules with ``requires_rationale`` (broad
  excepts) only honour pragmas that carry the ``-- rationale`` text, so a
  suppression always records *why*.
* :func:`lint_paths` — walk files, run rules, apply pragmas, return findings
  sorted by location.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "ImportMap",
    "Pragma",
    "parse_pragmas",
    "find_project_root",
    "iter_python_files",
    "lint_paths",
]

ERROR = "error"
WARNING = "warning"

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+?)(?:\s+--\s*(\S.*))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = ERROR

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class Pragma:
    """A parsed ``# lint: disable=...`` comment."""

    rules: frozenset
    rationale: "str | None"

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rules or "all" in self.rules


def parse_pragmas(source: str) -> dict:
    """``line -> Pragma`` for every disable pragma comment in ``source``.

    Comments are found with :mod:`tokenize` (never by substring scanning), so
    a pragma-looking string literal cannot suppress anything.  Tokenization
    errors degrade to "no pragmas" — the file will separately fail to parse.
    """
    pragmas: dict = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            pragmas[token.start[0]] = Pragma(rules=rules, rationale=match.group(2))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return pragmas


class ImportMap:
    """Resolve dotted callee names through a module's import aliases.

    ``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``; ``from time import time`` makes a bare
    ``time(...)`` call resolve to ``time.time``.  Only names bound by imports
    resolve — a local variable shadowing ``random`` resolves to nothing, so
    the rules stay conservative.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._aliases[bound] = f"{module}.{alias.name}"

    def resolve(self, node: ast.AST) -> "str | None":
        """The fully-qualified dotted name of an expression, if import-bound."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, node: ast.Call) -> "str | None":
        return self.resolve(node.func)


@dataclass
class FileContext:
    """Everything a per-file rule needs about one source file."""

    path: Path
    source: str
    tree: ast.Module
    lines: Sequence[str]
    pragmas: dict
    imports: ImportMap

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    @classmethod
    def load(cls, path: Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            pragmas=parse_pragmas(source),
            imports=ImportMap(tree),
        )


@dataclass
class ProjectContext:
    """Repository-level context for cross-file consistency rules."""

    root: Path
    files: Sequence[FileContext] = field(default_factory=list)

    @property
    def src_root(self) -> Path:
        return self.root / "src"

    @property
    def tests_root(self) -> Path:
        return self.root / "tests"


class Rule:
    """A per-file AST pass.  Subclasses set the class attributes and
    implement :meth:`check_file`."""

    id: str = ""
    description: str = ""
    severity: str = ERROR
    #: When True, a disable pragma only suppresses this rule's findings if it
    #: carries a ``-- rationale`` tail.
    requires_rationale: bool = False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A whole-repository pass; runs once per lint invocation."""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files kept as-is), sorted, deduped."""
    seen = set()
    collected = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(collected)


def find_project_root(paths: Sequence) -> "Path | None":
    """The nearest ancestor holding both ``src/repro`` and ``tests``.

    Project rules cross-reference the source tree against the test suite;
    when the linted paths live outside such a checkout (fixture files in a
    tmp dir), project rules simply do not run.
    """
    for raw in paths:
        candidate = Path(raw).resolve()
        for ancestor in [candidate, *candidate.parents]:
            if (ancestor / "src" / "repro").is_dir() and (
                ancestor / "tests"
            ).is_dir():
                return ancestor
    return None


def _suppressed(finding: Finding, rule: Rule, pragmas: dict) -> "bool | Finding":
    """True if suppressed; a replacement Finding if the pragma is defective."""
    pragma = pragmas.get(finding.line)
    if pragma is None or not pragma.covers(rule.id):
        return False
    if rule.requires_rationale and not pragma.rationale:
        return replace(
            finding,
            message=finding.message
            + " (disable pragma present but missing ' -- <rationale>')",
        )
    return True


def lint_paths(
    paths: Sequence,
    rules: Sequence[Rule],
    *,
    strict: bool = False,
    project_root: "Path | str | None" = None,
) -> list:
    """Run ``rules`` over ``paths``; returns findings sorted by location.

    ``strict`` escalates every finding to :data:`ERROR` severity.  Project
    rules run once, against ``project_root`` (auto-detected from the linted
    paths when not given).
    """
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    findings: list = []
    contexts: list = []
    pragmas_by_path: dict = {}
    for path in iter_python_files(paths):
        try:
            ctx = FileContext.load(path)
        except (SyntaxError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=str(path),
                    line=getattr(error, "lineno", None) or 1,
                    col=(getattr(error, "offset", None) or 0) + 1,
                    message=f"file does not parse: {error}",
                    severity=ERROR,
                )
            )
            continue
        contexts.append(ctx)
        pragmas_by_path[str(path)] = ctx.pragmas
        for rule in file_rules:
            for finding in rule.check_file(ctx):
                verdict = _suppressed(finding, rule, ctx.pragmas)
                if verdict is True:
                    continue
                findings.append(verdict if isinstance(verdict, Finding) else finding)

    if project_rules:
        root = (
            Path(project_root) if project_root is not None
            else find_project_root(list(paths))
        )
        if root is not None:
            project = ProjectContext(root=root, files=contexts)
            rules_by_id = {rule.id: rule for rule in project_rules}
            for rule in project_rules:
                for finding in rule.check_project(project):
                    pragmas = pragmas_by_path.get(finding.path, {})
                    verdict = _suppressed(finding, rules_by_id[finding.rule], pragmas)
                    if verdict is True:
                        continue
                    findings.append(
                        verdict if isinstance(verdict, Finding) else finding
                    )

    if strict:
        findings = [replace(finding, severity=ERROR) for finding in findings]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
