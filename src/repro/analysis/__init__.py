"""``repro.analysis`` — the AST-based invariant linter.

Generic linters know nothing about this repo's contracts; this package
encodes them as static rules and fails CI the moment one is broken, instead
of waiting for a hypothesis suite (or a reviewer) to catch the violation
after the fact:

========================  ====================================================
rule id                   contract it encodes
========================  ====================================================
``determinism``           fixed-draw-budget RNG discipline (PR 1/3/4): no
                          seedless ``default_rng()``, no global
                          ``np.random``/``random`` samplers, no ``time.time``
``strict-json``           result sinks emit strict JSON (PR 8): ``json.dump``
                          outside ``repro.core.jsonio`` needs
                          ``allow_nan=False``
``durability``            crash-durable renames (PR 8): ``os.replace`` implies
                          a directory fsync
``contract-coverage``     registry-vs-tests consistency (PR 2/3/7): every
                          registry detector has golden pins, reset-replay
                          coverage, and a chunk-exact ``step_batch``; every
                          ``FLEET_NATIVE`` kernel is property-tested
``hot-path-alloc``        ``@hot_path`` functions stay allocation-free (PR 6)
``broad-except``          bare/broad excepts carry a written rationale
``pickle-safety``         no lambdas/closures in backend-submitted payloads
========================  ====================================================

Run it as ``python -m repro.analysis [--strict] [paths]``; suppress a single
finding with ``# lint: disable=<rule> -- <rationale>`` on its line.  The
package (and everything it imports) is **stdlib-only**: the CI lint gate
installs no dependencies at all.
"""

from __future__ import annotations

from repro.analysis.engine import ERROR, WARNING, Finding, lint_paths
from repro.analysis.rules import all_rules

__all__ = ["ERROR", "WARNING", "Finding", "all_rules", "lint_paths", "run"]


def run(
    paths,
    *,
    strict: bool = False,
    select=None,
    ignore=None,
    project_root=None,
) -> list:
    """Lint ``paths`` with the default rule set; returns the findings.

    ``select`` / ``ignore`` are iterables of rule ids; ``strict`` escalates
    every finding to error severity.
    """
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore is not None:
        dropped = set(ignore)
        unknown = dropped - {rule.id for rule in all_rules()}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.id not in dropped]
    return lint_paths(paths, rules, strict=strict, project_root=project_root)
